"""Bounded stream buffers with backpressure.

The carrier of a port connection: producers block (in virtual time) when
the buffer is full, consumers block when it is empty.  Bounded buffers are
what makes "system resources (buffers ...) are limited" (§3.3) true inside
the simulation — a slow sink really does stall its upstream source.

``put``/``get`` are generator subroutines for DES processes::

    yield from buffer.put(element)
    element = yield from buffer.get()
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.errors import SimulationError
from repro.obs.metrics import DEPTH_BUCKETS
from repro.sim import SimEvent, Simulator, WaitEvent


class StreamBuffer:
    """FIFO of stream elements with a capacity bound."""

    def __init__(self, simulator: Simulator, capacity: int = 8, name: str = "buffer") -> None:
        if capacity < 1:
            raise SimulationError(f"buffer capacity must be >= 1, got {capacity}")
        self.simulator = simulator
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._not_full: Deque[SimEvent] = deque()
        self._not_empty: Deque[SimEvent] = deque()
        # Statistics for the resource-pressure benchmarks.
        self.total_put = 0
        self.producer_stalls = 0
        self.consumer_stalls = 0
        self.high_watermark = 0
        metrics = simulator.obs.metrics
        self._m_put = metrics.counter("stream.elements_buffered")
        self._m_producer_stalls = metrics.counter("stream.producer_stalls")
        self._m_consumer_stalls = metrics.counter("stream.consumer_stalls")
        self._m_occupancy = metrics.histogram("stream.buffer_occupancy",
                                              buckets=DEPTH_BUCKETS)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def put(self, item: Any) -> Generator:
        """Generator subroutine: enqueue, stalling while full."""
        items = self._items
        capacity = self.capacity
        if len(items) >= capacity:
            # One stall per blocking episode: a woken producer that is
            # barged past and re-waits is still the *same* stall.
            self.producer_stalls += 1
            self._m_producer_stalls.inc()
            while len(items) >= capacity:
                event = self.simulator.event(f"{self.name}:not_full")
                self._not_full.append(event)
                yield WaitEvent(event)
        items.append(item)
        self.total_put += 1
        self._m_put.inc()
        occupancy = len(items)
        self._m_occupancy.observe(occupancy)
        if occupancy > self.high_watermark:
            self.high_watermark = occupancy
        not_empty = self._not_empty
        if not_empty:
            not_empty.popleft().trigger()

    def get(self) -> Generator:
        """Generator subroutine: dequeue, stalling while empty."""
        items = self._items
        if not items:
            self.consumer_stalls += 1
            self._m_consumer_stalls.inc()
            while not items:
                event = self.simulator.event(f"{self.name}:not_empty")
                self._not_empty.append(event)
                yield WaitEvent(event)
        item = items.popleft()
        not_full = self._not_full
        if not_full:
            not_full.popleft().trigger()
        return item

    def __repr__(self) -> str:
        return f"StreamBuffer({self.name!r}, {len(self._items)}/{self.capacity})"
