"""Bounded stream buffers with backpressure.

The carrier of a port connection: producers block (in virtual time) when
the buffer is full, consumers block when it is empty.  Bounded buffers are
what makes "system resources (buffers ...) are limited" (§3.3) true inside
the simulation — a slow sink really does stall its upstream source.

``put``/``get`` are generator subroutines for DES processes::

    yield from buffer.put(element)
    element = yield from buffer.get()
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from repro.errors import SimulationError
from repro.obs.metrics import DEPTH_BUCKETS
from repro.sim import SimEvent, Simulator, WaitEvent


class StreamBuffer:
    """FIFO of stream elements with a capacity bound."""

    def __init__(self, simulator: Simulator, capacity: int = 8, name: str = "buffer") -> None:
        if capacity < 1:
            raise SimulationError(f"buffer capacity must be >= 1, got {capacity}")
        self.simulator = simulator
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._not_full: Deque[SimEvent] = deque()
        self._not_empty: Deque[SimEvent] = deque()
        # Statistics for the resource-pressure benchmarks.
        self.total_put = 0
        self.producer_stalls = 0
        self.consumer_stalls = 0
        self.high_watermark = 0
        metrics = simulator.obs.metrics
        self._m_put = metrics.counter("stream.elements_buffered")
        self._m_producer_stalls = metrics.counter("stream.producer_stalls")
        self._m_consumer_stalls = metrics.counter("stream.consumer_stalls")
        self._m_occupancy = metrics.histogram("stream.buffer_occupancy",
                                              buckets=DEPTH_BUCKETS)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def put(self, item: Any) -> Generator:
        """Generator subroutine: enqueue, stalling while full."""
        stalled = False
        while self.full:
            if not stalled:
                # One stall per blocking episode: a woken producer that is
                # barged past and re-waits is still the *same* stall.
                stalled = True
                self.producer_stalls += 1
                self._m_producer_stalls.inc()
            event = self.simulator.event(f"{self.name}:not_full")
            self._not_full.append(event)
            yield WaitEvent(event)
        self._items.append(item)
        self.total_put += 1
        self._m_put.inc()
        occupancy = len(self._items)
        self._m_occupancy.observe(occupancy)
        if occupancy > self.high_watermark:
            self.high_watermark = occupancy
        if self._not_empty:
            self._not_empty.popleft().trigger()

    def get(self) -> Generator:
        """Generator subroutine: dequeue, stalling while empty."""
        stalled = False
        while self.empty:
            if not stalled:
                stalled = True
                self.consumer_stalls += 1
                self._m_consumer_stalls.inc()
            event = self.simulator.event(f"{self.name}:not_empty")
            self._not_empty.append(event)
            yield WaitEvent(event)
        item = self._items.popleft()
        if self._not_full:
            self._not_full.popleft().trigger()
        return item

    def __repr__(self) -> str:
        return f"StreamBuffer({self.name!r}, {len(self._items)}/{self.capacity})"
