"""Stream elements: the unit of active AV data.

Each element carries its payload plus the metadata the stream machinery
needs: the object-time index it came from, the *ideal* world time at which
it should be presented (what the producing source's time mapping says,
before any jitter), its media type and its wire size in bits (what channel
transfer and traffic accounting charge for).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.avtime import WorldTime
from repro.errors import SimulationError
from repro.values.mediatype import MediaType


@dataclass(frozen=True, slots=True)
class StreamElement:
    """One data element in flight."""

    payload: Any
    index: int
    ideal_time: WorldTime
    media_type: MediaType
    size_bits: int

    def __post_init__(self) -> None:
        # Traffic accounting (channels, devices, obs counters) sums
        # size_bits; a negative size would silently corrupt every total.
        if self.size_bits < 0:
            raise SimulationError(
                f"stream element size_bits must be >= 0, got {self.size_bits} "
                f"(element index {self.index})"
            )

    def with_payload(self, payload: Any, media_type: MediaType | None = None,
                     size_bits: int | None = None) -> "StreamElement":
        """A transformed copy (same timing identity, new payload).

        Uses :func:`dataclasses.replace`, so subclasses of
        ``StreamElement`` keep their concrete type through transformer
        chains.
        """
        return replace(
            self,
            payload=payload,
            media_type=media_type or self.media_type,
            size_bits=self.size_bits if size_bits is None else size_bits,
        )


class EndOfStream:
    """Sentinel closing a stream; compares equal to itself only."""

    _instance: "EndOfStream | None" = None

    def __new__(cls) -> "EndOfStream":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "END_OF_STREAM"


END_OF_STREAM = EndOfStream()
