"""Stream elements: the unit of active AV data.

Each element carries its payload plus the metadata the stream machinery
needs: the object-time index it came from, the *ideal* world time at which
it should be presented (what the producing source's time mapping says,
before any jitter), its media type and its wire size in bits (what channel
transfer and traffic accounting charge for).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.avtime import WorldTime
from repro.errors import SimulationError
from repro.values.mediatype import MediaType


def _byte_size(obj: Any) -> int | None:
    """The measurable byte length of a payload, or None if opaque."""
    nbytes = getattr(obj, "nbytes", None)  # numpy arrays
    if nbytes is not None:
        return nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    return None


@dataclass(frozen=True, slots=True)
class StreamElement:
    """One data element in flight."""

    payload: Any
    index: int
    ideal_time: WorldTime
    media_type: MediaType
    size_bits: int

    def __post_init__(self) -> None:
        # Traffic accounting (channels, devices, obs counters) sums
        # size_bits; a negative size would silently corrupt every total.
        if self.size_bits < 0:
            raise SimulationError(
                f"stream element size_bits must be >= 0, got {self.size_bits} "
                f"(element index {self.index})"
            )

    def with_payload(self, payload: Any, media_type: MediaType | None = None,
                     size_bits: int | None = None) -> "StreamElement":
        """A transformed copy (same timing identity, new payload).

        ``size_bits`` inheritance rule: omitting ``size_bits`` is only
        valid when the new payload has the same type and (when
        measurable: ndarray / bytes) the same byte length as the old
        one — a transformer that changes the payload's shape must say
        what the new wire size is, otherwise channel and device traffic
        accounting would silently keep charging the old size.

        Subclasses of ``StreamElement`` keep their concrete type
        through transformer chains (``dataclasses.replace`` path).
        """
        if size_bits is None:
            old = self.payload
            if payload is not old:
                old_n = _byte_size(old)
                if (type(payload) is not type(old)
                        or (old_n is not None and _byte_size(payload) != old_n)):
                    raise SimulationError(
                        f"with_payload changed the payload "
                        f"({type(old).__name__}/{old_n} -> "
                        f"{type(payload).__name__}/{_byte_size(payload)} bytes) "
                        f"without an explicit size_bits; traffic accounting "
                        f"cannot inherit {self.size_bits} bits (element index "
                        f"{self.index})"
                    )
            size_bits = self.size_bits
        elif size_bits < 0:
            raise SimulationError(
                f"stream element size_bits must be >= 0, got {size_bits} "
                f"(element index {self.index})"
            )
        cls = type(self)
        if cls is StreamElement:
            # Fast constructor path: frozen-dataclass __init__ +
            # __post_init__ via replace() is ~3x the cost of five slot
            # stores, and size_bits is already validated above.
            new = object.__new__(cls)
            _set = object.__setattr__
            _set(new, "payload", payload)
            _set(new, "index", self.index)
            _set(new, "ideal_time", self.ideal_time)
            _set(new, "media_type", media_type or self.media_type)
            _set(new, "size_bits", size_bits)
            return new
        return replace(
            self,
            payload=payload,
            media_type=media_type or self.media_type,
            size_bits=size_bits,
        )


class EndOfStream:
    """Sentinel closing a stream; compares equal to itself only."""

    _instance: "EndOfStream | None" = None

    def __new__(cls) -> "EndOfStream":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "END_OF_STREAM"


END_OF_STREAM = EndOfStream()
