"""Synthetic AV content generators.

The paper's workloads (newscasts, promotional videos, virtual-world
imagery) are proprietary 1993 media; per the substitution rule these
generators produce deterministic synthetic equivalents with the relevant
statistical properties: temporal coherence for interframe codecs, flat
regions for RLE, tonal audio for the compressors, and multi-track
newscast composites for temporal composition.

:mod:`repro.synth.arrivals` holds the seeded arrival/popularity
samplers (Poisson inter-arrival steps, Zipf-with-viral-share asset
picks, mixture picks) shared by the overload, cache, soak and herd
workload generators — one rng-stream discipline for all of them.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.avtime import WorldTime
from repro.synth.arrivals import (
    mixture_pick,
    poisson_step,
    uniform_arrival,
    zipf_pick,
    zipf_pmf,
    zipf_weights,
)
from repro.temporal import TCompSpec, TemporalComposite, Timeline, TrackSpec
from repro.values import (
    LVVideoValue,
    MIDIEvent,
    MIDIValue,
    RawAudioValue,
    RawVideoValue,
    TextStreamValue,
)
from repro.values.mediatype import standard_type
from repro.values.text import TextItem

__all__ = [
    "NEWSCAST_CLIP_SPEC",
    "analog_master",
    "fig1_timeline",
    "flat_video",
    "jingle",
    "mixture_pick",
    "moving_scene",
    "newscast_clip",
    "noise_video",
    "poisson_step",
    "speech_like",
    "subtitle_track",
    "tone",
    "uniform_arrival",
    "zipf_pick",
    "zipf_pmf",
    "zipf_weights",
]


def moving_scene(num_frames: int = 30, width: int = 64, height: int = 48,
                 color: bool = False, seed: int = 0) -> RawVideoValue:
    """Temporally coherent video: a bright square drifting over a gradient.

    Adjacent frames differ by a few pixels — the workload interframe
    codecs were built for.
    """
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:height, 0:width]
    background = ((x * 255) // max(1, width - 1)).astype(np.uint8) // 2
    frames = np.empty((num_frames, height, width), dtype=np.uint8)
    box = max(4, min(width, height) // 4)
    vx, vy = 2, 1
    px, py = rng.integers(0, max(1, width - box)), rng.integers(0, max(1, height - box))
    for i in range(num_frames):
        frame = background.copy()
        frame[py:py + box, px:px + box] = 230
        frames[i] = frame
        px = (px + vx) % max(1, width - box)
        py = (py + vy) % max(1, height - box)
    if color:
        rgb = np.stack([frames, np.roll(frames, 7, axis=2), 255 - frames], axis=3)
        return RawVideoValue(rgb, rate=30.0)
    return RawVideoValue(frames, rate=30.0)


def noise_video(num_frames: int = 30, width: int = 64, height: int = 48,
                seed: int = 0) -> RawVideoValue:
    """Temporally uncorrelated video (worst case for interframe coding)."""
    rng = np.random.default_rng(seed)
    frames = rng.integers(0, 256, size=(num_frames, height, width), dtype=np.uint8)
    return RawVideoValue(frames, rate=30.0)


def flat_video(num_frames: int = 30, width: int = 64, height: int = 48,
               level: int = 128) -> RawVideoValue:
    """Constant frames (best case for RLE)."""
    frames = np.full((num_frames, height, width), level, dtype=np.uint8)
    return RawVideoValue(frames, rate=30.0)


def analog_master(num_frames: int = 30, width: int = 64, height: int = 48,
                  seed: int = 0) -> LVVideoValue:
    """An analog LaserVision value (same content as moving_scene)."""
    digital = moving_scene(num_frames, width, height, seed=seed)
    return LVVideoValue(digital.frames_array, rate=30.0)


def tone(seconds: float = 1.0, frequency_hz: float = 440.0,
         sample_rate: float = 22050.0, channels: int = 1,
         amplitude: float = 0.5) -> RawAudioValue:
    """A sine tone with a quiet second harmonic."""
    n = max(1, int(seconds * sample_rate))
    t = np.arange(n) / sample_rate
    wave = amplitude * np.sin(2 * np.pi * frequency_hz * t)
    wave += amplitude * 0.2 * np.sin(2 * np.pi * 2 * frequency_hz * t)
    pcm = np.round(wave * 32767.0).astype(np.int16)
    samples = np.tile(pcm, (channels, 1))
    return RawAudioValue(samples, sample_rate=sample_rate)


def speech_like(seconds: float = 1.0, sample_rate: float = 8000.0,
                seed: int = 0) -> RawAudioValue:
    """Band-limited noise bursts resembling speech envelopes."""
    rng = np.random.default_rng(seed)
    n = max(1, int(seconds * sample_rate))
    noise = rng.normal(0, 1, n)
    # Simple smoothing (low-pass) plus a syllable-rate envelope.
    kernel = np.ones(8) / 8
    smooth = np.convolve(noise, kernel, mode="same")
    envelope = 0.5 * (1 + np.sin(2 * np.pi * 3.0 * np.arange(n) / sample_rate))
    pcm = np.round(smooth * envelope * 12000.0).astype(np.int16)
    return RawAudioValue(pcm, sample_rate=sample_rate)


def subtitle_track(lines: Optional[Sequence[str]] = None,
                   rate: float = 0.5) -> TextStreamValue:
    """A subtitle stream (default: one line every 2 seconds)."""
    lines = list(lines) if lines else [
        "Good evening.", "Tonight's top story.", "More after the break.",
    ]
    return TextStreamValue([TextItem(line) for line in lines], rate=rate)


def jingle(notes: Optional[Sequence[int]] = None,
           ticks_per_second: float = 480.0) -> MIDIValue:
    """A short MIDI melody (C major arpeggio by default)."""
    notes = list(notes) if notes else [60, 64, 67, 72]
    events = [
        MIDIEvent(tick=i * 240, note=note, velocity=100, duration_ticks=240)
        for i, note in enumerate(notes)
    ]
    return MIDIValue(events, ticks_per_second=ticks_per_second)


NEWSCAST_CLIP_SPEC = TCompSpec("clip", (
    TrackSpec("videoTrack", standard_type("video/*")),
    TrackSpec("englishTrack", standard_type("audio/*")),
    TrackSpec("frenchTrack", standard_type("audio/*")),
    TrackSpec("subtitleTrack", standard_type("text/stream")),
))


def newscast_clip(video_frames: int = 30, audio_seconds: float = 1.0,
                  video_delay_s: float = 0.0, seed: int = 0) -> TemporalComposite:
    """The paper's Newscast.clip: 4 temporally composed tracks (Fig. 1).

    By default all tracks start together; ``video_delay_s`` reproduces the
    Fig. 1 shape where the video track occupies a different span than the
    audio/subtitle tracks.
    """
    video = moving_scene(video_frames, seed=seed)
    english = tone(audio_seconds, 440.0)
    french = tone(audio_seconds, 330.0)
    subtitles = subtitle_track(rate=max(0.25, 2.0 / max(audio_seconds, 0.1)))
    if video_delay_s:
        video = video.translate(WorldTime(video_delay_s))
    values = {
        "videoTrack": video,
        "englishTrack": english,
        "frenchTrack": french,
        "subtitleTrack": subtitles,
    }
    return TemporalComposite(NEWSCAST_CLIP_SPEC, values)


def fig1_timeline(t0: float = 0.0, t1: float = 1.0, t2: float = 3.0) -> Timeline:
    """The exact timeline of Fig. 1: video [t0, t1); other tracks [t1, t2)."""
    timeline = Timeline()
    timeline.place("videoTrack", WorldTime(t0), WorldTime(t1 - t0))
    for track in ("englishTrack", "frenchTrack", "subtitleTrack"):
        timeline.place(track, WorldTime(t1), WorldTime(t2 - t1))
    return timeline
