"""Seeded arrival/popularity samplers shared by every workload generator.

Three generators used to carry private copies of the same sampling
idioms — Poisson inter-arrival clocks (`repro.admission.workload`),
Zipf asset popularity with a viral share routed to asset 0
(`repro.cache.scenarios`, `repro.soak.phases`) and cumulative-threshold
mixture picks (the overload priority mix).  The herd simulator needs
the *same* distributions in vectorized form, so the scalar samplers
live here once, with one hard rule:

**rng-stream discipline** — every helper consumes draws from the
caller's ``random.Random`` in exactly the order and arity of the
inline code it replaced.  ``zipf_pick`` burns one ``random()`` and, on
the non-viral branch, one ``choices()``; ``poisson_step`` burns one
``expovariate()``; ``mixture_pick`` burns one ``random()``.  That is
what keeps every pre-existing seeded timeline byte-identical
(``tests/test_synth_arrivals.py`` pins the digests), and what makes a
herd population and its discrete reference consume comparable streams.

The numpy-side equivalents (:func:`zipf_pmf`, used by
:class:`repro.herd.HerdPopulation` to compile whole populations into
per-epoch count vectors) share the same popularity law: rank weights
``1/rank`` over assets ``1..catalog_size-1`` with ``viral_share``
routed to asset 0.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import SimulationError

T = TypeVar("T")


def zipf_weights(catalog_size: int) -> List[float]:
    """Zipf(1) rank weights for the non-viral assets ``1..catalog_size-1``.

    Asset 0 is the viral asset and is not in the weight vector — it is
    chosen by the ``viral_share`` branch of :func:`zipf_pick` instead.
    """
    if catalog_size < 2:
        raise SimulationError(
            f"a Zipf catalog needs at least 2 assets, got {catalog_size}")
    return [1.0 / rank for rank in range(1, catalog_size)]


def zipf_pick(rng: random.Random, catalog_size: int, viral_share: float,
              weights: Sequence[float] | None = None) -> int:
    """One seeded asset choice: viral asset 0, else Zipf over the rest.

    Consumes one ``rng.random()`` and — on the non-viral branch — one
    ``rng.choices()``, exactly like the inline code this replaced.
    """
    if rng.random() < viral_share:
        return 0
    if weights is None:
        weights = zipf_weights(catalog_size)
    return rng.choices(range(1, catalog_size), weights=weights)[0]


def poisson_step(rng: random.Random, rate: float) -> float:
    """One Poisson inter-arrival gap (seconds) at ``rate`` arrivals/s."""
    if rate <= 0:
        raise SimulationError(f"arrival rate must be positive, got {rate}")
    return rng.expovariate(rate)


def mixture_pick(rng: random.Random,
                 cumulative_mix: Sequence[Tuple[float, T]]) -> T:
    """One draw through cumulative thresholds (e.g. the priority mix).

    ``cumulative_mix`` is ``((threshold, value), ...)`` with ascending
    thresholds ending at 1.0; consumes one ``rng.random()``.
    """
    draw = rng.random()
    return next(value for threshold, value in cumulative_mix
                if draw <= threshold)


def uniform_arrival(rng: random.Random, duration_s: float,
                    offset_s: float = 0.0) -> float:
    """One uniform arrival instant inside ``[offset, offset + duration)``."""
    return offset_s + rng.uniform(0.0, duration_s)


# ---------------------------------------------------------------------------
# vectorized (numpy) equivalents — the herd side of the same laws
# ---------------------------------------------------------------------------

def zipf_pmf(catalog_size: int, viral_share: float) -> np.ndarray:
    """The full catalog pmf: ``viral_share`` on asset 0, Zipf on the rest.

    This is the probability law :func:`zipf_pick` samples one draw at a
    time; the herd population samples whole per-epoch histograms from
    it with ``Generator.multinomial``.
    """
    if not 0.0 <= viral_share <= 1.0:
        raise SimulationError(
            f"viral share must be in [0, 1], got {viral_share}")
    weights = np.asarray(zipf_weights(catalog_size), dtype=np.float64)
    pmf = np.empty(catalog_size, dtype=np.float64)
    pmf[0] = viral_share
    pmf[1:] = (1.0 - viral_share) * weights / weights.sum()
    return pmf
