"""Quality factors and representation negotiation (paper §3.3, §4.1).

"Applications should specify data representation indirectly, in terms of
AV 'quality factors.' ... A video quality factor is an expression of the
form ``w x h x d @ r`` ... An audio quality factor is a description such
as voice-quality, FM-quality, or CD-quality. ... What is important is that
an AV database system, given a quality factor, be capable of determining a
data representation (if more than one possibility exists), the appropriate
encoding parameters, and storage and processing requirements."
"""

from repro.quality.factors import (
    AUDIO_QUALITIES,
    AudioQuality,
    QualityFactor,
    VideoQuality,
    parse_quality,
)
from repro.quality.negotiate import (
    Negotiator,
    Representation,
    RepresentationPlan,
    scale_video_quality,
)

__all__ = [
    "QualityFactor",
    "VideoQuality",
    "AudioQuality",
    "AUDIO_QUALITIES",
    "parse_quality",
    "Negotiator",
    "Representation",
    "RepresentationPlan",
    "scale_video_quality",
]
