"""Quality factor values and parsing.

Video quality factors use the paper's ``w x h x d @ r`` syntax, e.g. the
Newscast class declares ``quality 640 x 480 x 8 @ 30`` and the §4.3
session creates a window with ``quality 320x240x8 @ 30``.  Audio quality
factors are the named levels the paper lists: ``voice``, ``FM``, ``CD``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Dict, Union

from repro.errors import QualityError

_VIDEO_RE = re.compile(
    r"^\s*(\d+)\s*[xX]\s*(\d+)\s*[xX]\s*(\d+)\s*@\s*(\d+(?:\.\d+)?)\s*$"
)


@total_ordering
@dataclass(frozen=True, slots=True)
class VideoQuality:
    """A ``w x h x d @ r`` video quality factor."""

    width: int
    height: int
    depth: int
    rate: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise QualityError(f"quality geometry must be positive, got {self.width}x{self.height}")
        if self.depth not in (8, 24):
            raise QualityError(f"quality depth must be 8 or 24, got {self.depth}")
        if self.rate <= 0:
            raise QualityError(f"quality rate must be positive, got {self.rate}")

    @classmethod
    def parse(cls, text: str) -> "VideoQuality":
        match = _VIDEO_RE.match(text)
        if match is None:
            raise QualityError(f"malformed video quality factor {text!r} (expected 'w x h x d @ r')")
        w, h, d, r = match.groups()
        return cls(int(w), int(h), int(d), float(r))

    @property
    def raw_bps(self) -> float:
        """Uncompressed data rate this quality implies, bits/second."""
        return self.width * self.height * self.depth * self.rate

    @property
    def pixels(self) -> int:
        return self.width * self.height

    def dominates(self, other: "VideoQuality") -> bool:
        """True when this quality is >= ``other`` in every dimension."""
        return (
            self.width >= other.width
            and self.height >= other.height
            and self.depth >= other.depth
            and self.rate >= other.rate
        )

    def __lt__(self, other: "VideoQuality") -> bool:
        if not isinstance(other, VideoQuality):
            return NotImplemented
        # Total order by implied raw data rate; ties by geometry tuple.
        return (self.raw_bps, self.width, self.height, self.depth, self.rate) < (
            other.raw_bps, other.width, other.height, other.depth, other.rate,
        )

    def __str__(self) -> str:
        rate = int(self.rate) if self.rate == int(self.rate) else self.rate
        return f"{self.width}x{self.height}x{self.depth}@{rate}"


@total_ordering
@dataclass(frozen=True, slots=True)
class AudioQuality:
    """A named audio quality level."""

    name: str
    sample_rate: float
    depth: int
    channels: int

    @property
    def raw_bps(self) -> float:
        return self.sample_rate * self.depth * self.channels

    def dominates(self, other: "AudioQuality") -> bool:
        return (
            self.sample_rate >= other.sample_rate
            and self.depth >= other.depth
            and self.channels >= other.channels
        )

    def __lt__(self, other: "AudioQuality") -> bool:
        if not isinstance(other, AudioQuality):
            return NotImplemented
        return self.raw_bps < other.raw_bps

    def __str__(self) -> str:
        return f"{self.name}-quality"


#: The paper's three named audio quality levels.
AUDIO_QUALITIES: Dict[str, AudioQuality] = {
    "voice": AudioQuality("voice", sample_rate=8000.0, depth=8, channels=1),
    "fm": AudioQuality("fm", sample_rate=22050.0, depth=16, channels=1),
    "cd": AudioQuality("cd", sample_rate=44100.0, depth=16, channels=2),
}

QualityFactor = Union[VideoQuality, AudioQuality]


def parse_quality(text: str) -> QualityFactor:
    """Parse either quality-factor syntax.

    ``"640x480x8@30"`` → :class:`VideoQuality`;
    ``"voice"`` / ``"FM-quality"`` / ``"CD"`` → :class:`AudioQuality`.
    """
    normalized = text.strip().lower().removesuffix("-quality")
    if normalized in AUDIO_QUALITIES:
        return AUDIO_QUALITIES[normalized]
    if "@" in text:
        return VideoQuality.parse(text)
    raise QualityError(
        f"unrecognized quality factor {text!r} "
        f"(expected 'w x h x d @ r' or one of {sorted(AUDIO_QUALITIES)})"
    )
