"""Representation negotiation: quality factor → representation plan.

The paper requires that "an AV database system, given a quality factor, be
capable of determining a data representation (if more than one possibility
exists), the appropriate encoding parameters, and storage and processing
requirements."  :class:`Negotiator` implements that determination over the
codecs this build provides, and :func:`scale_video_quality` implements the
scalable-video degradation path ("a video value encoded at one quality can
be viewed at a lower quality by ignoring some of the encoded data").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import QualityError
from repro.quality.factors import AudioQuality, QualityFactor, VideoQuality


@dataclass(frozen=True, slots=True)
class Representation:
    """A concrete (media type, codec, parameters) choice."""

    media_type_name: str
    codec_name: str
    params: tuple  # codec-specific, hashable (e.g. (("q", 4),))

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True, slots=True)
class RepresentationPlan:
    """What serving a quality factor costs.

    Attributes
    ----------
    representation:
        The chosen representation.
    storage_bps:
        Expected stored bits per second of media (after compression).
    bandwidth_bps:
        Network bandwidth a stream of this representation needs.
    decode_cost:
        Relative per-element decode cost (1.0 = raw copy), used for
        processing-requirement estimates by the resource manager.
    """

    representation: Representation
    storage_bps: float
    bandwidth_bps: float
    decode_cost: float


# Typical compression ratios and decode costs of the toy codecs, measured
# on the calibration corpus in tests/test_codecs.py.
_VIDEO_CHOICES: List[tuple[str, str, float, float]] = [
    # (media type, codec, compression ratio, decode cost)
    ("video/mpeg", "mpeg", 12.0, 3.0),
    ("video/jpeg", "jpeg", 8.0, 2.0),
    ("video/dvi", "dvi", 6.0, 1.5),
    ("video/rle", "rle", 2.0, 1.2),
    ("video/raw", "raw", 1.0, 1.0),
]

_AUDIO_CHOICES: Dict[str, tuple[str, str, float, float]] = {
    "voice": ("audio/mulaw", "mulaw", 2.0, 1.2),
    "fm": ("audio/adpcm", "adpcm", 4.0, 1.5),
    "cd": ("audio/cd", "pcm", 1.0, 1.0),
}


class Negotiator:
    """Chooses representations subject to a bandwidth budget.

    Parameters
    ----------
    prefer_compressed:
        When True (default) pick the strongest codec whose decode cost is
        acceptable; when False prefer raw unless the bandwidth budget
        forces compression.
    """

    def __init__(self, prefer_compressed: bool = True) -> None:
        self.prefer_compressed = prefer_compressed

    def plan(self, quality: QualityFactor,
             bandwidth_budget_bps: Optional[float] = None) -> RepresentationPlan:
        """Determine a representation for ``quality``.

        Raises :class:`QualityError` if no representation fits the budget.
        """
        if isinstance(quality, VideoQuality):
            return self._plan_video(quality, bandwidth_budget_bps)
        if isinstance(quality, AudioQuality):
            return self._plan_audio(quality, bandwidth_budget_bps)
        raise QualityError(f"unsupported quality factor {quality!r}")

    def _plan_video(self, quality: VideoQuality,
                    budget: Optional[float]) -> RepresentationPlan:
        raw_bps = quality.raw_bps
        choices = _VIDEO_CHOICES if self.prefer_compressed else list(reversed(_VIDEO_CHOICES))
        feasible = []
        for type_name, codec, ratio, cost in choices:
            bps = raw_bps / ratio
            if budget is not None and bps > budget:
                continue
            feasible.append((type_name, codec, ratio, cost, bps))
        if not feasible:
            raise QualityError(
                f"no video representation for {quality} fits bandwidth budget "
                f"{budget:g} b/s (raw would need {raw_bps:g})"
            )
        type_name, codec, ratio, cost, bps = feasible[0]
        params = (("width", quality.width), ("height", quality.height),
                  ("depth", quality.depth), ("rate", quality.rate))
        return RepresentationPlan(
            Representation(type_name, codec, params),
            storage_bps=bps, bandwidth_bps=bps, decode_cost=cost,
        )

    def _plan_audio(self, quality: AudioQuality,
                    budget: Optional[float]) -> RepresentationPlan:
        try:
            type_name, codec, ratio, cost = _AUDIO_CHOICES[quality.name]
        except KeyError:
            raise QualityError(f"no representation table for audio quality {quality.name!r}") from None
        bps = quality.raw_bps / ratio
        if budget is not None and bps > budget:
            raise QualityError(
                f"audio quality {quality} needs {bps:g} b/s, budget is {budget:g}"
            )
        params = (("sample_rate", quality.sample_rate), ("depth", quality.depth),
                  ("channels", quality.channels))
        return RepresentationPlan(
            Representation(type_name, codec, params),
            storage_bps=bps, bandwidth_bps=bps, decode_cost=cost,
        )


@dataclass(frozen=True, slots=True)
class VideoScalePlan:
    """How to degrade a stored quality to a requested one.

    ``frame_keep_every`` = n means keep every n-th frame (temporal
    scaling); ``spatial_divisor`` = k means subsample pixels by k in each
    dimension.  Both are achieved by *ignoring* encoded data, matching the
    scalable-video notion.
    """

    frame_keep_every: int
    spatial_divisor: int
    delivered: VideoQuality


def scale_video_quality(stored: VideoQuality, requested: VideoQuality) -> VideoScalePlan:
    """Plan a scalable-video degradation from ``stored`` to ``requested``.

    The delivered quality is the best quality <= ``requested`` reachable
    by integer frame dropping and integer spatial subsampling of
    ``stored``.  Requesting *higher* than stored is allowed — the paper
    notes upscaling "does not add information" — and simply delivers the
    stored quality unchanged (divisors of 1).
    """
    if requested.dominates(stored):
        return VideoScalePlan(1, 1, stored)
    keep = max(1, round(stored.rate / requested.rate))
    divisor = max(1, min(stored.width // requested.width,
                         stored.height // requested.height))
    delivered = VideoQuality(
        width=stored.width // divisor,
        height=stored.height // divisor,
        depth=min(stored.depth, requested.depth),
        rate=stored.rate / keep,
    )
    return VideoScalePlan(keep, divisor, delivered)
