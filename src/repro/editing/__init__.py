"""Non-linear editing (paper §3.3).

"consider an application which combines two (or more) video values.  Such
'video mixing' is commonly used during video editing. ... interactivity
(which is the main advantage of 'non-linear' digital video editing as
opposed to video tape editing)."

* :func:`clip_range` / :func:`cut` — frame-accurate sub-clips sharing
  storage where the representation permits;
* :class:`EditDecisionList` — an ordered list of segments rendered into
  a new value (splice);
* :class:`Editor` — the interactive-editing facade whose ``mix`` goes
  through placement admission: same-device mixes trigger the copy
  fallback (benchmark C1) unless the caller opted into strict placement.
"""

from repro.editing.edl import EditDecisionList, Segment
from repro.editing.ops import clip_range, cut, dissolve, overlay_mix, splice
from repro.editing.editor import Editor, MixOutcome

__all__ = [
    "clip_range",
    "cut",
    "splice",
    "overlay_mix",
    "dissolve",
    "EditDecisionList",
    "Segment",
    "Editor",
    "MixOutcome",
]
