"""Frame-level editing operations on video values.

Representation-aware: raw values are sliced as array views (zero copy),
intraframe-encoded values as chunk-list slices (zero copy), and
interframe-encoded values are decoded and re-encoded so that every output
starts on a clean keyframe.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.avtime import WorldTime
from repro.errors import DataModelError
from repro.values.video import (
    EncodedVideoValue,
    MPEGVideoValue,
    RawVideoValue,
    VideoValue,
)


def clip_range(value: VideoValue, start: int, count: int) -> VideoValue:
    """Frames ``[start, start+count)`` as a new value of the same class."""
    if start < 0 or count < 1 or start + count > value.num_frames:
        raise DataModelError(
            f"clip range [{start}, {start + count}) out of [0, {value.num_frames})"
        )
    if isinstance(value, MPEGVideoValue):
        # Interframe deps: re-encode the range so it is self-contained.
        frames = np.stack([value.frame(i) for i in range(start, start + count)])
        return value.codec.encode_value(
            RawVideoValue(frames, rate=value.mapping.rate)
        )
    if isinstance(value, EncodedVideoValue):
        return type(value)(
            value.chunks[start:start + count], value.codec,
            value.width, value.height, value.depth, rate=value.mapping.rate,
        )
    if isinstance(value, RawVideoValue):
        sliced = value.frames_array[start:start + count]
        clipped = type(value)(sliced, rate=value.mapping.rate)
        return clipped
    raise DataModelError(f"cannot clip {type(value).__name__}")


def cut(value: VideoValue, at_frame: int) -> Tuple[VideoValue, VideoValue]:
    """Split into [0, at) and [at, end)."""
    if at_frame < 1 or at_frame >= value.num_frames:
        raise DataModelError(
            f"cut point {at_frame} must be inside (0, {value.num_frames})"
        )
    return (
        clip_range(value, 0, at_frame),
        clip_range(value, at_frame, value.num_frames - at_frame),
    )


def cut_at_time(value: VideoValue, when: WorldTime) -> Tuple[VideoValue, VideoValue]:
    """Split at a world time (frame-accurate)."""
    frame = value.world_to_object(when).index
    return cut(value, frame)


def _require_compatible(values: List[VideoValue]) -> None:
    geometries = {v.geometry for v in values}
    if len(geometries) != 1:
        raise DataModelError(f"geometry mismatch across values: {geometries}")
    rates = {v.mapping.rate for v in values}
    if len(rates) != 1:
        raise DataModelError(f"frame-rate mismatch across values: {rates}")


def splice(values: List[VideoValue]) -> RawVideoValue:
    """Concatenate clips into one raw value (decodes encoded inputs)."""
    if not values:
        raise DataModelError("splice needs at least one value")
    _require_compatible(values)
    frames = np.concatenate([
        np.stack([v.frame(i) for i in range(v.num_frames)]) for v in values
    ])
    return RawVideoValue(frames, rate=values[0].mapping.rate)


def overlay_mix(a: VideoValue, b: VideoValue, alpha: float = 0.5) -> RawVideoValue:
    """Blend two clips frame by frame: ``alpha*a + (1-alpha)*b``."""
    if not 0.0 <= alpha <= 1.0:
        raise DataModelError(f"alpha must be in [0, 1], got {alpha}")
    _require_compatible([a, b])
    n = min(a.num_frames, b.num_frames)
    frames = np.empty((n, *a.frame(0).shape), dtype=np.uint8)
    for i in range(n):
        mixed = alpha * a.frame(i).astype(np.float64) \
            + (1 - alpha) * b.frame(i).astype(np.float64)
        frames[i] = np.clip(np.round(mixed), 0, 255).astype(np.uint8)
    return RawVideoValue(frames, rate=a.mapping.rate)


def dissolve(a: VideoValue, b: VideoValue, transition_frames: int) -> RawVideoValue:
    """A -> B with a linear cross-dissolve of ``transition_frames``."""
    _require_compatible([a, b])
    if transition_frames < 1:
        raise DataModelError(f"transition needs >= 1 frame, got {transition_frames}")
    if transition_frames > min(a.num_frames, b.num_frames):
        raise DataModelError(
            f"transition of {transition_frames} frames exceeds clip lengths "
            f"({a.num_frames}, {b.num_frames})"
        )
    head = [a.frame(i) for i in range(a.num_frames - transition_frames)]
    blend = []
    for j in range(transition_frames):
        weight = (j + 1) / (transition_frames + 1)
        fa = a.frame(a.num_frames - transition_frames + j).astype(np.float64)
        fb = b.frame(j).astype(np.float64)
        blend.append(np.clip(np.round((1 - weight) * fa + weight * fb), 0, 255)
                     .astype(np.uint8))
    tail = [b.frame(i) for i in range(transition_frames, b.num_frames)]
    frames = np.stack(head + blend + tail)
    return RawVideoValue(frames, rate=a.mapping.rate)
