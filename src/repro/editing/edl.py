"""Edit decision lists.

The professional editing workflow: an EDL is an ordered list of
(source value, in-point, out-point) segments; ``render`` produces the
program as a new value.  EDLs are cheap to build and rearrange (the
non-linear-editing interactivity the paper emphasizes); only rendering
touches frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.avtime import WorldTime
from repro.errors import DataModelError
from repro.values.video import RawVideoValue, VideoValue


@dataclass(frozen=True, slots=True)
class Segment:
    """One EDL entry: frames [in_frame, out_frame) of a source value."""

    source: VideoValue
    in_frame: int
    out_frame: int

    def __post_init__(self) -> None:
        if not 0 <= self.in_frame < self.out_frame <= self.source.num_frames:
            raise DataModelError(
                f"segment [{self.in_frame}, {self.out_frame}) invalid for a "
                f"{self.source.num_frames}-frame source"
            )

    @property
    def frame_count(self) -> int:
        return self.out_frame - self.in_frame

    @property
    def duration(self) -> WorldTime:
        return WorldTime(self.frame_count / self.source.mapping.rate)


class EditDecisionList:
    """An ordered program of segments."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []

    # -- editing (all O(1) on media data) ----------------------------------
    def append(self, source: VideoValue, in_frame: int = 0,
               out_frame: int | None = None) -> Segment:
        segment = Segment(source, in_frame,
                          source.num_frames if out_frame is None else out_frame)
        self._segments.append(segment)
        return segment

    def insert(self, position: int, segment: Segment) -> None:
        if not 0 <= position <= len(self._segments):
            raise DataModelError(
                f"insert position {position} out of [0, {len(self._segments)}]"
            )
        self._segments.insert(position, segment)

    def remove(self, position: int) -> Segment:
        if not 0 <= position < len(self._segments):
            raise DataModelError(f"no segment at position {position}")
        return self._segments.pop(position)

    def move(self, src: int, dst: int) -> None:
        segment = self.remove(src)
        self.insert(dst, segment)

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def segments(self) -> List[Segment]:
        return list(self._segments)

    # -- derived -------------------------------------------------------------
    def total_frames(self) -> int:
        return sum(s.frame_count for s in self._segments)

    def duration(self) -> WorldTime:
        total = WorldTime.zero()
        for segment in self._segments:
            total = total + segment.duration
        return total

    def render(self) -> RawVideoValue:
        """Materialize the program as one raw value."""
        if not self._segments:
            raise DataModelError("cannot render an empty EDL")
        geometries = {s.source.geometry for s in self._segments}
        if len(geometries) != 1:
            raise DataModelError(f"EDL mixes geometries: {geometries}")
        rates = {s.source.mapping.rate for s in self._segments}
        if len(rates) != 1:
            raise DataModelError(f"EDL mixes frame rates: {rates}")
        frames = np.concatenate([
            np.stack([s.source.frame(i) for i in range(s.in_frame, s.out_frame)])
            for s in self._segments
        ])
        return RawVideoValue(frames, rate=self._segments[0].source.mapping.rate)
