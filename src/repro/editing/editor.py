"""The interactive editor facade and the §3.3 placement interaction.

``Editor.mix`` is the paper's video-mixing example made concrete: mixing
needs both sources streaming simultaneously.  If their devices can admit
both streams, the mix runs immediately; if the values share a saturated
device, the editor either fails fast (``strict_placement=True`` — the
client-visible-placement stance) or transparently copies one value to
another device first, paying the interactivity-destroying delay the paper
warns about.  Benchmark C1 measures both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.editing.ops import overlay_mix
from repro.errors import PlacementError
from repro.storage.placement import PlacementManager
from repro.values.video import RawVideoValue, VideoValue


@dataclass
class MixOutcome:
    """What a mix request did and cost."""

    result: RawVideoValue
    copied: bool
    copy_seconds: float
    start_delay_seconds: float


class Editor:
    """Non-linear editor bound to a placement manager."""

    def __init__(self, placement: PlacementManager,
                 strict_placement: bool = False) -> None:
        self.placement = placement
        self.strict_placement = strict_placement

    def can_mix_interactively(self, a: VideoValue, b: VideoValue) -> bool:
        """Would both sources stream simultaneously from where they sit?"""
        return self.placement.can_stream_together([a, b])

    def mix(self, a: VideoValue, b: VideoValue,
            alpha: float = 0.5) -> Generator:
        """DES subroutine mixing two placed values; returns a MixOutcome.

        Run it with ``simulator.run_until_complete(simulator.spawn(...))``.
        """
        simulator = self.placement.simulator
        started = simulator.now.seconds
        copied = False
        copy_seconds = 0.0
        if not self.can_mix_interactively(a, b):
            if self.strict_placement:
                device = self.placement.device_of(a).name
                raise PlacementError(
                    f"values on device {device!r} cannot stream together; "
                    f"strict placement forbids the copy fallback — "
                    f"re-place one value explicitly"
                )
            # Physical-data-independence fallback: move b elsewhere first.
            source_device = self.placement.device_of(b).name
            target = self.placement.pick_device_for_copy(b, avoid=source_device)
            copy_start = simulator.now.seconds
            yield from self.placement.copy(b, target.name)
            copy_seconds = simulator.now.seconds - copy_start
            copied = True
        # Both streams now admissible: reserve, stream, release.
        res_a = self.placement.device_of(a).reserve(a.data_rate_bps(), "mix-a")
        res_b = self.placement.device_of(b).reserve(b.data_rate_bps(), "mix-b")
        try:
            yield from res_a.open()
            yield from res_b.open()
            start_delay = simulator.now.seconds - started
            # Both reads proceed in parallel; the slower stream (here: the
            # longer read at its reserved rate) bounds the mix duration.
            yield from res_a.read(a.data_size_bits())
            res_b.bits_read += b.data_size_bits()
            res_b.device.total_bits_read += b.data_size_bits()
        finally:
            res_a.release()
            res_b.release()
        result = overlay_mix(a, b, alpha)
        return MixOutcome(result, copied, copy_seconds, start_delay)
