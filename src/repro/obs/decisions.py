"""Structured decision events: *why* the system treated a session as it did.

Metrics say *how much* (42 sessions shed), traces say *when* (a span at
t=0.4); neither answers "why was ``viewer-7`` degraded?".  A
:class:`DecisionLog` records the control-plane verdicts themselves —
admit / preempt / degrade / shed / queue from the admission controller,
breaker transitions, replica routing and failover from the cluster,
retry and deadline firings from the recovery policies — each tagged with
the *subject* (the session or stream label the decision was about) so a
session's full decision chain can be reconstructed afterwards
(``python -m repro explain``).

The log is the third slot of an :class:`~repro.obs.Obs`, following the
tracer's pattern exactly: emitters pre-bind it and guard with
``if decisions.enabled:``, the :class:`~repro.sim.Simulator` binds its
virtual clock on construction (first binder wins), and
:data:`NULL_DECISIONS` is the shared disabled implementation so the
default cost is one attribute load per decision point.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class DecisionEvent:
    """One recorded control-plane verdict."""

    __slots__ = ("ts", "kind", "actor", "subject", "args")

    def __init__(self, ts: float, kind: str, actor: str, subject: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self.ts = ts            # virtual seconds
        self.kind = kind        # "admit" | "degrade" | "shed" | "queue" | ...
        self.actor = actor      # the deciding component ("admission", "node-1")
        self.subject = subject  # the session/stream the decision was about
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ts": self.ts, "kind": self.kind,
            "actor": self.actor, "subject": self.subject,
        }
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:
        return (f"DecisionEvent({self.kind!r}, subject={self.subject!r}, "
                f"actor={self.actor!r}, ts={self.ts:g})")


class DecisionLog:
    """Collects decision events against a virtual clock (append-only)."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.events: List[DecisionEvent] = []
        self._clock: Callable[[], float] = clock if clock is not None else _zero

    # -- clock binding -----------------------------------------------------
    @property
    def clock_bound(self) -> bool:
        return self._clock is not _zero

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt a virtual clock; ignored if one is already bound."""
        if not self.clock_bound:
            self._clock = clock

    # -- recording ---------------------------------------------------------
    def emit(self, kind: str, subject: str, actor: str = "", **args: Any) -> None:
        """Record one verdict about ``subject`` at the current virtual time."""
        self.events.append(DecisionEvent(
            self._clock(), kind, actor, subject, args or None))

    # -- reconstruction ----------------------------------------------------
    def chain(self, subject: str) -> List[DecisionEvent]:
        """Every decision about ``subject``, in emission (= causal) order.

        Emission order is total within one run: the DES kernel is
        single-threaded and ties at equal virtual time preserve the order
        the decisions were actually taken in.
        """
        return [e for e in self.events if e.subject == subject]

    def subjects(self) -> List[str]:
        """Every subject that has at least one decision, sorted."""
        return sorted({e.subject for e in self.events})

    def by_kind(self, kind: str) -> List[DecisionEvent]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


def _zero() -> float:
    return 0.0


class NullDecisionLog:
    """The disabled log: records nothing, costs one attribute load."""

    enabled = False
    events: List[DecisionEvent] = []  # always empty; shared read-only view

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    @property
    def clock_bound(self) -> bool:
        return False

    def emit(self, kind: str, subject: str, actor: str = "", **args: Any) -> None:
        pass

    def chain(self, subject: str) -> List[DecisionEvent]:
        return []

    def subjects(self) -> List[str]:
        return []

    def by_kind(self, kind: str) -> List[DecisionEvent]:
        return []

    def __len__(self) -> int:
        return 0


NULL_DECISIONS = NullDecisionLog()
