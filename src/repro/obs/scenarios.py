"""Named scenarios for the ``python -m repro trace`` CLI.

Each scenario builds a fresh :class:`~repro.avdb.AVDatabaseSystem` inside
the caller's ambient observability scope (the CLI installs one with a
live tracer), drives it to completion in virtual time, and returns a
small dict of headline facts for the console.  Because the systems are
constructed *inside* the scope, every layer binds its instruments to the
scoped registry and its spans to the scoped tracer.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import AdmissionError


def _base_system(channel_bps: float = 200_000_000.0):
    """A system with one disk and the paper's newscast schema."""
    from repro.avdb import AVDatabaseSystem
    from repro.db import AttributeSpec, ClassDef
    from repro.storage import MagneticDisk
    from repro.synth import NEWSCAST_CLIP_SPEC
    from repro.values import VideoValue

    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.db.define_class(ClassDef("SimpleNewscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("whenBroadcast", str, indexed=True),
        AttributeSpec("videoTrack", VideoValue),
    ]))
    system.db.define_class(ClassDef("Newscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("whenBroadcast", str, indexed=True),
    ], tcomps=[NEWSCAST_CLIP_SPEC]))
    return system


def quickstart() -> Dict[str, object]:
    """The paper's six-statement example: one video stream, db to window."""
    from repro.db import Q
    from repro.synth import moving_scene

    system = _base_system()
    video = moving_scene(30, 64, 48)
    system.store_value(video, "disk0")
    system.db.insert("SimpleNewscast", title="60 Minutes",
                     whenBroadcast="1992-11-01", videoTrack=video)
    with system.open_session("quickstart") as session:
        ref = session.select_one("SimpleNewscast", Q.eq("title", "60 Minutes"))
        source = session.new_db_source((ref, "videoTrack"))
        window = session.new_video_window("320x240x8@30")
        stream = session.connect(source, window)
        stream.start()
        end = session.run()
        frames = len(window.presented)
        bits = stream.bits_transferred
    return {
        "frames_presented": frames,
        "virtual_seconds": round(end.seconds, 3),
        "bytes_on_channel": bits // 8,
    }


def newscast() -> Dict[str, object]:
    """The multi-track example: MultiSource/MultiSink over a 4-track clip."""
    from repro.activities.library import Speaker, SubtitleWindow, VideoWindow
    from repro.db import Q
    from repro.synth import newscast_clip

    system = _base_system()
    clip = newscast_clip(video_frames=20, audio_seconds=0.7)
    for track in clip.track_names:
        system.store_value(clip.value(track), "disk0")
    system.db.insert("Newscast", title="60 Minutes",
                     whenBroadcast="1992-11-01", clip=clip)
    with system.open_session("newscast") as session:
        my_news = session.select_one("Newscast", Q.eq("title", "60 Minutes"))
        source = session.new_db_source((my_news, "clip"))
        sink = session.new_multi_sink()
        sink.install(VideoWindow(system.simulator, name="window"),
                     track="videoTrack")
        sink.install(Speaker(system.simulator, name="english"),
                     track="englishTrack")
        sink.install(Speaker(system.simulator, name="french"),
                     track="frenchTrack")
        sink.install(SubtitleWindow(system.simulator, name="subtitles"),
                     track="subtitleTrack")
        stream = session.connect(source, sink)
        stream.start()
        end = session.run()
        frames = len(sink.components["window"].presented)
        skew = source.max_skew()
    return {
        "tracks": len(clip.track_names),
        "frames_presented": frames,
        "max_skew_s": round(skew, 6),
        "virtual_seconds": round(end.seconds, 3),
    }


def contention() -> Dict[str, object]:
    """Storage contention: a saturated device forces the §3.3 copy fallback.

    Two uncompressed streams cannot share the small disk, so the second
    value is copied to a spare device first — the trace shows the
    admission failure, the ``placement.copy`` span, and both streams.
    """
    from repro.db import Q
    from repro.storage import MagneticDisk
    from repro.synth import moving_scene

    system = _base_system()
    # A second, initially idle device to copy onto.
    system.add_storage(MagneticDisk(system.simulator, "disk1"))
    # Size the first disk so one stream fits and two do not.
    video_a = moving_scene(24, 160, 120, seed=1)
    video_b = moving_scene(24, 160, 120, seed=2)
    rate = video_a.data_rate_bps()
    # Room for one read-ahead stream (2x rate) but not a second (needs
    # at least 1x more); the leftover half-rate is what the copy gets.
    system.placement.device("disk0").bandwidth_bps = rate * 2.5
    for i, video in enumerate((video_a, video_b)):
        system.store_value(video, "disk0")
        system.db.insert("SimpleNewscast", title=f"clip-{i}",
                         whenBroadcast="1993-01-01", videoTrack=video)
    admission_failed = False
    with system.open_session("contention") as session:
        source_a = session.new_db_source(video_a)
        window_a = session.new_video_window(name="contention.window-a")
        session.connect(source_a, window_a).start()
        try:
            session.new_db_source(video_b)
        except AdmissionError:
            admission_failed = True
            # Physical-data-independence fallback: copy, then stream.
            system.simulator.spawn(
                system.placement.copy(video_b, "disk1"), name="copy-fallback"
            )
            system.simulator.run()
        source_b = session.new_db_source(video_b)
        window_b = session.new_video_window(name="contention.window-b")
        session.connect(source_b, window_b).start()
        end = session.run()
        frames = len(window_a.presented) + len(window_b.presented)
    return {
        "admission_failed_first": admission_failed,
        "copies": system.placement.copy_count,
        "frames_presented": frames,
        "virtual_seconds": round(end.seconds, 3),
    }


def faults() -> Dict[str, object]:
    """The disk-outage fault scenario under tracing.

    The trace shows the injected scheduler outages as ``fault:*``
    instants, failed requests, and the retry-with-backoff recovery that
    keeps the four streams delivering (late) frames.
    """
    from repro.faults.scenarios import disk_outage

    return disk_outage(seed=0, recover=True)


def overload() -> Dict[str, object]:
    """The priority-mix admission scenario under tracing.

    The trace shows the admission queue filling, two background streams
    preempted to admit the interactive arrivals, and the ``admission.*``
    counters (admitted / preempted / queue depth) in the summary.
    """
    from repro.admission.scenarios import priority_mix

    return priority_mix(seed=0, admission=True)


def cluster() -> Dict[str, object]:
    """The node-kill cluster scenario under tracing.

    The trace shows the ``cluster:node-down`` instant, per-stream
    ``cluster:failover`` instants as in-flight reads re-home to
    surviving replicas, and the capped ``cluster.repair`` spans that
    restore replication in the background.
    """
    from repro.cluster.scenarios import node_kill

    return node_kill(seed=0)


def cache() -> Dict[str, object]:
    """The Zipf flash-crowd cache scenario under tracing.

    The trace shows edge-cache hits short-circuiting the origin read
    path, BACKGROUND prefill streams racing the crowd, the
    ``cache-hot``/``replica-boost`` reaction, and the fleet-wide
    ``cache.*`` hit/miss/eviction counters in the summary.
    """
    from repro.cache.scenarios import zipf_crowd

    return zipf_crowd(seed=0, cached=True, sessions=400)


def herd() -> Dict[str, object]:
    """The hybrid herd surge scenario under tracing, scaled down.

    The trace shows the per-epoch coupler ticks folding thousands of
    clients into cohort reservations (``admission:*`` decision
    instants with ``count=`` fields), the foreground interactive
    sessions threading through the saturated trunk, and the ``herd.*``
    / ``cache.*`` aggregate counters in the summary.
    """
    from repro.herd.scenarios import surge

    return surge(seed=0, clients=4_000)


def query() -> Dict[str, object]:
    """The speech annotation-query scenario, scaled for the trace loop.

    No simulator runs here — the interesting record is the metrics
    snapshot (``annotations.*``, ``db.*``) and the planner's decision
    log, both of which land in the canonical export the CI determinism
    job double-runs and diffs.
    """
    from repro.annotations.scenarios import speech

    return speech(seed=0)


SCENARIOS: Dict[str, Callable[[], Dict[str, object]]] = {
    "quickstart": quickstart,
    "newscast": newscast,
    "contention": contention,
    "faults": faults,
    "overload": overload,
    "cluster": cluster,
    "cache": cache,
    "herd": herd,
    "query": query,
}
