"""Tracing: spans and instant events in virtual *and* wall time.

Every event carries two timestamps (the dual-stamping rule, README
"Observability"):

* ``ts`` — virtual :class:`~repro.avtime.WorldTime` seconds from the DES
  kernel the tracer is bound to (the time axis exported to Chrome
  ``trace_event`` / Perfetto);
* ``wall`` — wall-clock seconds since the tracer was created, so real
  CPU cost can be correlated with virtual behaviour.

A :class:`Span` measures a region that may cover virtual time (it can be
held across DES yields); :meth:`Tracer.instant` marks a point;
:meth:`Tracer.complete` records a region retroactively from its virtual
start and duration.  :class:`NullTracer` is the disabled implementation:
every operation is a no-op and ``enabled`` is ``False`` so hot paths can
skip argument construction entirely.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional


class TraceEvent:
    """One recorded event (a lightweight record, not a dataclass: these
    are allocated on hot paths when tracing is enabled)."""

    __slots__ = ("phase", "name", "category", "track", "ts", "dur",
                 "wall", "wall_dur", "args")

    def __init__(self, phase: str, name: str, category: str, track: str,
                 ts: float, dur: Optional[float], wall: float,
                 wall_dur: Optional[float],
                 args: Optional[Dict[str, Any]]) -> None:
        self.phase = phase          # "X" complete span | "i" instant
        self.name = name
        self.category = category
        self.track = track          # Chrome-trace thread (one lane per track)
        self.ts = ts                # virtual seconds
        self.dur = dur              # virtual seconds (spans only)
        self.wall = wall            # wall seconds since tracer epoch
        self.wall_dur = wall_dur
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "phase": self.phase, "name": self.name, "category": self.category,
            "track": self.track, "ts": self.ts, "wall": self.wall,
        }
        if self.dur is not None:
            out["dur"] = self.dur
            out["wall_dur"] = self.wall_dur
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:
        return (f"TraceEvent({self.phase}, {self.name!r}, ts={self.ts:g}"
                + (f", dur={self.dur:g}" if self.dur is not None else "") + ")")


class Span:
    """An open span; ``end()`` (or exiting the context) records it."""

    __slots__ = ("_tracer", "name", "category", "track", "_ts", "_wall", "_args")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 track: str, args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.track = track
        self._ts = tracer._clock()
        self._wall = time.perf_counter() - tracer._epoch
        self._args = args

    def end(self, **extra: Any) -> None:
        tracer = self._tracer
        if tracer is None:
            return  # already ended
        self._tracer = None
        args = self._args
        if extra:
            args = {**(args or {}), **extra}
        ts = tracer._clock()
        wall = time.perf_counter() - tracer._epoch
        tracer.events.append(TraceEvent(
            "X", self.name, self.category, self.track,
            self._ts, max(0.0, ts - self._ts),
            self._wall, max(0.0, wall - self._wall), args,
        ))

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end() if exc_type is None else self.end(error=repr(exc))


class Tracer:
    """Collects trace events against a virtual clock.

    ``clock`` is a zero-argument callable returning virtual seconds; a
    :class:`~repro.sim.Simulator` binds its own clock on construction
    (first binder wins, so one tracer scoped over one simulation reads
    that simulation's time).  Unbound tracers stamp virtual time 0.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.events: List[TraceEvent] = []
        self._clock: Callable[[], float] = clock if clock is not None else _zero
        self._epoch = time.perf_counter()

    # -- clock binding -----------------------------------------------------
    @property
    def clock_bound(self) -> bool:
        return self._clock is not _zero

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt a virtual clock; ignored if one is already bound."""
        if not self.clock_bound:
            self._clock = clock

    # -- recording ---------------------------------------------------------
    def begin(self, name: str, category: str = "", track: Optional[str] = None,
              **args: Any) -> Span:
        """Open a span; it may be held across DES yields."""
        return Span(self, name, category, track or name, args or None)

    def instant(self, name: str, category: str = "",
                track: Optional[str] = None, **args: Any) -> None:
        """Mark a point in time."""
        self.events.append(TraceEvent(
            "i", name, category, track or name, self._clock(), None,
            time.perf_counter() - self._epoch, None, args or None,
        ))

    def complete(self, name: str, category: str, start_ts: float,
                 dur: float, track: Optional[str] = None, **args: Any) -> None:
        """Record a span retroactively from known virtual start/duration."""
        wall = time.perf_counter() - self._epoch
        self.events.append(TraceEvent(
            "X", name, category, track or name, start_ts, dur,
            wall, None, args or None,
        ))

    def __len__(self) -> int:
        return len(self.events)


def _zero() -> float:
    return 0.0


class _NullSpan:
    """The shared no-op span handed out by :class:`NullTracer`."""

    __slots__ = ()

    name = category = track = ""

    def end(self, **extra: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: records nothing, costs (almost) nothing."""

    enabled = False
    events: List[TraceEvent] = []  # always empty; shared read-only view

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    @property
    def clock_bound(self) -> bool:
        return False

    def begin(self, name: str, category: str = "", track: Optional[str] = None,
              **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "",
                track: Optional[str] = None, **args: Any) -> None:
        pass

    def complete(self, name: str, category: str, start_ts: float,
                 dur: float, track: Optional[str] = None, **args: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
