"""Metric instruments: counters, gauges, fixed-bucket histograms.

The registry is cheap enough to stay on by default: instrument objects are
created once (instrumented modules pre-bind them in their constructors)
and the hot-path operations — ``Counter.inc``, ``Gauge.set``,
``Histogram.observe`` — are a handful of attribute updates with no
locking, no string formatting and no allocation beyond the instrument
itself.

Metric names follow the ``<layer>.<name>`` scheme documented in README
section "Observability": the first dotted component is the subsystem
(``sim``, ``stream``, ``storage``, ``db``, ``net``, ``session``), and
per-instance metrics insert the instance name
(``storage.device.disk0.utilization``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import AVDBError


class MetricError(AVDBError):
    """A metric was registered or used inconsistently."""


#: default bucket bounds for time-in-seconds histograms (upper bounds).
TIME_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: default bucket bounds for latency/jitter-in-milliseconds histograms.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0,
)

#: default bucket bounds for queue-depth / occupancy histograms.
DEPTH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time level, remembering its high watermark."""

    __slots__ = ("name", "value", "high_watermark")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_watermark = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_watermark:
            self.high_watermark = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value:g})"


class Histogram:
    """A fixed-bucket histogram (latency / jitter / queue depth).

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything larger.  Aggregates (count, sum,
    min, max) are exact; percentiles are bucket-resolution estimates.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Iterable[float] = TIME_BUCKETS_S) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise MetricError(f"histogram {name!r} needs at least one bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise MetricError(f"histogram {name!r} bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Bucket-resolution estimate of the ``p``-th percentile (0-100)."""
        if not 0 <= p <= 100:
            raise MetricError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = max(1, round(p / 100.0 * self.count))
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= rank:
                if i < len(self.bounds):
                    return min(self.bounds[i], self.max)
                return self.max
        return self.max

    def bucket_counts(self) -> Dict[str, int]:
        """Bucket label -> count, labels being the upper edges + ``+inf``."""
        labels = [f"<={b:g}" for b in self.bounds] + ["+inf"]
        return dict(zip(labels, self.counts))

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Name-keyed instrument store; get-or-create, with kind checking.

    Hot-path producers may *batch* their accounting: instead of bumping a
    counter per operation they keep a plain local tally and register a
    flush hook that settles the difference into the instrument.  Every
    read path (:meth:`get`, :meth:`by_kind`, :meth:`snapshot`) flushes
    first, so readers always observe exact totals — the batching is
    invisible except in per-operation cost.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._flush_hooks: list = []

    def add_flush_hook(self, hook) -> None:
        """Register a callable that settles batched counts on read."""
        self._flush_hooks.append(hook)

    def flush(self) -> None:
        """Run every flush hook (idempotent between producer updates)."""
        for hook in self._flush_hooks:
            hook()

    def _get(self, name: str, kind: type, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise MetricError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {kind.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Iterable[float] = TIME_BUCKETS_S) -> Histogram:
        return self._get(name, Histogram, buckets)

    def get(self, name: str) -> Optional[object]:
        """Look up an instrument without creating it."""
        if self._flush_hooks:
            self.flush()
        return self._instruments.get(name)

    def names(self) -> list:
        return sorted(self._instruments)

    def by_kind(self, kind: str) -> Dict[str, object]:
        if self._flush_hooks:
            self.flush()
        return {
            name: inst for name, inst in sorted(self._instruments.items())
            if inst.kind == kind
        }

    def snapshot(self) -> Dict[str, object]:
        """A plain-data snapshot of every instrument (JSON-serializable)."""
        if self._flush_hooks:
            self.flush()
        out: Dict[str, object] = {}
        for name, inst in sorted(self._instruments.items()):
            if inst.kind == "counter":
                out[name] = inst.value
            elif inst.kind == "gauge":
                out[name] = {"value": inst.value,
                             "high_watermark": inst.high_watermark}
            else:
                out[name] = {
                    "count": inst.count,
                    "sum": inst.total,
                    "mean": inst.mean,
                    "min": inst.min if inst.count else None,
                    "max": inst.max if inst.count else None,
                    "p50": inst.percentile(50) if inst.count else None,
                    "p95": inst.percentile(95) if inst.count else None,
                    "p99": inst.percentile(99) if inst.count else None,
                    "buckets": inst.bucket_counts(),
                }
        return out

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments


class _NullInstrument:
    """One object answering for every disabled counter/gauge/histogram."""

    __slots__ = ()

    name = "null"
    kind = "null"
    value = 0
    high_watermark = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def percentile(self, p) -> float:
        return 0.0

    def bucket_counts(self) -> Dict[str, int]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """A registry that records nothing (the un-instrumented baseline).

    Used by :func:`repro.obs.disabled` and the observability-overhead
    benchmark; every lookup returns the shared no-op instrument.
    """

    def add_flush_hook(self, hook) -> None:
        pass

    def flush(self) -> None:
        pass

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=TIME_BUCKETS_S) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def names(self) -> list:
        return []

    def by_kind(self, kind: str) -> Dict[str, object]:
        return {}

    def snapshot(self) -> Dict[str, object]:
        return {}

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False


NULL_METRICS = NullMetrics()
