"""Observability: virtual-time metrics and tracing for the whole stack.

Every runtime layer publishes metrics under the ``<layer>.<name>`` naming
scheme and (when tracing is enabled) spans/instants stamped with both
virtual :class:`~repro.avtime.WorldTime` and wall-clock time:

* ``sim.*`` — kernel: processes, event dispatch, resource waits;
* ``stream.*`` — buffers and sinks: occupancy, stalls, end-to-end
  latency and jitter vs ``ideal_time``;
* ``storage.*`` — devices/scheduler/placement: seeks, waits, deadline
  misses, per-device utilisation;
* ``db.*`` — pages, locks, transactions;
* ``net.*`` — channels: bits, admission;
* ``session.*`` — per-client QoS delivered vs negotiated.

An :class:`Obs` pairs one :class:`MetricsRegistry` with one tracer.
Instrumented constructors call :func:`attach` to find their ``Obs``:
an explicitly passed one wins, then the innermost :func:`scoped` /
:func:`disabled` ambient scope, else a fresh default (metrics on, null
tracer).  So by default metrics are always collected per simulator at
negligible cost, and::

    with repro.obs.scoped() as obs:
        system = AVDatabaseSystem()   # everything built here shares obs
        ...run...
    write_chrome_trace(obs.tracer, "out.trace.json")

turns on full tracing for everything constructed inside the scope.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.decisions import (
    NULL_DECISIONS,
    DecisionEvent,
    DecisionLog,
    NullDecisionLog,
)
from repro.obs.export import (
    canonical_trace_bytes,
    chrome_trace,
    chrome_trace_events,
    text_summary,
    write_chrome_trace,
    write_jsonl,
    write_summary,
)
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS_MS,
    NULL_METRICS,
    TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, TraceEvent, Tracer

__all__ = [
    "Obs", "attach", "current", "scoped", "disabled",
    "MetricsRegistry", "NullMetrics", "NULL_METRICS", "MetricError",
    "Counter", "Gauge", "Histogram",
    "TIME_BUCKETS_S", "LATENCY_BUCKETS_MS", "DEPTH_BUCKETS",
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "TraceEvent",
    "DecisionLog", "NullDecisionLog", "NULL_DECISIONS", "DecisionEvent",
    "canonical_trace_bytes",
    "chrome_trace", "chrome_trace_events", "write_chrome_trace",
    "write_jsonl", "text_summary", "write_summary",
]


class Obs:
    """One observability context: metrics, a tracer, and a decision log."""

    __slots__ = ("metrics", "tracer", "decisions")

    def __init__(self, metrics=None, tracer=None, decisions=None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.decisions = decisions if decisions is not None else NULL_DECISIONS

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def __repr__(self) -> str:
        return (f"Obs({len(self.metrics)} metrics, "
                f"tracing={'on' if self.tracing else 'off'}, "
                f"decisions={'on' if self.decisions.enabled else 'off'})")


#: the fully disabled context (null metrics + null tracer + null decisions).
NULL_OBS = Obs(NULL_METRICS, NULL_TRACER, NULL_DECISIONS)

_scopes: List[Obs] = []


def current() -> Optional[Obs]:
    """The innermost ambient scope's Obs, or None outside any scope."""
    return _scopes[-1] if _scopes else None


def attach(obs: Optional[Obs] = None) -> Obs:
    """Resolve the Obs an instrumented component should publish to.

    Precedence: explicit ``obs`` argument > innermost ambient scope >
    a fresh default (real metrics, null tracer).
    """
    if obs is not None:
        return obs
    ambient = current()
    if ambient is not None:
        return ambient
    return Obs()


@contextmanager
def scoped(tracing: bool = True, decisions: bool = True) -> Iterator[Obs]:
    """Install an ambient Obs; components built inside share it.

    With ``tracing=True`` (default) the scope gets a live
    :class:`Tracer`; the first :class:`~repro.sim.Simulator` constructed
    inside binds its virtual clock to it.  With ``decisions=True``
    (default) the scope also records structured decision events
    (:mod:`repro.obs.decisions`) — control-plane verdicts are rare next
    to data-plane events, so the log stays on even where tracing is off.
    """
    obs = Obs(MetricsRegistry(),
              Tracer() if tracing else NULL_TRACER,
              DecisionLog() if decisions else NULL_DECISIONS)
    _scopes.append(obs)
    try:
        yield obs
    finally:
        _scopes.remove(obs)


@contextmanager
def disabled() -> Iterator[Obs]:
    """Install the fully null ambient Obs (the un-instrumented baseline).

    Exists for overhead measurement (``bench_obs_overhead.py``): inside
    this scope, components bind no-op instruments, so runs approximate a
    build with no observability at all.
    """
    _scopes.append(NULL_OBS)
    try:
        yield NULL_OBS
    finally:
        _scopes.remove(NULL_OBS)
