"""Exporters: Chrome ``trace_event`` JSON, JSONL, and a text summary.

The Chrome export loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev (open the ``.trace.json`` file).  The time axis
is *virtual* time (1 trace µs = 1 virtual µs); each event's wall-clock
stamp rides along in ``args.wall_s`` so CPU cost stays visible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def chrome_trace_events(tracer: Tracer,
                        canonical: bool = False) -> List[Dict[str, Any]]:
    """The tracer's events as Chrome ``trace_event`` dicts.

    One virtual process (pid 1) with one thread lane per span track;
    metadata events name the process and threads so Perfetto shows
    readable lanes.

    With ``canonical=True`` the wall-clock stamps (``wall_s`` /
    ``wall_dur_s``) are omitted, leaving only virtual-time data — the
    export is then a pure function of the schedule, so byte-identical
    output across runs proves the kernel's (time, seq) determinism (the
    ``tests/test_determinism.py`` suite relies on this).
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": "repro (virtual time)"},
    }]
    tids: Dict[str, int] = {}
    for event in tracer.events:
        tid = tids.get(event.track)
        if tid is None:
            tid = tids[event.track] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": event.track},
            })
        args = dict(event.args) if event.args else {}
        if not canonical:
            args["wall_s"] = round(event.wall, 6)
            if event.wall_dur is not None:
                args["wall_dur_s"] = round(event.wall_dur, 6)
        out: Dict[str, Any] = {
            "name": event.name,
            "cat": event.category or "repro",
            "ph": event.phase,
            "pid": 1,
            "tid": tid,
            "ts": event.ts * 1e6,
            "args": args,
        }
        if event.phase == "X":
            out["dur"] = (event.dur or 0.0) * 1e6
        elif event.phase == "i":
            out["s"] = "t"  # instant scoped to its thread lane
        events.append(out)
    return events


def chrome_trace(tracer: Tracer,
                 metrics: MetricsRegistry | None = None,
                 canonical: bool = False) -> Dict[str, Any]:
    """The full Chrome trace document (``json.dump``-able)."""
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer, canonical=canonical),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "time_axis": "virtual"},
    }
    if metrics is not None:
        doc["otherData"]["metrics"] = metrics.snapshot()
    return doc


def canonical_trace_bytes(tracer: Tracer,
                          metrics: MetricsRegistry | None = None) -> bytes:
    """Deterministic serialization of a run's trace + metric state.

    Wall-clock stamps are excluded and keys are sorted, so two runs of
    the same scenario produce identical bytes if and only if their
    virtual schedules and metric totals are identical.
    """
    return json.dumps(chrome_trace(tracer, metrics, canonical=True),
                      sort_keys=True).encode()


def write_chrome_trace(tracer: Tracer, path: PathLike,
                       metrics: MetricsRegistry | None = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer, metrics)))
    return path


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------

def write_jsonl(tracer: Tracer, path: PathLike) -> Path:
    """One JSON object per line per event (greppable / streamable)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for event in tracer.events:
            fh.write(json.dumps(event.to_dict()))
            fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# text summary
# ---------------------------------------------------------------------------

def _layer_of(name: str) -> str:
    return name.split(".", 1)[0]


def text_summary(metrics: MetricsRegistry,
                 tracer: Tracer | None = None,
                 title: str = "observability summary") -> str:
    """A plain-text report: per-layer counters, gauges and histograms."""
    lines = [f"== {title} " + "=" * max(1, 64 - len(title))]

    counters = metrics.by_kind("counter")
    gauges = metrics.by_kind("gauge")
    histograms = metrics.by_kind("histogram")

    layers = sorted({_layer_of(n)
                     for n in (*counters, *gauges, *histograms)})
    for layer in layers:
        lines.append(f"\n[{layer}]")
        for name, c in counters.items():
            if _layer_of(name) == layer:
                lines.append(f"  {name:<46} {c.value:>14,}")
        for name, g in gauges.items():
            if _layer_of(name) == layer:
                lines.append(f"  {name:<46} {g.value:>14.4g}"
                             f"   (peak {g.high_watermark:.4g})")
        header_done = False
        for name, h in histograms.items():
            if _layer_of(name) != layer:
                continue
            if not header_done:
                lines.append(f"  {'histogram':<34} {'count':>7} {'sum':>10}"
                             f" {'mean':>9} {'min':>9} {'p50':>9} {'p95':>9}"
                             f" {'p99':>9} {'max':>9}")
                header_done = True
            if h.count:
                lines.append(
                    f"  {name:<34} {h.count:>7} {h.total:>10.5g}"
                    f" {h.mean:>9.4g} {h.min:>9.4g}"
                    f" {h.percentile(50):>9.4g} {h.percentile(95):>9.4g}"
                    f" {h.percentile(99):>9.4g} {h.max:>9.4g}"
                )
            else:
                lines.append(f"  {name:<34} {0:>7} {'-':>10} {'-':>9}"
                             f" {'-':>9} {'-':>9} {'-':>9} {'-':>9} {'-':>9}")
    if not layers:
        lines.append("  (no metrics recorded)")

    if tracer is not None:
        spans = sum(1 for e in tracer.events if e.phase == "X")
        instants = len(tracer.events) - spans
        lines.append(f"\ntrace: {spans} spans, {instants} instants"
                     if tracer.enabled else "\ntrace: disabled (null tracer)")
    return "\n".join(lines)


def write_summary(metrics: MetricsRegistry, path: PathLike,
                  tracer: Tracer | None = None,
                  title: str = "observability summary") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text_summary(metrics, tracer, title) + "\n")
    return path
