"""3D rendering substrate for the virtual-world scenario (§3.2, §4.3, Fig. 4).

"An AV database supporting 'virtual worlds' is provided as a network
service. ... As the user changes position, a new visualization of the
world is rendered ..., resulting in a sequence of images (an AV value)
being sent to the user."

* :mod:`repro.render.scene` — scene graph: triangles, quads, a video
  wall surface;
* :mod:`repro.render.camera` — camera poses and scripted camera paths
  (the ``move`` activity's value);
* :mod:`repro.render.rasterizer` — software perspective projection and
  z-sorted triangle rasterization with affine texture mapping;
* :mod:`repro.render.activities` — the Fig. 4 activities: ``move``
  (pose source) and ``render`` (pose + video in, raster stream out);
* :mod:`repro.render.virtualworld` — the two Fig. 4 configurations:
  client-side vs database-side rendering.
"""

from repro.render.camera import CameraPath, CameraPose, orbit_path, walk_path
from repro.render.rasterizer import Rasterizer
from repro.render.scene import Scene, Surface, museum_room
from repro.render.activities import MoveSource, RenderActivity
from repro.render.virtualworld import (
    VirtualWorldResult,
    client_side_rendering,
    database_side_rendering,
)

__all__ = [
    "CameraPose",
    "CameraPath",
    "orbit_path",
    "walk_path",
    "Scene",
    "Surface",
    "museum_room",
    "Rasterizer",
    "MoveSource",
    "RenderActivity",
    "client_side_rendering",
    "database_side_rendering",
    "VirtualWorldResult",
]
