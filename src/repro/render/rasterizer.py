"""Software perspective rasterizer.

A small but real 3D pipeline: camera-space transform, near-plane culling,
perspective projection, painter's-algorithm depth ordering, barycentric
triangle fill, and affine texture sampling for the video wall.  It stands
in for the "3D graphics hardware" of Fig. 4; its per-frame cost is what
makes database-side vs client-side rendering a genuine resource trade-off.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import RenderError
from repro.render.camera import CameraPose
from repro.render.scene import Scene, Surface


class Rasterizer:
    """Renders a scene from a camera pose into a grayscale uint8 frame."""

    def __init__(self, width: int = 160, height: int = 120,
                 fov_degrees: float = 70.0, near: float = 0.1) -> None:
        if width <= 0 or height <= 0:
            raise RenderError(f"frame geometry must be positive, got {width}x{height}")
        if not 10.0 <= fov_degrees <= 170.0:
            raise RenderError(f"field of view must be in [10, 170], got {fov_degrees}")
        self.width = width
        self.height = height
        self.near = near
        self.focal = (width / 2) / math.tan(math.radians(fov_degrees) / 2)

    # -- pipeline stages ----------------------------------------------------
    def _to_camera(self, pose: CameraPose, points: np.ndarray) -> np.ndarray:
        right, up, forward = pose.basis()
        relative = points - pose.position
        return np.stack([relative @ right, relative @ up, relative @ forward], axis=1)

    def _project(self, camera_points: np.ndarray) -> np.ndarray:
        """Camera space -> pixel coordinates (x right, y down)."""
        z = camera_points[:, 2]
        x = self.width / 2 + self.focal * camera_points[:, 0] / z
        y = self.height / 2 - self.focal * camera_points[:, 1] / z
        return np.stack([x, y], axis=1)

    def render(self, scene: Scene, pose: CameraPose,
               texture: Optional[np.ndarray] = None) -> np.ndarray:
        """Render one frame; ``texture`` fills the scene's textured surfaces."""
        frame = np.full((self.height, self.width), scene.background, dtype=np.uint8)
        # Painter's algorithm: farthest centroid first.
        order = sorted(
            scene.surfaces,
            key=lambda s: -float(
                self._to_camera(pose, s.centroid()[np.newaxis, :])[0, 2]
            ),
        )
        for surface in order:
            cam = self._to_camera(pose, surface.vertices)
            if (cam[:, 2] <= self.near).any():
                continue  # behind or straddling the near plane: cull
            pixels = self._project(cam)
            self._fill(frame, pixels, surface, texture)
        return frame

    def _fill(self, frame: np.ndarray, pixels: np.ndarray, surface: Surface,
              texture: Optional[np.ndarray]) -> None:
        min_x = max(0, int(np.floor(pixels[:, 0].min())))
        max_x = min(self.width - 1, int(np.ceil(pixels[:, 0].max())))
        min_y = max(0, int(np.floor(pixels[:, 1].min())))
        max_y = min(self.height - 1, int(np.ceil(pixels[:, 1].max())))
        if min_x > max_x or min_y > max_y:
            return  # fully off-screen
        xs = np.arange(min_x, max_x + 1)
        ys = np.arange(min_y, max_y + 1)
        gx, gy = np.meshgrid(xs, ys)
        a, b, c = pixels[0], pixels[1], pixels[2]
        det = (b[1] - c[1]) * (a[0] - c[0]) + (c[0] - b[0]) * (a[1] - c[1])
        if abs(det) < 1e-12:
            return  # degenerate (edge-on) triangle
        w0 = ((b[1] - c[1]) * (gx - c[0]) + (c[0] - b[0]) * (gy - c[1])) / det
        w1 = ((c[1] - a[1]) * (gx - c[0]) + (a[0] - c[0]) * (gy - c[1])) / det
        w2 = 1.0 - w0 - w1
        inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
        if not inside.any():
            return
        if surface.textured and texture is not None:
            tex = texture if texture.ndim == 2 else texture.mean(axis=2).astype(np.uint8)
            th, tw = tex.shape
            u = (w0 * surface.uv[0, 0] + w1 * surface.uv[1, 0] + w2 * surface.uv[2, 0])
            v = (w0 * surface.uv[0, 1] + w1 * surface.uv[1, 1] + w2 * surface.uv[2, 1])
            tx = np.clip((u * (tw - 1)).astype(int), 0, tw - 1)
            ty = np.clip((v * (th - 1)).astype(int), 0, th - 1)
            values = tex[ty, tx]
            region = frame[min_y:max_y + 1, min_x:max_x + 1]
            region[inside] = values[inside]
        else:
            frame[min_y:max_y + 1, min_x:max_x + 1][inside] = surface.shade

    def frame_bits(self) -> int:
        return self.width * self.height * 8
