"""The Fig. 4 activities: ``move`` and ``render``.

"The essential component is render, which processes two streams — one
coming from the user driven activity, move, the other from a video source
— and generates a stream of raster images."
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.activities.base import Location, MediaActivity
from repro.activities.library import PacedSource
from repro.activities.ports import Direction
from repro.errors import MediaTypeError
from repro.render.camera import CameraPath
from repro.render.rasterizer import Rasterizer
from repro.render.scene import Scene
from repro.sim import Delay, Simulator
from repro.streams.element import END_OF_STREAM, EndOfStream
from repro.streams.sync import JitterModel
from repro.values.mediatype import standard_type


class MoveSource(PacedSource):
    """The ``move`` activity: streams camera poses from a bound path.

    The paper's move stream is user-driven (a live source); a scripted
    :class:`CameraPath` is the deterministic stand-in.
    """

    TABLE_ROW = ("move", "source", "(user input)", "pose")

    def __init__(self, simulator: Simulator, name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 jitter: Optional[JitterModel] = None) -> None:
        super().__init__(simulator, name, location, jitter)
        self.add_port("pose_out", Direction.OUT, standard_type("geometry/pose"))

    def _validate_binding(self, value, port_name) -> None:
        if not isinstance(value, CameraPath):
            raise MediaTypeError(
                f"move source {self.name!r} requires a CameraPath, "
                f"got {type(value).__name__}"
            )

    def _element_payloads(self):
        value: CameraPath = self._value()
        start = self._start_element(value)
        media_type = value.media_type
        return [
            (value.pose(i), value.element_size_bits(i), media_type)
            for i in range(start, value.element_count)
        ]

    def _ideal_offset(self, position: int) -> float:
        value = self._value()
        start = self._start_element(value)
        return self._offset_of(value, start + position)


class RenderActivity(MediaActivity):
    """The ``render`` activity: (pose, video frame) -> raster frame.

    Consumes one pose and one video frame per output element and projects
    the video frame onto the scene's textured wall.  ``render_seconds``
    models the per-frame rendering cost (3D hardware vs software).
    """

    TABLE_ROW = ("render", "transformer", "pose + raw", "raw")

    def __init__(self, simulator: Simulator, scene: Scene,
                 rasterizer: Optional[Rasterizer] = None,
                 name: Optional[str] = None,
                 location: Location = Location.APPLICATION,
                 render_seconds: float = 0.0) -> None:
        super().__init__(simulator, name, location)
        self.scene = scene
        self.rasterizer = rasterizer or Rasterizer()
        self.render_seconds = render_seconds
        self.frames_rendered = 0
        self.add_port("pose_in", Direction.IN, standard_type("geometry/pose"))
        self.add_port("video_in", Direction.IN, standard_type("video/raw"))
        self.add_port("video_out", Direction.OUT, standard_type("video/raw"))

    def _process(self) -> Generator:
        pose_port = self.port("pose_in")
        video_port = self.port("video_in")
        out_port = self.port("video_out")
        latest_texture = None
        video_done = False
        while True:
            pose_element = yield from pose_port.receive()
            if isinstance(pose_element, EndOfStream) or self._stop_requested:
                break
            # The wall shows the most recent video frame; video may run at
            # a different rate (or end) without stalling navigation.
            if not video_done:
                element = yield from video_port.receive()
                if isinstance(element, EndOfStream):
                    video_done = True
                else:
                    latest_texture = element.payload
            if self.render_seconds > 0:
                yield Delay(self.render_seconds)
            frame = self.rasterizer.render(
                self.scene, pose_element.payload, latest_texture
            )
            self.frames_rendered += 1
            yield from out_port.send(pose_element.with_payload(
                frame, standard_type("video/raw"), self.rasterizer.frame_bits()
            ))
        # Drain the video stream if navigation ended first.
        while not video_done:
            element = yield from video_port.receive()
            if isinstance(element, EndOfStream):
                video_done = True
        yield from out_port.send(END_OF_STREAM)
