"""The two Fig. 4 configurations.

"Depending upon the capabilities and resources of the database system and
the client, rendering may be done by the database or locally by the
client.  For example, a client with 3D graphics hardware may simply
request the video stream from the database and render it locally ...
(top of Fig. 4).  While a client without such hardware could request that
rendering occur at the database site (bottom of Fig. 4)."

Both builders run the complete stack — database, placement, session,
channel — and report the traffic accounting the Fig. 4 benchmark
compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.activities import Location
from repro.avdb.system import AVDatabaseSystem
from repro.render.activities import MoveSource, RenderActivity
from repro.render.camera import CameraPath
from repro.render.rasterizer import Rasterizer
from repro.render.scene import Scene, museum_room
from repro.storage.devices import MagneticDisk
from repro.values.base import MediaValue


@dataclass
class VirtualWorldResult:
    """What one walkthrough run produced and cost."""

    configuration: str
    frames_presented: int
    network_bits: int
    duration_s: float
    frames: List  # the presented raster frames
    render_location: str

    @property
    def network_bytes_per_frame(self) -> float:
        if not self.frames_presented:
            return 0.0
        return self.network_bits / 8 / self.frames_presented


def _make_system(video: MediaValue) -> AVDatabaseSystem:
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.store_value(video, "disk0")
    return system


def client_side_rendering(video: MediaValue, path: CameraPath,
                          scene: Optional[Scene] = None,
                          rasterizer: Optional[Rasterizer] = None,
                          channel_bps: float = 100_000_000.0,
                          render_seconds: float = 0.0) -> VirtualWorldResult:
    """Fig. 4 top: the client has 3D hardware and renders locally.

    Only the (stored, possibly compressed) video stream crosses the
    network; the pose stream never leaves the client.
    """
    system = _make_system(video)
    session = system.open_session("vw-client", channel_bps=channel_bps)
    # The fat client pulls the *stored* representation (compressed values
    # stay compressed on the wire) and decodes locally.
    db_video = session.new_db_source(video, deliver="stored")
    move = session.new_activity(MoveSource(system.simulator, name="move",
                                           location=Location.APPLICATION))
    move.bind(path)
    render = session.new_activity(RenderActivity(
        system.simulator, scene or museum_room(), rasterizer,
        name="render", location=Location.APPLICATION,
        render_seconds=render_seconds,
    ))
    window = session.new_video_window(name="vw-window")
    from repro.values.video import EncodedVideoValue
    if isinstance(video, EncodedVideoValue):
        from repro.activities.library import VideoDecoder
        decoder = session.new_activity(VideoDecoder(
            system.simulator, video.codec, video.width, video.height,
            video.depth, name="client-decode", location=Location.APPLICATION,
        ))
        video_stream = session.connect(db_video, decoder.port("video_in"))
        feed = session.connect(decoder.port("video_out"), render.port("video_in"))
    else:
        video_stream = session.connect(db_video, render.port("video_in"))
        feed = None
    pose_stream = session.connect(move, render.port("pose_in"))
    display = session.connect(render.port("video_out"), window)
    for stream in (video_stream, pose_stream, display, *([feed] if feed else [])):
        stream.start()
    end = session.run()
    return VirtualWorldResult(
        configuration="client-side rendering (Fig. 4 top)",
        frames_presented=len(window.presented),
        network_bits=session.channel.total_bits,
        duration_s=end.seconds,
        frames=window.presented,
        render_location="client",
    )


def database_side_rendering(video: MediaValue, path: CameraPath,
                            scene: Optional[Scene] = None,
                            rasterizer: Optional[Rasterizer] = None,
                            channel_bps: float = 100_000_000.0,
                            render_seconds: float = 0.0) -> VirtualWorldResult:
    """Fig. 4 bottom: the database renders; the client is a thin viewer.

    The pose stream crosses the network upstream; the rendered raster
    stream crosses downstream.  The video value never leaves the database.
    """
    system = _make_system(video)
    session = system.open_session("vw-thin-client", channel_bps=channel_bps)
    db_video = system.make_source(video, deliver="raw", name="db-video")
    move = session.new_activity(MoveSource(system.simulator, name="move",
                                           location=Location.APPLICATION))
    move.bind(path)
    render = session.new_activity(RenderActivity(
        system.simulator, scene or museum_room(), rasterizer,
        name="db-render", location=Location.DATABASE,
        render_seconds=render_seconds,
    ))
    window = session.new_video_window(name="vw-window")
    session._activities.append(db_video)
    video_stream = session.connect(db_video, render.port("video_in"))
    pose_stream = session.connect(move, render.port("pose_in"),
                                  bandwidth_bps=64_000.0)
    display = session.connect(render.port("video_out"), window)
    for stream in (video_stream, pose_stream, display):
        stream.start()
    end = session.run()
    return VirtualWorldResult(
        configuration="database-side rendering (Fig. 4 bottom)",
        frames_presented=len(window.presented),
        network_bits=session.channel.total_bits,
        duration_s=end.seconds,
        frames=window.presented,
        render_location="database",
    )
