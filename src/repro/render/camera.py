"""Camera poses and scripted camera paths.

A :class:`CameraPose` is a position plus yaw/pitch look direction.  A
:class:`CameraPath` is a ``MediaValue`` whose elements are poses at a
pose rate — the value bound to the ``move`` activity of Fig. 4.  (In the
paper the move stream is user-driven/live; a scripted path is the
deterministic equivalent, per the substitution rule.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.avtime import TimeMapping
from repro.errors import RenderError
from repro.values.base import MediaValue
from repro.values.mediatype import MediaType, standard_type


@dataclass(frozen=True, slots=True)
class CameraPose:
    """Position + orientation (yaw about +Y, pitch about the right axis)."""

    x: float
    y: float
    z: float
    yaw: float = 0.0
    pitch: float = 0.0

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z], dtype=np.float64)

    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(right, up, forward) unit vectors of the camera frame."""
        cy, sy = math.cos(self.yaw), math.sin(self.yaw)
        cp, sp = math.cos(self.pitch), math.sin(self.pitch)
        forward = np.array([sy * cp, sp, cy * cp])
        right = np.array([cy, 0.0, -sy])
        up = np.cross(forward, right)
        return right, up, forward


class CameraPath(MediaValue):
    """A sequence of camera poses at a fixed pose rate."""

    def __init__(self, poses: Sequence[CameraPose], rate: float = 30.0,
                 mapping: TimeMapping | None = None) -> None:
        if not poses:
            raise RenderError("a camera path needs at least one pose")
        super().__init__(mapping or TimeMapping(rate))
        self._poses = tuple(poses)

    @property
    def media_type(self) -> MediaType:
        return standard_type("geometry/pose")

    @property
    def element_count(self) -> int:
        return len(self._poses)

    def pose(self, index: int) -> CameraPose:
        self._check_index(index)
        return self._poses[index]

    def element_payload(self, index: int) -> Any:
        return self.pose(index)

    def element_size_bits(self, index: int) -> int:
        self._check_index(index)
        return 5 * 32  # five float32 fields on the wire

    def _with_mapping(self, mapping: TimeMapping) -> "CameraPath":
        clone = type(self).__new__(type(self))
        MediaValue.__init__(clone, mapping)
        clone._poses = self._poses
        return clone


def walk_path(steps: int = 30, start: tuple = (0.0, 1.6, -6.0),
              end: tuple = (0.0, 1.6, -2.5), rate: float = 30.0) -> CameraPath:
    """A straight walk toward the scene (the interactive walkthrough)."""
    if steps < 1:
        raise RenderError(f"walk needs >= 1 step, got {steps}")
    poses = []
    for i in range(steps):
        t = i / max(1, steps - 1)
        x = start[0] + (end[0] - start[0]) * t
        y = start[1] + (end[1] - start[1]) * t
        z = start[2] + (end[2] - start[2]) * t
        poses.append(CameraPose(x, y, z, yaw=0.0))
    return CameraPath(poses, rate=rate)


def orbit_path(steps: int = 30, radius: float = 5.0, height: float = 1.6,
               rate: float = 30.0) -> CameraPath:
    """A circular orbit around the scene origin, always looking inward."""
    if steps < 1:
        raise RenderError(f"orbit needs >= 1 step, got {steps}")
    poses = []
    for i in range(steps):
        angle = 2 * math.pi * i / steps
        x = radius * math.sin(angle)
        z = -radius * math.cos(angle)
        # Look toward the origin: yaw such that forward points at (0,0,0).
        yaw = math.atan2(-x, -z)
        poses.append(CameraPose(x, height, z, yaw=yaw))
    return CameraPath(poses, rate=rate)
