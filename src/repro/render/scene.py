"""Scene description: triangles, quads and the video wall.

A :class:`Scene` is a list of :class:`Surface` objects.  A surface is a
triangle with either a flat shade or (for the video wall) per-vertex UV
coordinates into a dynamic texture slot.  ``museum_room`` builds the
virtual-museum set of Scenario II: floor, back wall, two pedestals and a
video wall "project[ing] the video material on a wall in the virtual
world".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import RenderError


@dataclass(frozen=True)
class Surface:
    """One triangle: three 3D vertices, flat shade, optional texture UVs."""

    vertices: np.ndarray  # (3, 3) float
    shade: int = 128  # 0..255 flat luminance
    uv: Optional[np.ndarray] = None  # (3, 2) in [0,1]; None = untextured
    textured: bool = False

    def __post_init__(self) -> None:
        v = np.asarray(self.vertices, dtype=np.float64)
        if v.shape != (3, 3):
            raise RenderError(f"a surface needs (3,3) vertices, got {v.shape}")
        object.__setattr__(self, "vertices", v)
        if self.textured:
            if self.uv is None:
                raise RenderError("textured surfaces need UV coordinates")
            uv = np.asarray(self.uv, dtype=np.float64)
            if uv.shape != (3, 2):
                raise RenderError(f"UVs must be (3,2), got {uv.shape}")
            object.__setattr__(self, "uv", uv)
        if not 0 <= self.shade <= 255:
            raise RenderError(f"shade must be in [0,255], got {self.shade}")

    def centroid(self) -> np.ndarray:
        return self.vertices.mean(axis=0)


def quad(corners: np.ndarray, shade: int = 128,
         textured: bool = False) -> List[Surface]:
    """Split a planar quad (4 corners, CCW) into two surfaces.

    Textured quads get the full [0,1]x[0,1] UV square mapped across,
    with v=0 at the top edge (image row 0).
    """
    c = np.asarray(corners, dtype=np.float64)
    if c.shape != (4, 3):
        raise RenderError(f"a quad needs (4,3) corners, got {c.shape}")
    if textured:
        uvs = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        return [
            Surface(c[[0, 1, 2]], shade, uvs[[0, 1, 2]], textured=True),
            Surface(c[[0, 2, 3]], shade, uvs[[0, 2, 3]], textured=True),
        ]
    return [Surface(c[[0, 1, 2]], shade), Surface(c[[0, 2, 3]], shade)]


@dataclass
class Scene:
    """A static scene plus one dynamic texture slot (the video wall)."""

    surfaces: List[Surface] = field(default_factory=list)
    background: int = 20

    def add(self, surface: Surface) -> None:
        self.surfaces.append(surface)

    def add_quad(self, corners, shade: int = 128, textured: bool = False) -> None:
        self.surfaces.extend(quad(corners, shade, textured))

    @property
    def textured_surfaces(self) -> List[Surface]:
        return [s for s in self.surfaces if s.textured]

    def __len__(self) -> int:
        return len(self.surfaces)


def museum_room(wall_width: float = 4.0, wall_height: float = 3.0) -> Scene:
    """The virtual-museum room: floor, back wall, pedestals, video wall.

    Coordinates: +Y up, +Z into the scene; the camera walks along -Z
    toward the video wall at z=0.
    """
    scene = Scene(background=15)
    # Floor (y=0), large and dim.
    scene.add_quad(
        [[-8, 0, -8], [8, 0, -8], [8, 0, 4], [-8, 0, 4]], shade=60
    )
    # Back wall behind the video wall.
    scene.add_quad(
        [[-8, 0, 2.0], [8, 0, 2.0], [8, 6, 2.0], [-8, 6, 2.0]], shade=90
    )
    # Two pedestals flanking the video wall.
    for x in (-3.0, 3.0):
        scene.add_quad(
            [[x - 0.4, 0, -0.4], [x + 0.4, 0, -0.4],
             [x + 0.4, 1.2, -0.4], [x - 0.4, 1.2, -0.4]], shade=170
        )
    # The video wall: a textured quad facing the camera (normal along -Z).
    hw = wall_width / 2
    scene.add_quad(
        [[-hw, wall_height, 0.0], [hw, wall_height, 0.0],
         [hw, 0.0, 0.0], [-hw, 0.0, 0.0]],
        shade=255, textured=True,
    )
    return scene
