"""Lock manager: strict two-phase locking with wait-die deadlock avoidance.

Object-granularity shared/exclusive locks.  Requests that conflict are
resolved by wait-die on transaction age: an *older* requester may wait (in
this non-blocking implementation, waiting surfaces as a retryable
:class:`LockTimeoutError` with ``should_retry=True``), a *younger*
requester dies (``should_retry=False``, the transaction must abort).
Wait-die guarantees no deadlock cycles ever form.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Set

from repro.db.objects import OID
from repro.errors import LockTimeoutError
from repro.obs import Obs, attach


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _LockEntry:
    mode: LockMode
    holders: Set[int]


class LockManager:
    """Per-OID S/X locks keyed by transaction id (= age: lower is older)."""

    def __init__(self, obs: Optional[Obs] = None) -> None:
        self._locks: Dict[OID, _LockEntry] = {}
        self.conflicts = 0
        metrics = attach(obs).metrics
        self._m_acquired = metrics.counter("db.locks_acquired")
        self._m_conflicts = metrics.counter("db.lock_conflicts")

    def acquire(self, tx_id: int, oid: OID, mode: LockMode) -> None:
        """Grant or raise.

        Raises :class:`LockTimeoutError`; its ``should_retry`` attribute
        tells the caller whether waiting is permitted (wait-die).
        """
        entry = self._locks.get(oid)
        if entry is None:
            self._locks[oid] = _LockEntry(mode, {tx_id})
            self._m_acquired.inc()
            return
        if tx_id in entry.holders:
            if mode is LockMode.EXCLUSIVE and entry.mode is LockMode.SHARED:
                if entry.holders == {tx_id}:
                    entry.mode = LockMode.EXCLUSIVE  # upgrade
                    return
                self._conflict(tx_id, oid, entry)
            return  # already held at sufficient strength
        if mode is LockMode.SHARED and entry.mode is LockMode.SHARED:
            entry.holders.add(tx_id)
            self._m_acquired.inc()
            return
        self._conflict(tx_id, oid, entry)

    def _conflict(self, tx_id: int, oid: OID, entry: _LockEntry) -> None:
        self.conflicts += 1
        self._m_conflicts.inc()
        oldest_holder = min(entry.holders)
        should_retry = tx_id < oldest_holder  # older transactions wait
        holders = ", ".join(str(h) for h in sorted(entry.holders))
        error = LockTimeoutError(
            f"tx {tx_id}: lock conflict on {oid} "
            f"(held {entry.mode.value} by tx {holders}); "
            f"{'wait and retry' if should_retry else 'die (wait-die)'}"
        )
        error.should_retry = should_retry
        raise error

    def release_all(self, tx_id: int) -> None:
        """Strict 2PL: all locks released together at commit/abort."""
        empty = []
        for oid, entry in self._locks.items():
            entry.holders.discard(tx_id)
            if not entry.holders:
                empty.append(oid)
        for oid in empty:
            del self._locks[oid]

    def held_by(self, tx_id: int) -> Set[OID]:
        return {oid for oid, e in self._locks.items() if tx_id in e.holders}

    def mode_of(self, oid: OID) -> LockMode | None:
        entry = self._locks.get(oid)
        return entry.mode if entry else None
