"""Predicate language and query planning.

Queries follow the paper's pattern::

    select Newscast where (title = "60 Minutes" and whenBroadcast = someDate)

expressed as composable predicate objects::

    db.select("Newscast", Q.eq("title", "60 Minutes") & Q.eq("whenBroadcast", date))

Results are OIDs — "queries may return references ... rather than the
values themselves" (§3.1).  Each predicate can propose an *index plan*
(a candidate OID superset from the ordered/keyword indexes); the engine
intersects plans across conjunctions and falls back to a class scan when
no index applies.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional, Set

from repro.db.index import KeywordIndex, OrderedIndex
from repro.db.objects import DBObject, OID
from repro.errors import QueryError

IndexMap = Dict[str, OrderedIndex]
KeywordMap = Dict[str, KeywordIndex]


class Predicate(abc.ABC):
    """A boolean condition over one object."""

    @abc.abstractmethod
    def matches(self, obj: DBObject) -> bool: ...

    def index_plan(self, indexes: IndexMap, keywords: KeywordMap) -> Optional[Set[OID]]:
        """Candidate OID superset from indexes, or None (no index help)."""
        return None

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


class True_(Predicate):
    def matches(self, obj: DBObject) -> bool:
        return True

    def __repr__(self) -> str:
        return "Q.true()"


class Compare(Predicate):
    """Attribute comparison against a constant."""

    _OPS: Dict[str, Callable[[Any, Any], bool]] = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a is not None and a < b,
        "<=": lambda a, b: a is not None and a <= b,
        ">": lambda a, b: a is not None and a > b,
        ">=": lambda a, b: a is not None and a >= b,
    }

    def __init__(self, attribute: str, op: str, value: Any) -> None:
        if op not in self._OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.attribute = attribute
        self.op = op
        self.value = value

    def matches(self, obj: DBObject) -> bool:
        return self._OPS[self.op](obj.get(self.attribute), self.value)

    def index_plan(self, indexes: IndexMap, keywords: KeywordMap) -> Optional[Set[OID]]:
        index = indexes.get(self.attribute)
        if index is None:
            return None
        if self.op == "==":
            return index.eq(self.value)
        if self.op == "<":
            return index.range(hi=self.value, include_hi=False)
        if self.op == "<=":
            return index.range(hi=self.value)
        if self.op == ">":
            return index.range(lo=self.value, include_lo=False)
        if self.op == ">=":
            return index.range(lo=self.value)
        return None  # != cannot use an ordered index usefully

    def __repr__(self) -> str:
        return f"Q({self.attribute} {self.op} {self.value!r})"


class Between(Predicate):
    def __init__(self, attribute: str, lo: Any, hi: Any) -> None:
        if lo > hi:
            raise QueryError(f"between bounds reversed: {lo!r} > {hi!r}")
        self.attribute = attribute
        self.lo = lo
        self.hi = hi

    def matches(self, obj: DBObject) -> bool:
        value = obj.get(self.attribute)
        return value is not None and self.lo <= value <= self.hi

    def index_plan(self, indexes: IndexMap, keywords: KeywordMap) -> Optional[Set[OID]]:
        index = indexes.get(self.attribute)
        if index is None:
            return None
        return index.range(lo=self.lo, hi=self.hi)

    def __repr__(self) -> str:
        return f"Q({self.attribute} between {self.lo!r} and {self.hi!r})"


class Contains(Predicate):
    """Keyword containment (content-based retrieval)."""

    def __init__(self, attribute: str, terms: List[str]) -> None:
        if not terms:
            raise QueryError("contains requires at least one term")
        self.attribute = attribute
        self.terms = [t.lower() for t in terms]

    def matches(self, obj: DBObject) -> bool:
        value = obj.get(self.attribute)
        haystack = KeywordIndex._terms(value)
        return all(term in haystack for term in self.terms)

    def index_plan(self, indexes: IndexMap, keywords: KeywordMap) -> Optional[Set[OID]]:
        index = keywords.get(self.attribute)
        if index is None:
            return None
        return index.lookup_all(self.terms)

    def __repr__(self) -> str:
        return f"Q({self.attribute} contains {self.terms!r})"


class Like(Predicate):
    """Substring match on a string attribute (no index support)."""

    def __init__(self, attribute: str, fragment: str) -> None:
        self.attribute = attribute
        self.fragment = fragment.lower()

    def matches(self, obj: DBObject) -> bool:
        value = obj.get(self.attribute)
        return isinstance(value, str) and self.fragment in value.lower()

    def __repr__(self) -> str:
        return f"Q({self.attribute} like {self.fragment!r})"


class IsNull(Predicate):
    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def matches(self, obj: DBObject) -> bool:
        return obj.get(self.attribute) is None

    def __repr__(self) -> str:
        return f"Q({self.attribute} is null)"


class And(Predicate):
    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def matches(self, obj: DBObject) -> bool:
        return self.left.matches(obj) and self.right.matches(obj)

    def index_plan(self, indexes: IndexMap, keywords: KeywordMap) -> Optional[Set[OID]]:
        left = self.left.index_plan(indexes, keywords)
        right = self.right.index_plan(indexes, keywords)
        if left is not None and right is not None:
            return left & right
        return left if left is not None else right

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


class Or(Predicate):
    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def matches(self, obj: DBObject) -> bool:
        return self.left.matches(obj) or self.right.matches(obj)

    def index_plan(self, indexes: IndexMap, keywords: KeywordMap) -> Optional[Set[OID]]:
        left = self.left.index_plan(indexes, keywords)
        right = self.right.index_plan(indexes, keywords)
        if left is None or right is None:
            return None  # one side needs a scan anyway
        return left | right

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


class Not(Predicate):
    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def matches(self, obj: DBObject) -> bool:
        return not self.inner.matches(obj)

    def __repr__(self) -> str:
        return f"~{self.inner!r}"


class Q:
    """Predicate factory: ``Q.eq("title", "60 Minutes") & Q.gt("year", 1990)``."""

    @staticmethod
    def true() -> Predicate:
        return True_()

    @staticmethod
    def eq(attribute: str, value: Any) -> Predicate:
        return Compare(attribute, "==", value)

    @staticmethod
    def ne(attribute: str, value: Any) -> Predicate:
        return Compare(attribute, "!=", value)

    @staticmethod
    def lt(attribute: str, value: Any) -> Predicate:
        return Compare(attribute, "<", value)

    @staticmethod
    def le(attribute: str, value: Any) -> Predicate:
        return Compare(attribute, "<=", value)

    @staticmethod
    def gt(attribute: str, value: Any) -> Predicate:
        return Compare(attribute, ">", value)

    @staticmethod
    def ge(attribute: str, value: Any) -> Predicate:
        return Compare(attribute, ">=", value)

    @staticmethod
    def between(attribute: str, lo: Any, hi: Any) -> Predicate:
        return Between(attribute, lo, hi)

    @staticmethod
    def contains(attribute: str, *terms: str) -> Predicate:
        return Contains(attribute, list(terms))

    @staticmethod
    def like(attribute: str, fragment: str) -> Predicate:
        return Like(attribute, fragment)

    @staticmethod
    def is_null(attribute: str) -> Predicate:
        return IsNull(attribute)
