"""Textual query language: the paper's ``select ... where`` syntax.

§4.3 writes queries as::

    select SimpleNewscast where (title = "60 Minutes" and
                                 whenBroadcast = someDate)

:func:`parse_query` accepts exactly that shape (plus the usual
comparison, boolean and containment operators) and compiles it to a
class name + :class:`~repro.db.query.Predicate`, so sessions can accept
query strings as well as predicate objects.

Grammar (recursive descent)::

    query      := "select" IDENT [ "where" expr ]
    expr       := term { "or" term }
    term       := factor { "and" factor }
    factor     := "not" factor | "(" expr ")" | condition
    condition  := IDENT op literal
                | IDENT "between" literal "and" literal
                | IDENT "contains" literal { "," literal }
                | IDENT "like" literal
                | IDENT "is" "null"
    op         := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
    literal    := STRING | NUMBER | "true" | "false"
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.db.query import Predicate, Q
from repro.errors import QueryError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<op><=|>=|!=|==|=|<|>)
  | (?P<punct>[(),])
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "where", "and", "or", "not", "between",
             "contains", "like", "is", "null", "true", "false"}


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'string' | 'number' | 'op' | 'punct' | 'word' | 'keyword'
    text: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Split query text into string/number/operator/word tokens."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append(Token("keyword", value.lower(), match.start()))
        else:
            tokens.append(Token(kind, value, match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    # -- token plumbing ----------------------------------------------------
    def _peek(self) -> Optional[Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise QueryError(f"unexpected end of query: {self._source!r}")
        self._index += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise QueryError(
                f"expected {want!r} at offset {token.position}, "
                f"got {token.text!r}"
            )
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token is not None and token.kind == kind and \
                (text is None or token.text == text):
            self._index += 1
            return token
        return None

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Tuple[str, Predicate]:
        """query := "select" IDENT [ "where" expr ]."""
        self._expect("keyword", "select")
        class_name = self._expect("word").text
        predicate: Predicate = Q.true()
        if self._accept("keyword", "where"):
            predicate = self._expr()
        trailing = self._peek()
        if trailing is not None:
            raise QueryError(
                f"unexpected {trailing.text!r} at offset {trailing.position}"
            )
        return class_name, predicate

    def _expr(self) -> Predicate:
        left = self._term()
        while self._accept("keyword", "or"):
            left = left | self._term()
        return left

    def _term(self) -> Predicate:
        left = self._factor()
        while self._accept("keyword", "and"):
            left = left & self._factor()
        return left

    def _factor(self) -> Predicate:
        if self._accept("keyword", "not"):
            return ~self._factor()
        if self._accept("punct", "("):
            inner = self._expr()
            self._expect("punct", ")")
            return inner
        return self._condition()

    def _condition(self) -> Predicate:
        attribute = self._expect("word").text
        token = self._next()
        if token.kind == "op":
            op = "==" if token.text == "=" else token.text
            value = self._literal()
            return {
                "==": Q.eq, "!=": Q.ne, "<": Q.lt, "<=": Q.le,
                ">": Q.gt, ">=": Q.ge,
            }[op](attribute, value)
        if token.kind == "keyword" and token.text == "between":
            lo = self._literal()
            self._expect("keyword", "and")
            hi = self._literal()
            return Q.between(attribute, lo, hi)
        if token.kind == "keyword" and token.text == "contains":
            terms = [str(self._literal())]
            while self._accept("punct", ","):
                terms.append(str(self._literal()))
            return Q.contains(attribute, *terms)
        if token.kind == "keyword" and token.text == "like":
            return Q.like(attribute, str(self._literal()))
        if token.kind == "keyword" and token.text == "is":
            self._expect("keyword", "null")
            return Q.is_null(attribute)
        raise QueryError(
            f"expected an operator after {attribute!r} at offset "
            f"{token.position}, got {token.text!r}"
        )

    def _literal(self) -> Any:
        token = self._next()
        if token.kind == "string":
            body = token.text[1:-1]
            return re.sub(r"\\(.)", r"\1", body)
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            return token.text == "true"
        raise QueryError(
            f"expected a literal at offset {token.position}, got {token.text!r}"
        )


def parse_query(text: str) -> Tuple[str, Predicate]:
    """Parse ``select <Class> [where <expr>]`` into (class, predicate)."""
    return _Parser(tokenize(text), text).parse()


def parse_predicate(text: str) -> Predicate:
    """Parse just a where-expression (no ``select`` clause)."""
    parser = _Parser(tokenize(text), text)
    predicate = parser._expr()
    trailing = parser._peek()
    if trailing is not None:
        raise QueryError(
            f"unexpected {trailing.text!r} at offset {trailing.position}"
        )
    return predicate
