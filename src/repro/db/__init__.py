"""Object database substrate.

"AV database systems should provide the functionality found in
traditional database systems, i.e., query processing, concurrency control,
recovery mechanisms, etc." (§3.1) and "most of the work done up to now
favors the object-oriented approach and suggests the use of an OODBMS"
(§2).  This package is that OODBMS core:

* :mod:`repro.db.schema` — class definitions with typed attributes and
  the ``tcomp`` construct (the Newscast example compiles to one);
* :mod:`repro.db.objects` — objects with OIDs; queries return
  *references*, not values (§3.1);
* :mod:`repro.db.store` — durable store: write-ahead log + snapshot
  checkpoints, crash recovery by replay;
* :mod:`repro.db.locks` / :mod:`repro.db.transactions` — strict 2PL
  concurrency control with wait-die deadlock avoidance;
* :mod:`repro.db.query` — predicate language and query engine with
  index acceleration and content-based keyword retrieval;
* :mod:`repro.db.index` — ordered attribute indexes;
* :mod:`repro.db.versions` — version control for multimedia objects
  ("version control is also considered important", §2);
* :mod:`repro.db.database` — the facade tying them together.
"""

from repro.db.database import Database
from repro.db.objects import DBObject, OID
from repro.db.query import Q, Predicate
from repro.db.schema import AttributeSpec, ClassDef, Schema
from repro.db.transactions import Transaction
from repro.db.versions import VersionGraph

__all__ = [
    "Database",
    "DBObject",
    "OID",
    "Q",
    "Predicate",
    "Schema",
    "ClassDef",
    "AttributeSpec",
    "Transaction",
    "VersionGraph",
]
