"""Durable object store: redo-only write-ahead log + snapshot checkpoints.

Commit protocol: a transaction's operations are appended to the WAL (with
length prefix and CRC) and flushed *before* being applied to the
in-memory object table — redo-only logging, so recovery is a pure replay
of committed work.  ``checkpoint()`` pickles the full table to a snapshot
file and truncates the log.  Recovery loads the snapshot then replays the
WAL, stopping cleanly at a torn tail (simulated crash mid-append).

The store is representation-agnostic: attribute values (including media
values with numpy payloads) are pickled.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.db.objects import DBObject, OID
from repro.errors import DatabaseError, ObjectNotFoundError

# op kinds
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"

Op = Tuple[str, Any]  # (kind, DBObject | OID)

_LEN = struct.Struct("<I")
_CRC = struct.Struct("<I")


class ObjectStore:
    """In-memory object table with optional WAL-backed durability."""

    SNAPSHOT_NAME = "snapshot.pickle"
    WAL_NAME = "wal.log"

    def __init__(self, directory: Optional[os.PathLike | str] = None) -> None:
        self._objects: Dict[OID, DBObject] = {}
        self._serials: Dict[str, int] = {}
        self._directory: Optional[Path] = Path(directory) if directory else None
        self._wal_file = None
        self.recovered_records = 0
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            self._recover()
            self._wal_file = open(self._wal_path, "ab")

    # -- paths ----------------------------------------------------------
    @property
    def _snapshot_path(self) -> Path:
        return self._directory / self.SNAPSHOT_NAME

    @property
    def _wal_path(self) -> Path:
        return self._directory / self.WAL_NAME

    @property
    def durable(self) -> bool:
        return self._directory is not None

    # -- object table ----------------------------------------------------
    def next_oid(self, class_name: str) -> OID:
        serial = self._serials.get(class_name, 0) + 1
        self._serials[class_name] = serial
        return OID(class_name, serial)

    def exists(self, oid: OID) -> bool:
        return oid in self._objects

    def get(self, oid: OID) -> DBObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectNotFoundError(f"no object {oid}") from None

    def all_oids(self) -> List[OID]:
        return sorted(self._objects)

    def oids_of_class(self, class_names: Iterable[str]) -> List[OID]:
        wanted = set(class_names)
        return sorted(o for o in self._objects if o.class_name in wanted)

    def __len__(self) -> int:
        return len(self._objects)

    # -- commit path -------------------------------------------------------
    def commit_ops(self, tx_id: int, ops: List[Op]) -> None:
        """Log (if durable) then apply a committed transaction's ops."""
        self._validate_ops(ops)
        if self._wal_file is not None:
            payload = pickle.dumps((tx_id, ops), protocol=pickle.HIGHEST_PROTOCOL)
            record = _LEN.pack(len(payload)) + payload + _CRC.pack(zlib.crc32(payload))
            self._wal_file.write(record)
            self._wal_file.flush()
            os.fsync(self._wal_file.fileno())
        self._apply_ops(ops)

    def _validate_ops(self, ops: List[Op]) -> None:
        for kind, arg in ops:
            if kind == OP_INSERT:
                if arg.oid in self._objects:
                    raise DatabaseError(f"insert of existing object {arg.oid}")
            elif kind == OP_UPDATE:
                if arg.oid not in self._objects:
                    raise ObjectNotFoundError(f"update of missing object {arg.oid}")
            elif kind == OP_DELETE:
                if arg not in self._objects:
                    raise ObjectNotFoundError(f"delete of missing object {arg}")
            else:
                raise DatabaseError(f"unknown op kind {kind!r}")

    def _apply_ops(self, ops: List[Op]) -> None:
        for kind, arg in ops:
            if kind == OP_INSERT:
                self._objects[arg.oid] = arg
                serial = self._serials.get(arg.oid.class_name, 0)
                self._serials[arg.oid.class_name] = max(serial, arg.oid.serial)
            elif kind == OP_UPDATE:
                self._objects[arg.oid] = arg
            elif kind == OP_DELETE:
                del self._objects[arg]

    # -- durability ----------------------------------------------------------
    def checkpoint(self) -> None:
        """Write a snapshot and truncate the WAL."""
        if self._directory is None:
            raise DatabaseError("checkpoint requires a durable store")
        tmp = self._snapshot_path.with_suffix(".tmp")
        with open(tmp, "wb") as f:
            pickle.dump((self._objects, self._serials), f,
                        protocol=pickle.HIGHEST_PROTOCOL)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._snapshot_path)
        self._wal_file.close()
        self._wal_file = open(self._wal_path, "wb")

    def _recover(self) -> None:
        """Load the snapshot (if any) and replay the WAL's committed tail."""
        if self._snapshot_path.exists():
            with open(self._snapshot_path, "rb") as f:
                self._objects, self._serials = pickle.load(f)
        if not self._wal_path.exists():
            return
        with open(self._wal_path, "rb") as f:
            data = f.read()
        pos = 0
        while pos + _LEN.size <= len(data):
            (length,) = _LEN.unpack_from(data, pos)
            end = pos + _LEN.size + length + _CRC.size
            if end > len(data):
                break  # torn tail: the record never finished committing
            payload = data[pos + _LEN.size: pos + _LEN.size + length]
            (crc,) = _CRC.unpack_from(data, end - _CRC.size)
            if zlib.crc32(payload) != crc:
                break  # corrupt tail
            _tx_id, ops = pickle.loads(payload)
            self._apply_ops(ops)
            self.recovered_records += 1
            pos = end

    def close(self) -> None:
        if self._wal_file is not None:
            self._wal_file.close()
            self._wal_file = None

    def __enter__(self) -> "ObjectStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
