"""Objects and object identifiers.

"Certain requests, such as queries, may return references (i.e., names or
identifiers) to AV values rather than the values themselves" (§3.1).
:class:`OID` is that reference type; :class:`DBObject` is the stored
record.  Objects are immutable snapshots — updates go through a
transaction, which installs a new snapshot (and a new version number).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.errors import SchemaError


@dataclass(frozen=True, slots=True, order=True)
class OID:
    """A stable object identifier (class name + serial)."""

    class_name: str
    serial: int

    def __str__(self) -> str:
        return f"{self.class_name}:{self.serial}"


@dataclass(frozen=True)
class DBObject:
    """One stored object snapshot."""

    oid: OID
    attributes: Dict[str, Any] = field(default_factory=dict)
    version: int = 1

    @property
    def class_name(self) -> str:
        return self.oid.class_name

    def get(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def __getattr__(self, name: str) -> Any:
        # Attribute-style access for queries and the session pseudo-code
        # (myNews.videoTrack); dataclass fields resolve normally first.
        attributes = object.__getattribute__(self, "attributes")
        if name in attributes:
            return attributes[name]
        raise AttributeError(
            f"object {object.__getattribute__(self, 'oid')} has no attribute {name!r}"
        )

    def updated(self, changes: Dict[str, Any]) -> "DBObject":
        """A new snapshot with ``changes`` merged and version bumped."""
        if not changes:
            raise SchemaError("update with no changes")
        merged = dict(self.attributes)
        merged.update(changes)
        return DBObject(self.oid, merged, self.version + 1)

    def __repr__(self) -> str:
        keys = ", ".join(sorted(self.attributes))
        return f"DBObject({self.oid}, v{self.version}, attrs=[{keys}])"
