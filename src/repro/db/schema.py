"""Class schema with typed attributes and ``tcomp`` groups (paper §4.1).

The paper's running example compiles to::

    newscast = ClassDef(
        "Newscast",
        attributes=[
            AttributeSpec("title", str, indexed=True),
            AttributeSpec("broadcastSource", str),
            AttributeSpec("keywords", list),
            AttributeSpec("whenBroadcast", str, indexed=True),
        ],
        tcomps=[TCompSpec("clip", (
            TrackSpec("videoTrack", standard_type("video/*")),
            TrackSpec("englishTrack", standard_type("audio/*")),
            TrackSpec("frenchTrack", standard_type("audio/*")),
            TrackSpec("subtitleTrack", standard_type("text/stream")),
        ))],
    )

Attribute types are Python types, :class:`MediaValue` subclasses (with an
optional quality factor, as in ``VideoValue videoTrack quality
640x480x8@30``), or another class name (a reference attribute).
Single inheritance follows the paper's subclass-of notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.errors import SchemaError
from repro.quality.factors import QualityFactor, VideoQuality
from repro.temporal.spec import TCompSpec
from repro.values.base import MediaValue

AttrType = Union[Type, str]  # a Python/MediaValue type, or a class name (reference)


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute declaration.

    Attributes
    ----------
    name:
        Attribute name.
    attr_type:
        Python type (``str``, ``int`` ...), a :class:`MediaValue`
        subclass, or a string naming another class (reference attribute).
    quality:
        Optional quality factor constraining stored media values
        ("Quality factors are optional in class definitions").
    indexed:
        Maintain an ordered index on this attribute.
    keyword_indexed:
        Maintain an inverted keyword index (content-based retrieval).
    required:
        Reject objects missing this attribute.
    """

    name: str
    attr_type: AttrType
    quality: Optional[QualityFactor] = None
    indexed: bool = False
    keyword_indexed: bool = False
    required: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise SchemaError(f"attribute name {self.name!r} is not a valid identifier")
        if self.quality is not None:
            if not (isinstance(self.attr_type, type)
                    and issubclass(self.attr_type, MediaValue)):
                raise SchemaError(
                    f"attribute {self.name!r}: quality factors apply only to "
                    f"media-valued attributes"
                )

    @property
    def is_media(self) -> bool:
        return isinstance(self.attr_type, type) and issubclass(self.attr_type, MediaValue)

    @property
    def is_reference(self) -> bool:
        return isinstance(self.attr_type, str)

    def validate_value(self, value, schema: Optional["Schema"] = None) -> None:
        """Type/quality-check one attribute value."""
        if value is None:
            if self.required:
                raise SchemaError(f"attribute {self.name!r} is required")
            return
        if self.is_reference:
            from repro.db.objects import OID
            if not isinstance(value, OID):
                raise SchemaError(
                    f"attribute {self.name!r} holds references to "
                    f"{self.attr_type!r}; got {type(value).__name__}"
                )
            return
        if not isinstance(value, self.attr_type):
            raise SchemaError(
                f"attribute {self.name!r} expects {self.attr_type.__name__}, "
                f"got {type(value).__name__}"
            )
        if self.quality is not None and isinstance(self.quality, VideoQuality):
            stored = VideoQuality(value.width, value.height, value.depth,
                                  value.mapping.rate)
            if not self.quality.dominates(stored) and not stored.dominates(self.quality):
                pass  # incomparable qualities are allowed
            elif not self.quality.dominates(stored):
                raise SchemaError(
                    f"attribute {self.name!r}: stored quality {stored} exceeds "
                    f"declared quality {self.quality}"
                )


@dataclass(frozen=True)
class ClassDef:
    """An object class: attributes, tcomp groups, optional superclass."""

    name: str
    attributes: Tuple[AttributeSpec, ...] = ()
    tcomps: Tuple[TCompSpec, ...] = ()
    superclass: Optional[str] = None

    def __init__(self, name: str, attributes=(), tcomps=(), superclass=None) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "tcomps", tuple(tcomps))
        object.__setattr__(self, "superclass", superclass)
        if not name.isidentifier():
            raise SchemaError(f"class name {name!r} is not a valid identifier")
        names = [a.name for a in self.attributes] + [t.name for t in self.tcomps]
        if len(set(names)) != len(names):
            raise SchemaError(f"class {name!r} has duplicate attribute/tcomp names")

    def attribute(self, name: str) -> Optional[AttributeSpec]:
        for spec in self.attributes:
            if spec.name == name:
                return spec
        return None

    def tcomp(self, name: str) -> Optional[TCompSpec]:
        for spec in self.tcomps:
            if spec.name == name:
                return spec
        return None


class Schema:
    """Registry of class definitions with inheritance resolution."""

    def __init__(self) -> None:
        self._classes: Dict[str, ClassDef] = {}

    def define(self, class_def: ClassDef) -> ClassDef:
        """Register a class; its superclass must already be defined."""
        if class_def.name in self._classes:
            raise SchemaError(f"class {class_def.name!r} already defined")
        if class_def.superclass is not None and class_def.superclass not in self._classes:
            raise SchemaError(
                f"class {class_def.name!r}: unknown superclass {class_def.superclass!r}"
            )
        # Reference attributes may point at classes defined later; checked
        # at insert time instead.
        self._classes[class_def.name] = class_def
        return class_def

    def get(self, name: str) -> ClassDef:
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def class_names(self) -> List[str]:
        return sorted(self._classes)

    # -- inheritance ---------------------------------------------------------
    def ancestry(self, name: str) -> List[str]:
        """[name, superclass, ...] up to the root."""
        chain = []
        current: Optional[str] = name
        while current is not None:
            if current in chain:
                raise SchemaError(f"inheritance cycle at class {current!r}")
            chain.append(current)
            current = self.get(current).superclass
        return chain

    def is_subclass(self, name: str, ancestor: str) -> bool:
        return ancestor in self.ancestry(name)

    def subclasses_of(self, name: str) -> List[str]:
        """All classes whose ancestry includes ``name`` (including itself)."""
        return [c for c in self._classes if self.is_subclass(c, name)]

    def all_attributes(self, name: str) -> List[AttributeSpec]:
        """Own + inherited attributes, subclass-first on name conflicts."""
        seen: Dict[str, AttributeSpec] = {}
        for cls_name in self.ancestry(name):
            for spec in self.get(cls_name).attributes:
                seen.setdefault(spec.name, spec)
        return list(seen.values())

    def all_tcomps(self, name: str) -> List[TCompSpec]:
        seen: Dict[str, TCompSpec] = {}
        for cls_name in self.ancestry(name):
            for spec in self.get(cls_name).tcomps:
                seen.setdefault(spec.name, spec)
        return list(seen.values())

    def validate_object(self, class_name: str, attributes: Dict[str, object]) -> None:
        """Validate a full attribute dict for an object of ``class_name``."""
        class_def = self.get(class_name)
        specs = {a.name: a for a in self.all_attributes(class_name)}
        tcomps = {t.name: t for t in self.all_tcomps(class_name)}
        for key, value in attributes.items():
            if key in specs:
                specs[key].validate_value(value, self)
            elif key in tcomps:
                from repro.temporal.composite import TemporalComposite
                if not isinstance(value, TemporalComposite):
                    raise SchemaError(
                        f"attribute {key!r} of {class_name!r} is a tcomp; "
                        f"assign a TemporalComposite"
                    )
                if value.spec.name != key:
                    raise SchemaError(
                        f"tcomp attribute {key!r} got a composite built from "
                        f"spec {value.spec.name!r}"
                    )
            else:
                raise SchemaError(f"class {class_name!r} has no attribute {key!r}")
        for spec in specs.values():
            if spec.required and attributes.get(spec.name) is None:
                raise SchemaError(
                    f"class {class_name!r}: required attribute {spec.name!r} missing"
                )
