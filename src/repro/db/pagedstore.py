"""Disk-resident object store over the paged heap file.

Same commit/recovery protocol as :class:`~repro.db.store.ObjectStore`
(redo-only WAL, replay on open) but object bytes live in the
:class:`~repro.db.pages.HeapFile` behind an LRU buffer pool, so memory
stays bounded no matter how much media is stored — only the OID →
record-id map is resident.  ``checkpoint()`` flushes the pool and
truncates the WAL (the heap *is* the snapshot).
"""

from __future__ import annotations

import os
import pickle
import zlib
from pathlib import Path
from typing import Dict, Iterable, List

from repro.db.objects import DBObject, OID
from repro.db.pages import HeapFile, RecordId
from repro.db.store import _CRC, _LEN, OP_DELETE, OP_INSERT, OP_UPDATE, Op
from repro.errors import DatabaseError, ObjectNotFoundError


class PagedObjectStore:
    """WAL + paged heap object store with bounded resident memory."""

    HEAP_NAME = "objects.pages"
    WAL_NAME = "wal.log"

    def __init__(self, directory: os.PathLike | str,
                 pool_capacity: int = 128) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._heap = HeapFile(self._directory / self.HEAP_NAME, pool_capacity)
        self._rids: Dict[OID, RecordId] = {}
        self._serials: Dict[str, int] = {}
        self.recovered_records = 0
        self._bootstrap_from_heap()
        self._replay_wal()
        self._wal_file = open(self._wal_path, "ab")

    # -- paths / properties ------------------------------------------------
    @property
    def _wal_path(self) -> Path:
        return self._directory / self.WAL_NAME

    @property
    def durable(self) -> bool:
        return True

    @property
    def pool(self):
        return self._heap.pool

    # -- bootstrap ---------------------------------------------------------
    def _bootstrap_from_heap(self) -> None:
        # A crash between the insert-new and delete-old halves of an
        # update can leave two records for one OID; keep the newer
        # version and reclaim the loser.
        for rid, payload in self._heap.scan():
            obj: DBObject = pickle.loads(payload)
            existing = self._rids.get(obj.oid)
            if existing is not None:
                current: DBObject = pickle.loads(self._heap.read(existing))
                if current.version >= obj.version:
                    self._heap.delete(rid)
                    continue
                self._heap.delete(existing)
            self._rids[obj.oid] = rid
            serial = self._serials.get(obj.oid.class_name, 0)
            self._serials[obj.oid.class_name] = max(serial, obj.oid.serial)

    def _replay_wal(self) -> None:
        if not self._wal_path.exists():
            return
        data = self._wal_path.read_bytes()
        position = 0
        while position + _LEN.size <= len(data):
            (length,) = _LEN.unpack_from(data, position)
            end = position + _LEN.size + length + _CRC.size
            if end > len(data):
                break
            payload = data[position + _LEN.size: position + _LEN.size + length]
            (crc,) = _CRC.unpack_from(data, end - _CRC.size)
            if zlib.crc32(payload) != crc:
                break
            _tx_id, ops = pickle.loads(payload)
            self._apply_ops(ops, replay=True)
            self.recovered_records += 1
            position = end

    # -- object table protocol ---------------------------------------------
    def next_oid(self, class_name: str) -> OID:
        serial = self._serials.get(class_name, 0) + 1
        self._serials[class_name] = serial
        return OID(class_name, serial)

    def exists(self, oid: OID) -> bool:
        return oid in self._rids

    def get(self, oid: OID) -> DBObject:
        try:
            rid = self._rids[oid]
        except KeyError:
            raise ObjectNotFoundError(f"no object {oid}") from None
        return pickle.loads(self._heap.read(rid))

    def all_oids(self) -> List[OID]:
        return sorted(self._rids)

    def oids_of_class(self, class_names: Iterable[str]) -> List[OID]:
        wanted = set(class_names)
        return sorted(o for o in self._rids if o.class_name in wanted)

    def __len__(self) -> int:
        return len(self._rids)

    # -- commit path -------------------------------------------------------
    def commit_ops(self, tx_id: int, ops: List[Op]) -> None:
        """WAL-then-apply: fsync the commit record, then update the heap."""
        self._validate_ops(ops)
        payload = pickle.dumps((tx_id, ops), protocol=pickle.HIGHEST_PROTOCOL)
        record = _LEN.pack(len(payload)) + payload + _CRC.pack(zlib.crc32(payload))
        self._wal_file.write(record)
        self._wal_file.flush()
        os.fsync(self._wal_file.fileno())
        self._apply_ops(ops)

    def _validate_ops(self, ops: List[Op]) -> None:
        for kind, arg in ops:
            if kind == OP_INSERT:
                if arg.oid in self._rids:
                    raise DatabaseError(f"insert of existing object {arg.oid}")
            elif kind == OP_UPDATE:
                if arg.oid not in self._rids:
                    raise ObjectNotFoundError(f"update of missing object {arg.oid}")
            elif kind == OP_DELETE:
                if arg not in self._rids:
                    raise ObjectNotFoundError(f"delete of missing object {arg}")
            else:
                raise DatabaseError(f"unknown op kind {kind!r}")

    def _apply_ops(self, ops: List[Op], replay: bool = False) -> None:
        for kind, arg in ops:
            if kind == OP_INSERT:
                existing = self._rids.pop(arg.oid, None) if replay else None
                if existing is not None:
                    # Idempotent replay: the effect already reached the heap.
                    self._heap.delete(existing)
                self._store_object(arg)
                serial = self._serials.get(arg.oid.class_name, 0)
                self._serials[arg.oid.class_name] = max(serial, arg.oid.serial)
            elif kind == OP_UPDATE:
                old = self._rids.pop(arg.oid, None)
                if old is not None:
                    self._heap.delete(old)
                self._store_object(arg)
            elif kind == OP_DELETE:
                rid = self._rids.pop(arg, None)
                if rid is not None:
                    self._heap.delete(rid)

    def _store_object(self, obj: DBObject) -> None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._rids[obj.oid] = self._heap.insert(payload)

    # -- maintenance -------------------------------------------------------
    def vacuum(self) -> int:
        """Compact the heap and re-point the OID map; returns pages saved."""
        before = self._heap.page_file.page_count
        mapping = self._heap.vacuum()
        self._rids = {oid: mapping[rid] for oid, rid in self._rids.items()}
        return before - self._heap.page_file.page_count

    # -- durability ----------------------------------------------------------
    def checkpoint(self) -> None:
        """Flush the heap (it *is* the snapshot) and truncate the WAL."""
        self._heap.pool.flush_all()
        self._wal_file.close()
        self._wal_file = open(self._wal_path, "wb")

    def close(self) -> None:
        if self._wal_file is not None:
            self._wal_file.close()
            self._wal_file = None
        self._heap.pool.flush_all()
        self._heap.close()

    def __enter__(self) -> "PagedObjectStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
