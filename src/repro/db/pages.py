"""Paged storage: heap file with slotted pages and an LRU buffer pool.

The substrate beneath a disk-resident object store: fixed-size pages on a
file, each a *slotted page* (slot directory grows down from the header,
record bytes grow up from the end), accessed through a pinned/LRU
:class:`BufferPool` that bounds memory and writes dirty pages back on
eviction.  ``HeapFile`` stitches pages into an insert/read/delete record
store addressed by :class:`RecordId`.

Records larger than one page's free space are stored as *overflow
chains* (first fragment in the home page, continuation pages linked by
page id), so multi-megabyte pickled media objects fit naturally.
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import DatabaseError
from repro.obs import attach

PAGE_SIZE = 4096

# Page header: record count, free-space offset, overflow-next page id.
_HEADER = struct.Struct("<HHi")
# Slot: record offset, record length (0 length = deleted slot).
_SLOT = struct.Struct("<HH")
_NO_PAGE = -1


class Page:
    """One slotted page held in memory."""

    __slots__ = ("page_id", "data", "dirty")

    def __init__(self, page_id: int, data: Optional[bytearray] = None) -> None:
        self.page_id = page_id
        if data is None:
            data = bytearray(PAGE_SIZE)
            _HEADER.pack_into(data, 0, 0, PAGE_SIZE, _NO_PAGE)
        self.data = data
        self.dirty = False

    # -- header access ---------------------------------------------------
    @property
    def record_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def free_offset(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[1]

    @property
    def overflow_next(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[2]

    def _set_header(self, count: int, free: int, overflow: int) -> None:
        _HEADER.pack_into(self.data, 0, count, free, overflow)
        self.dirty = True

    def set_overflow_next(self, page_id: int) -> None:
        self._set_header(self.record_count, self.free_offset, page_id)

    # -- slots ----------------------------------------------------------
    def _slot_position(self, slot: int) -> int:
        return _HEADER.size + slot * _SLOT.size

    def _slot(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self.record_count:
            raise DatabaseError(
                f"page {self.page_id}: no slot {slot} "
                f"(has {self.record_count})"
            )
        return _SLOT.unpack_from(self.data, self._slot_position(slot))

    def free_space(self) -> int:
        directory_end = self._slot_position(self.record_count) + _SLOT.size
        return max(0, self.free_offset - directory_end)

    def insert(self, record: bytes) -> int:
        """Store a record; returns its slot number."""
        needed = len(record)
        if needed > self.free_space():
            raise DatabaseError(
                f"page {self.page_id}: record of {needed} bytes does not fit "
                f"({self.free_space()} free)"
            )
        slot = self.record_count
        offset = self.free_offset - needed
        self.data[offset:offset + needed] = record
        _SLOT.pack_into(self.data, self._slot_position(slot), offset, needed)
        self._set_header(slot + 1, offset, self.overflow_next)
        return slot

    def read(self, slot: int) -> bytes:
        offset, length = self._slot(slot)
        if length == 0:
            raise DatabaseError(f"page {self.page_id} slot {slot} was deleted")
        return bytes(self.data[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Mark a slot deleted (space reclaimed by compaction/vacuum)."""
        offset, length = self._slot(slot)
        if length == 0:
            raise DatabaseError(f"page {self.page_id} slot {slot} already deleted")
        _SLOT.pack_into(self.data, self._slot_position(slot), offset, 0)
        self.dirty = True

    def live_slots(self) -> List[int]:
        return [s for s in range(self.record_count) if self._slot(s)[1] > 0]


class PageFile:
    """Fixed-size pages on one file."""

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = Path(path)
        # "r+b" honours seeks on write; append mode would force every
        # write to EOF and corrupt page updates.
        mode = "r+b" if self.path.exists() else "w+b"
        self._file = open(self.path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE != 0:
            raise DatabaseError(
                f"{self.path} is torn: {size} bytes is not a page multiple"
            )
        self._page_count = size // PAGE_SIZE
        metrics = attach().metrics
        self._m_page_reads = metrics.counter("db.page_reads")
        self._m_page_writes = metrics.counter("db.page_writes")

    @property
    def page_count(self) -> int:
        return self._page_count

    def allocate(self) -> int:
        page_id = self._page_count
        self._page_count += 1
        self._file.seek(page_id * PAGE_SIZE)
        self._file.write(bytes(PAGE_SIZE))
        return page_id

    def read_page(self, page_id: int) -> Page:
        """Read one page from disk (bounds- and length-checked)."""
        if not 0 <= page_id < self._page_count:
            raise DatabaseError(f"no page {page_id} (file has {self._page_count})")
        self._file.seek(page_id * PAGE_SIZE)
        data = bytearray(self._file.read(PAGE_SIZE))
        if len(data) != PAGE_SIZE:
            raise DatabaseError(f"short read of page {page_id}")
        self._m_page_reads.inc()
        return Page(page_id, data)

    def write_page(self, page: Page) -> None:
        self._file.seek(page.page_id * PAGE_SIZE)
        self._file.write(page.data)
        page.dirty = False
        self._m_page_writes.inc()

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()


class BufferPool:
    """Pinned LRU cache of pages over a :class:`PageFile`."""

    def __init__(self, page_file: PageFile, capacity: int = 64) -> None:
        if capacity < 1:
            raise DatabaseError(f"buffer pool capacity must be >= 1, got {capacity}")
        self.page_file = page_file
        self.capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        metrics = attach().metrics
        self._m_hits = metrics.counter("db.page_hits")
        self._m_misses = metrics.counter("db.page_misses")
        self._m_evictions = metrics.counter("db.page_evictions")

    def _evict_if_needed(self, keep: Optional[int] = None) -> None:
        """Shrink to capacity; never evicts pinned pages or ``keep``
        (the page the caller is about to hand out)."""
        while len(self._frames) > self.capacity:
            victim_id = next(
                (pid for pid in self._frames
                 if self._pins.get(pid, 0) == 0 and pid != keep),
                None,
            )
            if victim_id is None:
                raise DatabaseError(
                    f"buffer pool full with {len(self._frames)} pinned pages"
                )
            victim = self._frames.pop(victim_id)
            if victim.dirty:
                self.page_file.write_page(victim)
            self.evictions += 1
            self._m_evictions.inc()

    def fetch(self, page_id: int, pin: bool = False) -> Page:
        """Return the page, reading it in (and evicting) as needed."""
        if page_id in self._frames:
            self.hits += 1
            self._m_hits.inc()
            self._frames.move_to_end(page_id)
        else:
            self.misses += 1
            self._m_misses.inc()
            self._frames[page_id] = self.page_file.read_page(page_id)
            self._evict_if_needed(keep=page_id)
        if pin:
            self._pins[page_id] = self._pins.get(page_id, 0) + 1
        return self._frames[page_id]

    def unpin(self, page_id: int) -> None:
        """Release one pin; the page becomes evictable at zero pins."""
        count = self._pins.get(page_id, 0)
        if count <= 0:
            raise DatabaseError(f"page {page_id} is not pinned")
        if count == 1:
            del self._pins[page_id]
        else:
            self._pins[page_id] = count - 1

    def new_page(self) -> Page:
        """Allocate a fresh page and cache it dirty."""
        page_id = self.page_file.allocate()
        page = Page(page_id)
        page.dirty = True
        self._frames[page_id] = page
        self._frames.move_to_end(page_id)
        self._evict_if_needed(keep=page_id)
        return page

    def flush_all(self) -> None:
        for page in self._frames.values():
            if page.dirty:
                self.page_file.write_page(page)
        self.page_file.sync()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True, slots=True)
class RecordId:
    """Stable record address: home page + slot."""

    page_id: int
    slot: int


# Fragment header inside each stored record piece: total remaining length.
_FRAG = struct.Struct("<I")
_MAX_FRAGMENT = PAGE_SIZE - _HEADER.size - 2 * _SLOT.size - _FRAG.size - 16


class HeapFile:
    """A record store over pages, with overflow chains for big records."""

    def __init__(self, path: os.PathLike | str, pool_capacity: int = 64) -> None:
        self.page_file = PageFile(path)
        self.pool = BufferPool(self.page_file, pool_capacity)
        # Last page we appended to; a simple free-space heuristic.
        self._current_page: Optional[int] = (
            self.page_file.page_count - 1 if self.page_file.page_count else None
        )

    # -- insert ----------------------------------------------------------
    def insert(self, record: bytes) -> RecordId:
        fragments = [record[i:i + _MAX_FRAGMENT]
                     for i in range(0, len(record), _MAX_FRAGMENT)] or [b""]
        remaining = len(record)
        if len(fragments) == 1:
            payload = _FRAG.pack(remaining) + fragments[0]
            page = self._page_with_space(len(payload))
            return RecordId(page.page_id, page.insert(payload))
        # A fragmented record owns its whole page chain: every fragment
        # goes to a dedicated fresh page so chain pointers never collide
        # between records sharing a page.
        home: Optional[RecordId] = None
        previous_page: Optional[Page] = None
        for fragment in fragments:
            payload = _FRAG.pack(remaining) + fragment
            page = self.pool.new_page()
            # Pin until its overflow pointer is final, so eviction cannot
            # detach the in-memory page we are still mutating.
            self.pool.fetch(page.page_id, pin=True)
            slot = page.insert(payload)
            if home is None:
                home = RecordId(page.page_id, slot)
            if previous_page is not None:
                previous_page.set_overflow_next(page.page_id)
                self.pool.unpin(previous_page.page_id)
            previous_page = page
            remaining -= len(fragment)
        if previous_page is not None:
            self.pool.unpin(previous_page.page_id)
        # Chain pages are exclusive: do not append later records to them.
        self._current_page = None
        return home

    def _page_with_space(self, needed: int) -> Page:
        if self._current_page is not None:
            page = self.pool.fetch(self._current_page)
            # Never append into a chain page picked up from a prior run.
            if page.overflow_next == _NO_PAGE and page.free_space() >= needed:
                return page
        page = self.pool.new_page()
        self._current_page = page.page_id
        return page

    # -- read ------------------------------------------------------------
    def read(self, rid: RecordId) -> bytes:
        """Reassemble a record, following its overflow chain if fragmented."""
        page = self.pool.fetch(rid.page_id)
        payload = page.read(rid.slot)
        (total,) = _FRAG.unpack_from(payload, 0)
        body = payload[_FRAG.size:]
        parts = [body]
        remaining = total - len(body)
        current = page
        while remaining > 0:
            next_id = current.overflow_next
            if next_id == _NO_PAGE:
                raise DatabaseError(
                    f"record {rid} truncated: {remaining} bytes missing"
                )
            current = self.pool.fetch(next_id)
            # Continuation fragments are always slot 0 of their page.
            payload = current.read(0)
            body = payload[_FRAG.size:]
            parts.append(body)
            remaining -= len(body)
        return b"".join(parts)

    # -- delete ----------------------------------------------------------
    def delete(self, rid: RecordId) -> None:
        """Delete a record and every fragment of its overflow chain."""
        page = self.pool.fetch(rid.page_id)
        payload = page.read(rid.slot)
        (total,) = _FRAG.unpack_from(payload, 0)
        consumed = len(payload) - _FRAG.size
        page.delete(rid.slot)
        remaining = total - consumed
        current = page
        while remaining > 0:
            next_id = current.overflow_next
            if next_id == _NO_PAGE:
                break
            current = self.pool.fetch(next_id)
            fragment = current.read(0)
            current.delete(0)
            remaining -= len(fragment) - _FRAG.size

    # -- scan ------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[RecordId, bytes]]:
        """All live *home* records (overflow continuations are skipped)."""
        continuation_pages = set()
        for page_id in range(self.page_file.page_count):
            page = self.pool.fetch(page_id)
            if page.overflow_next != _NO_PAGE:
                continuation_pages.add(page.overflow_next)
        for page_id in range(self.page_file.page_count):
            if page_id in continuation_pages:
                continue
            page = self.pool.fetch(page_id)
            for slot in page.live_slots():
                yield RecordId(page_id, slot), self.read(RecordId(page_id, slot))

    def vacuum(self) -> Dict[RecordId, RecordId]:
        """Compact the heap: rewrite live records, dropping dead space.

        Copies every live record into a fresh page file and swaps it in
        place.  Returns the old-to-new record-id mapping so callers (the
        paged object store) can re-point their maps.
        """
        import tempfile
        live = list(self.scan())
        directory = self.page_file.path.parent
        with tempfile.NamedTemporaryFile(dir=directory, delete=False) as handle:
            scratch_path = handle.name
        os.unlink(scratch_path)  # HeapFile wants to create/own the file
        compacted = HeapFile(scratch_path, self.pool.capacity)
        mapping: Dict[RecordId, RecordId] = {}
        for old_rid, payload in live:
            mapping[old_rid] = compacted.insert(payload)
        compacted.close()
        self.pool.flush_all()
        self.page_file.close()
        os.replace(scratch_path, self.page_file.path)
        # Re-open over the compacted file with a fresh pool.
        self.page_file = PageFile(self.page_file.path)
        self.pool = BufferPool(self.page_file, self.pool.capacity)
        self._current_page = (
            self.page_file.page_count - 1 if self.page_file.page_count else None
        )
        return mapping

    def close(self) -> None:
        self.pool.flush_all()
        self.page_file.close()
