"""A B-tree ordered index.

The classic disk-friendly ordered index (Bayer/McCreight): nodes hold up
to ``2t - 1`` keys; inserts split full children on the way down, deletes
borrow/merge on the way down, so the tree never needs back-tracking and
stays balanced — every leaf at the same depth.  Keys map to *sets* of
OIDs (attribute values are not unique across objects).

Exposes the same interface as
:class:`~repro.db.index.OrderedIndex` (``insert`` / ``remove`` / ``eq`` /
``range`` / ``min_key`` / ``max_key``), so the database can use either;
``benchmarks/bench_ablation_index.py`` compares them.

Beyond the set-returning ``range``, :meth:`BTreeIndex.scan` is a *lazy*
ordered iterator with an ``on_visit`` hook, so a transactional caller can
take (and, under strict 2PL, keep) read locks on every posting the scan
touches — the contract the interval index in ``repro.annotations`` needs
under concurrent wait-die writers.  A mutation counter guards in-flight
scans: any insert/remove while a scan generator is live makes its next
step raise :class:`~repro.errors.QueryError` instead of silently
yielding from a restructured tree.  :meth:`BTreeIndex.bulk_load` builds
the tree bottom-up from sorted entries in O(n) — the corpus-loading path
that makes million-posting indexes practical.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.db.objects import OID
from repro.errors import QueryError


class _Node:
    __slots__ = ("keys", "buckets", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.buckets: List[Set[OID]] = []
        self.children: List["_Node"] = []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTreeIndex:
    """Ordered (key -> set of OIDs) index backed by a B-tree."""

    #: Node factory; subclasses (e.g. the interval index) override this
    #: to hang per-node augmentation off the same CLRS machinery.
    node_class = _Node

    def __init__(self, class_name: str, attribute: str,
                 min_degree: int = 16) -> None:
        if min_degree < 2:
            raise QueryError(f"B-tree degree must be >= 2, got {min_degree}")
        self.class_name = class_name
        self.attribute = attribute
        self._t = min_degree
        self._root = self.node_class()
        self._size = 0
        #: Bumped on every mutating call.  Doubles as the epoch for lazy
        #: per-node augmentation memos and as the in-flight-scan guard.
        self._mods = 0

    def __len__(self) -> int:
        return self._size

    # -- insert ----------------------------------------------------------
    def insert(self, key: Any, oid: OID) -> None:
        """Add one (key, oid) posting (None keys are not indexed)."""
        if key is None:
            return
        self._mods += 1
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = self.node_class()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, oid)

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = self.node_class()
        parent.keys.insert(index, child.keys[t - 1])
        parent.buckets.insert(index, child.buckets[t - 1])
        sibling.keys = child.keys[t:]
        sibling.buckets = child.buckets[t:]
        child.keys = child.keys[: t - 1]
        child.buckets = child.buckets[: t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _Node, key: Any, oid: OID) -> None:
        while True:
            position = self._position(node, key)
            if position < len(node.keys) and node.keys[position] == key:
                if oid not in node.buckets[position]:
                    node.buckets[position].add(oid)
                    self._size += 1
                return
            if node.leaf:
                node.keys.insert(position, key)
                node.buckets.insert(position, {oid})
                self._size += 1
                return
            child = node.children[position]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, position)
                if node.keys[position] == key:
                    continue  # the promoted key is ours
                if key > node.keys[position]:
                    position += 1
            node = node.children[position]

    @staticmethod
    def _position(node: _Node, key: Any) -> int:
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if node.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- lookup ----------------------------------------------------------
    def eq(self, key: Any) -> Set[OID]:
        """OIDs stored under exactly ``key``."""
        node = self._root
        while True:
            position = self._position(node, key)
            if position < len(node.keys) and node.keys[position] == key:
                return set(node.buckets[position])
            if node.leaf:
                return set()
            node = node.children[position]

    def items(self) -> Iterator[Tuple[Any, Set[OID]]]:
        """All (key, bucket) pairs in ascending key order."""
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[Tuple[Any, Set[OID]]]:
        for i, key in enumerate(node.keys):
            if not node.leaf:
                yield from self._walk(node.children[i])
            yield key, node.buckets[i]
        if not node.leaf:
            yield from self._walk(node.children[-1])

    def range(self, lo: Optional[Any] = None, hi: Optional[Any] = None,
              include_lo: bool = True, include_hi: bool = True) -> Set[OID]:
        """OIDs whose key falls inside the (optionally open) range."""
        if lo is not None and hi is not None and lo > hi:
            raise QueryError(f"range lower bound {lo!r} exceeds upper bound {hi!r}")
        result: Set[OID] = set()
        self._range_into(self._root, lo, hi, include_lo, include_hi, result)
        return result

    def _range_into(self, node: _Node, lo, hi, include_lo, include_hi,
                    result: Set[OID]) -> None:
        for i, key in enumerate(node.keys):
            below = lo is not None and (key < lo or (key == lo and not include_lo))
            above = hi is not None and (key > hi or (key == hi and not include_hi))
            if not node.leaf and not below:
                # The left subtree can only matter if this key isn't
                # already below the range.
                self._range_into(node.children[i], lo, hi,
                                 include_lo, include_hi, result)
            if not below and not above:
                result |= node.buckets[i]
            if above:
                return  # everything rightward is larger still
        if not node.leaf:
            self._range_into(node.children[-1], lo, hi,
                             include_lo, include_hi, result)

    # -- lazy ordered scan -----------------------------------------------
    def scan(self, lo: Optional[Any] = None, hi: Optional[Any] = None,
             include_lo: bool = True, include_hi: bool = True,
             on_visit: Optional[Callable[[Any, Tuple[OID, ...]], None]]
             = None) -> Iterator[Tuple[Any, Tuple[OID, ...]]]:
        """Lazily yield ``(key, oids)`` pairs in ascending key order.

        ``on_visit(key, oids)`` fires immediately before each yield; a
        transactional caller uses it to take SHARED locks on the postings
        as the scan reaches them, so (under strict 2PL) the locks are
        held for the remainder of the scan and any writer must go through
        wait-die arbitration instead of mutating under the iterator.  As
        a second line of defense, the scan snapshots the tree's mutation
        counter and raises :class:`QueryError` if the tree changes while
        the generator is live — yielding from a restructured tree would
        silently skip or repeat entries.

        OIDs within a bucket are yielded in sorted order so two scans of
        equal trees produce byte-identical output.
        """
        if lo is not None and hi is not None and lo > hi:
            raise QueryError(
                f"scan lower bound {lo!r} exceeds upper bound {hi!r}")
        return self._scan_walk(self._root, lo, hi, include_lo, include_hi,
                               on_visit, self._mods)

    def _scan_walk(self, node: _Node, lo, hi, include_lo, include_hi,
                   on_visit, expected: int
                   ) -> Iterator[Tuple[Any, Tuple[OID, ...]]]:
        for i, key in enumerate(node.keys):
            below = lo is not None and (key < lo or (key == lo and not include_lo))
            above = hi is not None and (key > hi or (key == hi and not include_hi))
            if not node.leaf and not below:
                yield from self._scan_walk(node.children[i], lo, hi,
                                           include_lo, include_hi,
                                           on_visit, expected)
            if above:
                return
            if not below:
                if self._mods != expected:
                    raise QueryError(
                        "B-tree mutated during an in-flight scan; writers "
                        "must be serialized behind the scan's read locks")
                oids = tuple(sorted(node.buckets[i]))
                if on_visit is not None:
                    on_visit(key, oids)
                yield key, oids
        if not node.leaf:
            yield from self._scan_walk(node.children[-1], lo, hi,
                                       include_lo, include_hi,
                                       on_visit, expected)

    # -- bulk build ------------------------------------------------------
    def bulk_load(self,
                  items: Iterable[Tuple[Any, Iterable[OID]]]) -> None:
        """Build the tree bottom-up from strictly-ascending (key, oids).

        O(n) against O(n log n) repeated inserts — and, more to the
        point, without the constant-factor cost of a million top-down
        descents with pre-emptive splits.  Only valid on an empty tree;
        keys must be strictly increasing (buckets are per-key, so a
        repeated key is a caller bug, not a merge request).

        Every built node holds between ``t - 1`` and ``2t - 1`` keys
        (root exempt), so the result satisfies ``check_invariants`` and
        is indistinguishable from an insert-built tree to every reader.
        """
        if self._size or self._root.keys:
            raise QueryError("bulk_load requires an empty tree")
        entries: List[Tuple[Any, Set[OID]]] = []
        last_key = None
        for key, oids in items:
            if key is None:
                raise QueryError("bulk_load keys must not be None")
            if entries and not last_key < key:
                raise QueryError(
                    f"bulk_load keys must be strictly increasing; "
                    f"{key!r} after {last_key!r}")
            bucket = set(oids)
            if not bucket:
                raise QueryError(f"bulk_load bucket for {key!r} is empty")
            entries.append((key, bucket))
            last_key = key
        self._mods += 1
        self._size = sum(len(bucket) for _, bucket in entries)
        cap = 2 * self._t - 1
        level: Optional[List[_Node]] = None  # nodes of the level below
        while True:
            n = len(entries)
            # Node count such that even distribution lands every node in
            # [t-1, cap] keys: ceil((n + 1) / (cap + 1)); count == 1
            # exactly when all n entries fit in a single (root) node.
            count = max(1, -(-(n + 1) // (cap + 1)))
            if count == 1:
                root = self.node_class()
                root.keys = [key for key, _ in entries]
                root.buckets = [bucket for _, bucket in entries]
                if level is not None:
                    root.children = level
                self._root = root
                return
            base, extra = divmod(n - (count - 1), count)
            nodes: List[_Node] = []
            separators: List[Tuple[Any, Set[OID]]] = []
            at = 0
            child_at = 0
            for i in range(count):
                take = base + (1 if i < extra else 0)
                node = self.node_class()
                node.keys = [key for key, _ in entries[at:at + take]]
                node.buckets = [bucket for _, bucket in entries[at:at + take]]
                if level is not None:
                    node.children = level[child_at:child_at + take + 1]
                    child_at += take + 1
                at += take
                nodes.append(node)
                if i < count - 1:
                    separators.append(entries[at])
                    at += 1
            entries = separators
            level = nodes

    def min_key(self) -> Any:
        """Smallest indexed key, or None when empty."""
        node = self._root
        if not node.keys:
            return None
        while not node.leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> Any:
        """Largest indexed key, or None when empty."""
        node = self._root
        if not node.keys:
            return None
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1]

    # -- remove ----------------------------------------------------------
    def remove(self, key: Any, oid: OID) -> None:
        """Drop one posting; the key vanishes when its bucket empties."""
        if key is None:
            return
        bucket = self._find_bucket(self._root, key)
        if bucket is None or oid not in bucket:
            return
        self._mods += 1
        bucket.discard(oid)
        self._size -= 1
        if not bucket:
            self._delete_key(self._root, key)
            if not self._root.keys and self._root.children:
                self._root = self._root.children[0]

    def _find_bucket(self, node: _Node, key: Any) -> Optional[Set[OID]]:
        while True:
            position = self._position(node, key)
            if position < len(node.keys) and node.keys[position] == key:
                return node.buckets[position]
            if node.leaf:
                return None
            node = node.children[position]

    # Classic CLRS delete with pre-emptive borrow/merge on descent.
    def _delete_key(self, node: _Node, key: Any) -> None:
        t = self._t
        position = self._position(node, key)
        if position < len(node.keys) and node.keys[position] == key:
            if node.leaf:
                node.keys.pop(position)
                node.buckets.pop(position)
                return
            left, right = node.children[position], node.children[position + 1]
            if len(left.keys) >= t:
                pred_key, pred_bucket = self._max_entry(left)
                node.keys[position] = pred_key
                node.buckets[position] = pred_bucket
                self._delete_key(left, pred_key)
            elif len(right.keys) >= t:
                succ_key, succ_bucket = self._min_entry(right)
                node.keys[position] = succ_key
                node.buckets[position] = succ_bucket
                self._delete_key(right, succ_key)
            else:
                self._merge(node, position)
                self._delete_key(left, key)
            return
        if node.leaf:
            return  # key not present
        child = node.children[position]
        if len(child.keys) == t - 1:
            position = self._fill(node, position)
            child = node.children[position]
        self._delete_key(child, key)

    def _max_entry(self, node: _Node) -> Tuple[Any, Set[OID]]:
        while not node.leaf:
            node = node.children[-1]
        return node.keys[-1], node.buckets[-1]

    def _min_entry(self, node: _Node) -> Tuple[Any, Set[OID]]:
        while not node.leaf:
            node = node.children[0]
        return node.keys[0], node.buckets[0]

    def _merge(self, parent: _Node, index: int) -> None:
        left = parent.children[index]
        right = parent.children.pop(index + 1)
        left.keys.append(parent.keys.pop(index))
        left.buckets.append(parent.buckets.pop(index))
        left.keys.extend(right.keys)
        left.buckets.extend(right.buckets)
        left.children.extend(right.children)

    def _fill(self, parent: _Node, index: int) -> int:
        """Give child ``index`` >= t keys; returns the (possibly moved)
        child position after a merge."""
        t = self._t
        child = parent.children[index]
        if index > 0 and len(parent.children[index - 1].keys) >= t:
            left = parent.children[index - 1]
            child.keys.insert(0, parent.keys[index - 1])
            child.buckets.insert(0, parent.buckets[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            parent.buckets[index - 1] = left.buckets.pop()
            if not left.leaf:
                child.children.insert(0, left.children.pop())
            return index
        if index < len(parent.children) - 1 and \
                len(parent.children[index + 1].keys) >= t:
            right = parent.children[index + 1]
            child.keys.append(parent.keys[index])
            child.buckets.append(parent.buckets[index])
            parent.keys[index] = right.keys.pop(0)
            parent.buckets[index] = right.buckets.pop(0)
            if not right.leaf:
                child.children.append(right.children.pop(0))
            return index
        if index < len(parent.children) - 1:
            self._merge(parent, index)
            return index
        self._merge(parent, index - 1)
        return index - 1

    # -- invariants (used by property tests) ------------------------------
    def check_invariants(self) -> None:
        """Assert B-tree structural invariants; raises AssertionError."""
        def depth_of(node: _Node) -> int:
            keys = node.keys
            assert keys == sorted(keys), "node keys out of order"
            if node is not self._root:
                assert len(keys) >= self._t - 1, "underfull node"
            assert len(keys) <= 2 * self._t - 1, "overfull node"
            assert len(node.buckets) == len(keys)
            if node.leaf:
                return 1
            assert len(node.children) == len(keys) + 1
            depths = {depth_of(c) for c in node.children}
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop() + 1

        depth_of(self._root)
        ordered = [k for k, _ in self.items()]
        assert ordered == sorted(ordered), "in-order walk out of order"
        assert all(bucket for _, bucket in self.items()), "empty bucket retained"
