"""Access control.

The paper notes (§2) that security is "an issue discussed in database
research, but has never been really addressed in multimedia database
systems."  This module addresses it at the granularity the corporate
scenario needs: per-user, per-class permissions with an owner override,
enforced by a guarded database facade.

Permissions: ``READ`` (select/get), ``WRITE`` (insert/update/delete) and
``ADMIN`` (grant/revoke).  Grants are per (user, class); ADMIN on the
pseudo-class ``*`` makes a superuser.
"""

from __future__ import annotations

from enum import Flag, auto
from typing import Any, Dict, List, Optional, Tuple

from repro.db.database import Database
from repro.db.objects import DBObject, OID
from repro.db.query import Predicate
from repro.errors import DatabaseError


class Permission(Flag):
    READ = auto()
    WRITE = auto()
    ADMIN = auto()


class AccessDeniedError(DatabaseError):
    """The user lacks the permission the operation requires."""


ANY_CLASS = "*"


class AccessController:
    """Grant table: (user, class) -> permission flags."""

    def __init__(self) -> None:
        self._grants: Dict[Tuple[str, str], Permission] = {}

    def grant(self, user: str, class_name: str, permission: Permission,
              granted_by: Optional[str] = None) -> None:
        """Add permissions; ``granted_by`` (when given) must hold ADMIN."""
        if granted_by is not None and not self.holds(granted_by, class_name,
                                                     Permission.ADMIN):
            raise AccessDeniedError(
                f"user {granted_by!r} cannot grant on {class_name!r} "
                f"(no ADMIN permission)"
            )
        key = (user, class_name)
        self._grants[key] = self._grants.get(key, Permission(0)) | permission

    def revoke(self, user: str, class_name: str, permission: Permission,
               revoked_by: Optional[str] = None) -> None:
        """Remove permissions; ``revoked_by`` (when given) must hold ADMIN."""
        if revoked_by is not None and not self.holds(revoked_by, class_name,
                                                     Permission.ADMIN):
            raise AccessDeniedError(
                f"user {revoked_by!r} cannot revoke on {class_name!r}"
            )
        key = (user, class_name)
        current = self._grants.get(key, Permission(0))
        remaining = current & ~permission
        if remaining:
            self._grants[key] = remaining
        else:
            self._grants.pop(key, None)

    def holds(self, user: str, class_name: str, permission: Permission) -> bool:
        for key in ((user, class_name), (user, ANY_CLASS)):
            if permission & self._grants.get(key, Permission(0)):
                return True
        return False

    def require(self, user: str, class_name: str, permission: Permission) -> None:
        if not self.holds(user, class_name, permission):
            raise AccessDeniedError(
                f"user {user!r} lacks {permission.name} on class {class_name!r}"
            )

    def permissions_of(self, user: str) -> Dict[str, Permission]:
        return {
            class_name: perm
            for (grant_user, class_name), perm in self._grants.items()
            if grant_user == user
        }


class GuardedDatabase:
    """A per-user view of a database with access control enforced.

    Wraps the operations the session layer uses; everything else of the
    underlying database stays reachable via ``.db`` for administrators.
    """

    def __init__(self, db: Database, controller: AccessController,
                 user: str) -> None:
        self.db = db
        self.controller = controller
        self.user = user

    # -- reads -------------------------------------------------------------
    def select(self, class_name: str, predicate: Optional[Predicate] = None,
               include_subclasses: bool = True) -> List[OID]:
        self.controller.require(self.user, class_name, Permission.READ)
        return self.db.select(class_name, predicate, include_subclasses)

    def get(self, oid: OID) -> DBObject:
        self.controller.require(self.user, oid.class_name, Permission.READ)
        return self.db.get(oid)

    # -- writes ----------------------------------------------------------
    def insert(self, class_name: str, **attributes: Any) -> OID:
        self.controller.require(self.user, class_name, Permission.WRITE)
        return self.db.insert(class_name, **attributes)

    def update(self, oid: OID, **changes: Any) -> DBObject:
        self.controller.require(self.user, oid.class_name, Permission.WRITE)
        return self.db.update(oid, **changes)

    def delete(self, oid: OID) -> None:
        self.controller.require(self.user, oid.class_name, Permission.WRITE)
        self.db.delete(oid)

    def __repr__(self) -> str:
        return f"GuardedDatabase(user={self.user!r})"
