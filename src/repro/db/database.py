"""The database facade: schema + store + locks + indexes + versions.

Ties the substrate together and exposes the traditional-database surface
the paper requires of an AV database system (§3.1): schema definition,
transactions, queries returning references, index maintenance, versioning,
checkpoint/recovery.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.db.index import KeywordIndex, OrderedIndex
from repro.db.locks import LockManager
from repro.db.objects import DBObject, OID
from repro.db.query import Predicate, Q
from repro.db.schema import ClassDef, Schema
from repro.db.store import OP_DELETE, OP_INSERT, OP_UPDATE, ObjectStore, Op
from repro.db.transactions import Transaction
from repro.db.versions import VersionCatalog
from repro.errors import SchemaError
from repro.obs import Obs, attach


class Database:
    """An object database instance (optionally durable)."""

    def __init__(self, directory: Optional[str] = None,
                 paged: bool = False, pool_capacity: int = 128,
                 obs: Optional[Obs] = None) -> None:
        self.obs = attach(obs)
        self.schema = Schema()
        if paged:
            if directory is None:
                raise SchemaError("a paged store requires a directory")
            from repro.db.pagedstore import PagedObjectStore
            self._store = PagedObjectStore(directory, pool_capacity)
        else:
            self._store = ObjectStore(directory)
        # Ordered indexes are B-trees by default; the sorted-list
        # OrderedIndex stays available for comparison (see the index
        # ablation bench).
        from repro.db.btree import BTreeIndex
        self._index_factory = BTreeIndex
        self._locks = LockManager(obs=self.obs)
        self._tx_ids = itertools.count(1)
        # (class_name, attribute) -> index
        self._ordered: Dict[tuple, OrderedIndex] = {}
        self._keyword: Dict[tuple, KeywordIndex] = {}
        # name -> (class_name, index, key_of): derived-key indexes kept
        # in lockstep with commits (see attach_index).
        self._derived: Dict[str, tuple] = {}
        self.versions = VersionCatalog()
        self.stats = {"commits": 0, "aborts": 0, "index_scans": 0, "full_scans": 0}
        metrics = self.obs.metrics
        self._m_begins = metrics.counter("db.tx_begins")
        self._m_commits = metrics.counter("db.tx_commits")
        self._m_aborts = metrics.counter("db.tx_aborts")
        self._m_index_scans = metrics.counter("db.index_scans")
        self._m_full_scans = metrics.counter("db.full_scans")

    # -- schema ---------------------------------------------------------
    def define_class(self, class_def: ClassDef) -> ClassDef:
        """Register a class and create its declared indexes."""
        self.schema.define(class_def)
        for spec in class_def.attributes:
            if spec.indexed:
                self._ordered[(class_def.name, spec.name)] = self._index_factory(
                    class_def.name, spec.name
                )
            if spec.keyword_indexed:
                self._keyword[(class_def.name, spec.name)] = KeywordIndex(
                    class_def.name, spec.name
                )
        return class_def

    def attach_index(self, name: str, class_name: str, index: Any,
                     key_of) -> None:
        """Register a *derived-key* index maintained through commits.

        Unlike the per-attribute indexes declared in a :class:`ClassDef`,
        a derived index is keyed by ``key_of(obj)`` — any function of the
        whole object (e.g. the ``(value_id, track, start, end)`` interval
        key in ``repro.annotations``).  The index object must implement
        ``insert(key, oid)`` / ``remove(key, oid)`` / ``clear()``; a
        ``None`` key means "do not index this object".  Existing objects
        of the class are backfilled immediately; afterwards every commit
        keeps the index in lockstep via :meth:`_reindex`.
        """
        if name in self._derived:
            raise SchemaError(f"derived index {name!r} already attached")
        self._derived[name] = (class_name, index, key_of)
        if class_name in self.schema:
            classes = self.schema.subclasses_of(class_name)
            for oid in self._store.oids_of_class(classes):
                obj = self._store.get(oid)
                index.insert(key_of(obj), oid)

    def detach_index(self, name: str) -> None:
        """Drop a derived index registration (the index itself survives)."""
        self._derived.pop(name, None)

    # -- transactions ------------------------------------------------------
    def begin(self) -> Transaction:
        self._m_begins.inc()
        return Transaction(self, next(self._tx_ids))

    def _commit_transaction(self, tx: Transaction, ops: List[Op]) -> None:
        # Maintain indexes: need old snapshots before the store applies.
        index_moves = []
        for kind, arg in ops:
            if kind == OP_INSERT:
                index_moves.append((None, arg))
            elif kind == OP_UPDATE:
                index_moves.append((self._store.get(arg.oid), arg))
            elif kind == OP_DELETE:
                index_moves.append((self._store.get(arg), None))
        self._store.commit_ops(tx.tx_id, ops)
        for old, new in index_moves:
            self._reindex(old, new)
            if new is not None and old is not None:
                self.versions.record_update(new.oid, new.version)
        self.stats["commits"] += 1
        self._m_commits.inc()

    def _reindex(self, old: Optional[DBObject], new: Optional[DBObject]) -> None:
        oid = (old or new).oid
        class_name = oid.class_name
        if class_name not in self.schema:
            # Recovered objects whose class has not been redefined yet;
            # rebuild_indexes() after the definition will pick them up.
            return
        for (cls, attr), index in self._ordered.items():
            if not self.schema.is_subclass(class_name, cls):
                continue
            if old is not None:
                index.remove(old.get(attr), oid)
            if new is not None:
                index.insert(new.get(attr), oid)
        for (cls, attr), index in self._keyword.items():
            if not self.schema.is_subclass(class_name, cls):
                continue
            if old is not None:
                index.remove(old.get(attr), oid)
            if new is not None:
                index.insert(new.get(attr), oid)
        for cls, index, key_of in self._derived.values():
            if not self.schema.is_subclass(class_name, cls):
                continue
            if old is not None:
                index.remove(key_of(old), oid)
            if new is not None:
                index.insert(key_of(new), oid)

    # -- autocommit conveniences -----------------------------------------
    def insert(self, class_name: str, **attributes: Any) -> OID:
        with self.begin() as tx:
            oid = tx.insert(class_name, **attributes)
        return oid

    def update(self, oid: OID, **changes: Any) -> DBObject:
        with self.begin() as tx:
            snapshot = tx.update(oid, **changes)
        return snapshot

    def delete(self, oid: OID) -> None:
        with self.begin() as tx:
            tx.delete(oid)

    def get(self, oid: OID) -> DBObject:
        """Non-transactional read of the latest committed snapshot."""
        return self._store.get(oid)

    def exists(self, oid: OID) -> bool:
        return self._store.exists(oid)

    def __len__(self) -> int:
        return len(self._store)

    # -- queries --------------------------------------------------------
    def select(self, class_name: str, predicate: Optional[Predicate] = None,
               include_subclasses: bool = True) -> List[OID]:
        """``select <class> where <predicate>`` — returns references."""
        predicate = predicate if predicate is not None else Q.true()
        if class_name not in self.schema:
            raise SchemaError(f"unknown class {class_name!r}")
        classes = (
            self.schema.subclasses_of(class_name)
            if include_subclasses else [class_name]
        )
        results: List[OID] = []
        for cls in classes:
            ordered = {
                attr: idx for (c, attr), idx in self._ordered.items() if c == cls
            }
            keyword = {
                attr: idx for (c, attr), idx in self._keyword.items() if c == cls
            }
            plan = predicate.index_plan(ordered, keyword)
            if plan is not None:
                self.stats["index_scans"] += 1
                self._m_index_scans.inc()
                candidates = sorted(o for o in plan if o.class_name == cls)
            else:
                self.stats["full_scans"] += 1
                self._m_full_scans.inc()
                candidates = self._store.oids_of_class([cls])
            results.extend(
                oid for oid in candidates if predicate.matches(self._store.get(oid))
            )
        return sorted(results)

    def query(self, text: str) -> List[OID]:
        """Run a textual ``select <Class> where <expr>`` query (§4.3)."""
        from repro.db.parser import parse_query
        class_name, predicate = parse_query(text)
        return self.select(class_name, predicate)

    def select_one(self, class_name: str, predicate: Optional[Predicate] = None) -> OID:
        matches = self.select(class_name, predicate)
        if len(matches) != 1:
            raise SchemaError(
                f"select_one expected exactly 1 match, got {len(matches)}"
            )
        return matches[0]

    # -- durability ----------------------------------------------------------
    def checkpoint(self) -> None:
        self._store.checkpoint()

    def close(self) -> None:
        self._store.close()

    def rebuild_indexes(self) -> None:
        """Repopulate all indexes from the store (after recovery)."""
        for index in self._ordered.values():
            index.__init__(index.class_name, index.attribute)
        for index in self._keyword.values():
            index.__init__(index.class_name, index.attribute)
        for _, index, _ in self._derived.values():
            index.clear()
        for oid in self._store.all_oids():
            self._reindex(None, self._store.get(oid))

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
