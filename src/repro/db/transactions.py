"""Transactions: buffered writes under strict 2PL.

A transaction buffers its writes privately; reads see the transaction's
own uncommitted writes, other transactions never do (no dirty reads).
Locks are taken as operations execute (growing phase) and released only
at commit/abort (strict 2PL), after the commit record reaches the WAL.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.db.locks import LockMode
from repro.db.objects import DBObject, OID
from repro.db.store import OP_DELETE, OP_INSERT, OP_UPDATE, Op
from repro.errors import ObjectNotFoundError, TransactionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.database import Database


class TxState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work against the database."""

    def __init__(self, db: "Database", tx_id: int) -> None:
        self._db = db
        self.tx_id = tx_id
        self.state = TxState.ACTIVE
        # OID -> buffered new snapshot; None marks a buffered delete.
        self._writes: Dict[OID, Optional[DBObject]] = {}
        self._inserted: List[OID] = []

    # -- guards -------------------------------------------------------------
    def _require_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise TransactionError(
                f"transaction {self.tx_id} is {self.state.value}"
            )

    # -- operations ----------------------------------------------------------
    def read(self, oid: OID) -> DBObject:
        """Shared-locked read; sees this transaction's own writes."""
        self._require_active()
        if oid in self._writes:
            snapshot = self._writes[oid]
            if snapshot is None:
                raise ObjectNotFoundError(f"object {oid} deleted in this transaction")
            return snapshot
        self._db._locks.acquire(self.tx_id, oid, LockMode.SHARED)
        return self._db._store.get(oid)

    def lock(self, oid: OID, mode: LockMode = LockMode.SHARED) -> None:
        """Take an explicit lock without touching the object.

        Used for *logical* locks on OIDs that need not exist — e.g. the
        per-track sentinel OIDs that ``repro.annotations`` scans lock to
        keep wait-die writers out of an in-flight interval scan.  Strict
        2PL applies: the lock is held until commit/abort.
        """
        self._require_active()
        self._db._locks.acquire(self.tx_id, oid, mode)

    def insert(self, class_name: str, **attributes: Any) -> OID:
        """Create a new object (validated against the schema)."""
        self._require_active()
        self._db.schema.validate_object(class_name, attributes)
        oid = self._db._store.next_oid(class_name)
        self._db._locks.acquire(self.tx_id, oid, LockMode.EXCLUSIVE)
        self._writes[oid] = DBObject(oid, dict(attributes))
        self._inserted.append(oid)
        return oid

    def update(self, oid: OID, **changes: Any) -> DBObject:
        """Buffer an attribute update (exclusive lock)."""
        self._require_active()
        self._db._locks.acquire(self.tx_id, oid, LockMode.EXCLUSIVE)
        current = self._writes.get(oid)
        if current is None:
            if oid in self._writes:  # buffered delete
                raise ObjectNotFoundError(f"object {oid} deleted in this transaction")
            current = self._db._store.get(oid)
        merged = dict(current.attributes)
        merged.update(changes)
        self._db.schema.validate_object(oid.class_name, merged)
        snapshot = current.updated(changes)
        self._writes[oid] = snapshot
        return snapshot

    def delete(self, oid: OID) -> None:
        self._require_active()
        self._db._locks.acquire(self.tx_id, oid, LockMode.EXCLUSIVE)
        if oid not in self._writes and not self._db._store.exists(oid):
            raise ObjectNotFoundError(f"no object {oid}")
        self._writes[oid] = None

    # -- completion ----------------------------------------------------------
    def commit(self) -> None:
        """Flush buffered writes through the WAL, then release all locks."""
        self._require_active()
        ops: List[Op] = []
        inserted = set(self._inserted)
        for oid, snapshot in self._writes.items():
            if snapshot is None:
                if oid in inserted:
                    continue  # insert + delete in the same tx: net nothing
                ops.append((OP_DELETE, oid))
            elif oid in inserted:
                ops.append((OP_INSERT, snapshot))
            else:
                ops.append((OP_UPDATE, snapshot))
        try:
            self._db._commit_transaction(self, ops)
        except Exception:
            self.abort()
            raise
        self.state = TxState.COMMITTED
        self._db._locks.release_all(self.tx_id)

    def abort(self) -> None:
        if self.state is not TxState.ACTIVE:
            return
        self.state = TxState.ABORTED
        self._writes.clear()
        self._db._locks.release_all(self.tx_id)
        self._db.stats["aborts"] += 1
        self._db._m_aborts.inc()

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self.state is TxState.ACTIVE:
            self.commit()
        else:
            self.abort()

    def __repr__(self) -> str:
        return f"Transaction({self.tx_id}, {self.state.value}, {len(self._writes)} writes)"
