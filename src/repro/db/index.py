"""Ordered attribute indexes.

A sorted-key index per (class, attribute) pair, supporting equality and
range lookups.  Kept as sorted parallel arrays with bisect — the classic
in-memory ordered index; rebuilt incrementally on commit by the database
facade.  Keyword (containment) queries use a separate inverted index.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Dict, List, Optional, Set

from repro.db.objects import OID
from repro.errors import QueryError


class OrderedIndex:
    """Ordered (key -> set of OIDs) index for one attribute."""

    def __init__(self, class_name: str, attribute: str) -> None:
        self.class_name = class_name
        self.attribute = attribute
        self._keys: List[Any] = []
        self._buckets: Dict[Any, Set[OID]] = {}

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def insert(self, key: Any, oid: OID) -> None:
        if key is None:
            return  # unindexed absence
        if key not in self._buckets:
            bisect.insort(self._keys, key)
            self._buckets[key] = set()
        self._buckets[key].add(oid)

    def remove(self, key: Any, oid: OID) -> None:
        """Drop one (key, oid) posting, pruning empty buckets."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(oid)
        if not bucket:
            del self._buckets[key]
            position = bisect.bisect_left(self._keys, key)
            if position < len(self._keys) and self._keys[position] == key:
                del self._keys[position]

    # -- lookups -------------------------------------------------------------
    def eq(self, key: Any) -> Set[OID]:
        return set(self._buckets.get(key, ()))

    def range(self, lo: Optional[Any] = None, hi: Optional[Any] = None,
              include_lo: bool = True, include_hi: bool = True) -> Set[OID]:
        """OIDs with key in the given (optionally open) range."""
        if lo is not None and hi is not None and lo > hi:
            raise QueryError(f"range lower bound {lo!r} exceeds upper bound {hi!r}")
        start = 0
        if lo is not None:
            start = bisect.bisect_left(self._keys, lo) if include_lo \
                else bisect.bisect_right(self._keys, lo)
        end = len(self._keys)
        if hi is not None:
            end = bisect.bisect_right(self._keys, hi) if include_hi \
                else bisect.bisect_left(self._keys, hi)
        result: Set[OID] = set()
        for key in self._keys[start:end]:
            result |= self._buckets[key]
        return result

    def min_key(self) -> Any:
        return self._keys[0] if self._keys else None

    def max_key(self) -> Any:
        return self._keys[-1] if self._keys else None


class KeywordIndex:
    """Inverted index for content-based keyword retrieval (§2)."""

    def __init__(self, class_name: str, attribute: str) -> None:
        self.class_name = class_name
        self.attribute = attribute
        self._postings: Dict[str, Set[OID]] = defaultdict(set)

    @staticmethod
    def _terms(value: Any) -> List[str]:
        if value is None:
            return []
        if isinstance(value, str):
            return [t.lower() for t in value.split()]
        try:
            return [str(t).lower() for t in value]
        except TypeError:
            return [str(value).lower()]

    def insert(self, value: Any, oid: OID) -> None:
        for term in self._terms(value):
            self._postings[term].add(oid)

    def remove(self, value: Any, oid: OID) -> None:
        for term in self._terms(value):
            bucket = self._postings.get(term)
            if bucket is not None:
                bucket.discard(oid)
                if not bucket:
                    del self._postings[term]

    def lookup(self, term: str) -> Set[OID]:
        return set(self._postings.get(term.lower(), ()))

    def lookup_all(self, terms: List[str]) -> Set[OID]:
        """OIDs containing every term (AND semantics)."""
        if not terms:
            return set()
        result = self.lookup(terms[0])
        for term in terms[1:]:
            result &= self.lookup(term)
        return result
