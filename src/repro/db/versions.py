"""Version control for database objects.

"Finally, version control is also considered important" (§2) — ORION's
MIM investigated it for multimedia objects.  Every committed update adds a
node to the object's version graph; ``derive`` creates branches (e.g. an
edited cut of a newscast video derived from the broadcast master).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.db.objects import OID
from repro.errors import VersionError


@dataclass(frozen=True, slots=True)
class VersionNode:
    """One version of one object."""

    version: int
    parent: Optional[int]
    note: str = ""


class VersionGraph:
    """The version history of a single object."""

    def __init__(self, oid: OID) -> None:
        self.oid = oid
        self._nodes: Dict[int, VersionNode] = {1: VersionNode(1, None, "created")}

    def record(self, version: int, parent: int, note: str = "") -> VersionNode:
        """Append a version node under an existing parent."""
        if version in self._nodes:
            raise VersionError(f"{self.oid}: version {version} already recorded")
        if parent not in self._nodes:
            raise VersionError(f"{self.oid}: unknown parent version {parent}")
        node = VersionNode(version, parent, note)
        self._nodes[version] = node
        return node

    def node(self, version: int) -> VersionNode:
        try:
            return self._nodes[version]
        except KeyError:
            raise VersionError(f"{self.oid}: no version {version}") from None

    def __len__(self) -> int:
        return len(self._nodes)

    def lineage(self, version: int) -> List[int]:
        """[version, parent, grandparent, ..., 1]."""
        chain = []
        current: Optional[int] = version
        while current is not None:
            chain.append(current)
            current = self.node(current).parent
        return chain

    def children(self, version: int) -> List[int]:
        self.node(version)
        return sorted(v for v, n in self._nodes.items() if n.parent == version)

    def is_branch_point(self, version: int) -> bool:
        return len(self.children(version)) > 1

    def heads(self) -> List[int]:
        """Versions with no children (current tips of all branches)."""
        with_children = {n.parent for n in self._nodes.values() if n.parent is not None}
        return sorted(v for v in self._nodes if v not in with_children)

    def latest(self) -> int:
        return max(self._nodes)


@dataclass
class DerivationRecord:
    """Cross-object derivation (branching to a new OID)."""

    derived: OID
    source: OID
    source_version: int
    note: str = ""


class VersionCatalog:
    """All version graphs plus cross-object derivations."""

    def __init__(self) -> None:
        self._graphs: Dict[OID, VersionGraph] = {}
        self._derivations: List[DerivationRecord] = []

    def graph(self, oid: OID) -> VersionGraph:
        if oid not in self._graphs:
            self._graphs[oid] = VersionGraph(oid)
        return self._graphs[oid]

    def record_update(self, oid: OID, new_version: int, note: str = "") -> None:
        """Extend the linear history to ``new_version`` (backfilling gaps)."""
        graph = self.graph(oid)
        if new_version == 1:
            return  # creation is implicit
        parent = new_version - 1
        if parent not in graph._nodes:
            # Catch-up for recovered objects whose history predates us.
            for v in range(2, parent + 1):
                if v not in graph._nodes:
                    graph.record(v, v - 1, "(recovered)")
        graph.record(new_version, parent, note)

    def record_derivation(self, derived: OID, source: OID,
                          source_version: int, note: str = "") -> DerivationRecord:
        if derived == source:
            raise VersionError("an object cannot derive from itself")
        record = DerivationRecord(derived, source, source_version, note)
        self._derivations.append(record)
        return record

    def derivations_of(self, source: OID) -> List[DerivationRecord]:
        return [d for d in self._derivations if d.source == source]

    def derived_from(self, derived: OID) -> Optional[DerivationRecord]:
        for record in self._derivations:
            if record.derived == derived:
                return record
        return None
