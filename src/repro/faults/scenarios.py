"""Named fault scenarios for the ``python -m repro faults`` CLI.

Each scenario builds a workload, arms a seeded :class:`FaultPlan`
against it, runs to completion in virtual time, and returns a dict of
headline facts — delivered vs. negotiated QoS, deadline misses, and the
``faults.*`` counters.  Every scenario takes ``seed`` and ``recover``:
with ``recover=False`` the same fault schedule hits a workload with no
retry/degradation defenses, which is the baseline the recovery claims
are measured against (see ``bench_fault_recovery.py``).

Scenarios are deterministic: same seed, same facts, every run.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RetryPolicy, supervised, with_retries
from repro.sim import Delay, Simulator


def _counters(simulator: Simulator) -> Dict[str, int]:
    metrics = simulator.obs.metrics
    return {
        "faults_injected": int(metrics.counter("faults.injected").value),
        "faults_retries": int(metrics.counter("faults.retries").value),
    }


def disk_outage(seed: int = 0, recover: bool = True) -> Dict[str, object]:
    """Scheduler outages under periodic deadline reads.

    Four client streams read a frame every 40 ms through the disk
    scheduler; the plan stops the scheduler twice (failing queued
    requests — the PR's shutdown-deadlock fix is what makes this safe)
    and restarts it.  With recovery, reads retry with exponential
    backoff; without, a failed read is a lost frame.
    """
    from repro.storage.scheduler import DiskScheduler, Policy

    sim = Simulator()
    disk = DiskScheduler(sim, policy=Policy.CSCAN)
    disk.start()
    plan = (FaultPlan(seed=seed)
            .scheduler_outage("disk", at=0.30, duration=0.25)
            .scheduler_outage("disk", at=1.10, duration=0.20)
            .scheduler_slowdown("disk", at=1.6, duration=0.2, factor=4.0))
    injector = FaultInjector(sim, plan).arm(schedulers={"disk": disk})

    streams, frames = 4, 50
    period, slack, bits = 0.04, 0.03, 400_000
    policy = RetryPolicy(max_attempts=6, base_delay_s=0.05, factor=2.0)
    stats = {"delivered": 0, "lost": 0}

    def client(index: int):
        for i in range(frames):
            ideal = i * period
            if ideal > sim.now.seconds:
                yield Delay(ideal - sim.now.seconds)
            position = (index * 200 + i * 3) % disk.cylinders
            deadline = ideal + slack

            def attempt(p=position, d=deadline):
                return disk.read(p, bits, deadline=d)

            try:
                if recover:
                    yield from with_retries(sim, attempt, policy)
                else:
                    yield from attempt()
            except FaultError:
                stats["lost"] += 1
                continue
            stats["delivered"] += 1

    for index in range(streams):
        sim.spawn(client(index), name=f"stream-{index}")
    end = sim.run()
    negotiated = streams * frames
    return {
        "recover": recover,
        "negotiated_frames": negotiated,
        "delivered_frames": stats["delivered"],
        "lost_frames": stats["lost"],
        "delivered_qos": round(stats["delivered"] / negotiated, 4),
        "deadline_misses": disk.deadline_misses,
        "requests_failed": disk.requests_failed,
        "virtual_seconds": round(end.seconds, 4),
        **_counters(sim),
    }


def lossy_channel(seed: int = 0, recover: bool = True) -> Dict[str, object]:
    """Packet loss and jitter on a reserved channel.

    A paced sender ships 200 elements at 50 elements/s over a 2 Mb/s
    reservation; the plan drops 12% of transmissions and jitters the
    rest.  With recovery the link retransmits (late but delivered);
    without, a drop is a lost element.
    """
    from repro.net.channel import Channel

    sim = Simulator()
    channel = Channel(sim, capacity_bps=10_000_000.0, latency_s=0.001,
                      name="uplink")
    reservation = channel.reserve(2_000_000.0, label="stream")
    plan = FaultPlan(seed=seed).channel_loss(
        "uplink", rate=0.12, jitter_s=0.004,
        mode="retransmit" if recover else "error",
    )
    FaultInjector(sim, plan).arm(channels=[channel])

    elements, period, bits = 200, 0.02, 40_000
    on_time_slack = 0.010
    stats = {"delivered": 0, "lost": 0, "on_time": 0}

    def sender():
        for i in range(elements):
            ideal = i * period
            if ideal > sim.now.seconds:
                yield Delay(ideal - sim.now.seconds)
            try:
                yield from reservation.transmit(bits)
            except FaultError:
                stats["lost"] += 1
                continue
            stats["delivered"] += 1
            nominal = channel.latency_s + bits / reservation.bps
            if sim.now.seconds <= ideal + nominal + on_time_slack:
                stats["on_time"] += 1

    sim.spawn(sender(), name="sender")
    end = sim.run()
    return {
        "recover": recover,
        "negotiated_elements": elements,
        "delivered_elements": stats["delivered"],
        "lost_elements": stats["lost"],
        "delivered_qos": round(stats["delivered"] / elements, 4),
        "on_time_fraction": round(stats["on_time"] / elements, 4),
        "retransmits": channel.retransmits,
        "virtual_seconds": round(end.seconds, 4),
        **_counters(sim),
    }


def crash_recovery(seed: int = 0, recover: bool = True) -> Dict[str, object]:
    """Crash and hang faults against worker processes.

    Six checkpointing workers each grind through 40 work units; the plan
    crashes two of them and wedges one (a hang — the worker never
    completes and never errors).  With recovery each worker runs under a
    supervisor with a deadline: crashed workers restart from their
    checkpoint, the hung worker is detected by timeout and restarted.
    Without supervision the faulted workers simply never finish.
    """
    sim = Simulator()
    workers, units, unit_s = 6, 40, 0.01
    progress = [0] * workers

    def work(index: int):
        while progress[index] < units:
            yield Delay(unit_s)
            progress[index] += 1
        return progress[index]

    plan = (FaultPlan(seed=seed)
            .process_crash("worker-1", at=0.13)
            .process_crash("worker-4", at=0.27)
            .process_hang("worker-2", at=0.08))
    first = {f"worker-{i}": sim.spawn(work(i), name=f"worker-{i}")
             for i in range(workers)}
    injector = FaultInjector(sim, plan).arm(processes=first)

    finished = {"count": 0}
    if recover:
        def guard(index: int):
            result = yield from supervised(
                sim, lambda i=index: work(i), max_restarts=3,
                deadline_s=1.0, name=f"worker-{index}",
                first_process=first[f"worker-{index}"],
            )
            finished["count"] += 1
            return result

        for index in range(workers):
            sim.spawn(guard(index), name=f"guard-{index}")
    end = sim.run()
    if not recover:
        finished["count"] = sum(1 for p in first.values() if p.done and p.error is None)
    completed_units = sum(progress)
    return {
        "recover": recover,
        "workers": workers,
        "workers_finished": finished["count"],
        "negotiated_units": workers * units,
        "completed_units": completed_units,
        "delivered_qos": round(completed_units / (workers * units), 4),
        "restarts": int(sim.obs.metrics.counter("faults.restarts").value),
        "virtual_seconds": round(end.seconds, 4),
        **_counters(sim),
    }


def degraded_session(seed: int = 0, recover: bool = True) -> Dict[str, object]:
    """Graceful QoS degradation instead of admission failure (§3.3).

    Two video streams share one session channel sized for 1.5 streams.
    The second connection cannot reserve full bandwidth; with
    ``degrade=True`` the session renegotiates it down to the leftover
    capacity (delivered late but delivered), without it the stream fails
    outright.
    """
    from repro.db import AttributeSpec, ClassDef
    from repro.errors import AdmissionError
    from repro.storage import MagneticDisk
    from repro.synth import moving_scene
    from repro.values import VideoValue

    from repro.avdb import AVDatabaseSystem

    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.db.define_class(ClassDef("Clip", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))
    video_a = moving_scene(24, 96, 72, seed=seed + 1)
    video_b = moving_scene(24, 96, 72, seed=seed + 2)
    rate = video_a.data_rate_bps()
    for i, video in enumerate((video_a, video_b)):
        system.store_value(video, "disk0")
        system.db.insert("Clip", title=f"clip-{i}", video=video)

    session = system.open_session("degraded", channel_bps=rate * 1.5)
    degraded_failed = False
    with session:
        source_a = session.new_db_source(video_a)
        window_a = session.new_video_window(name="window-a")
        session.connect(source_a, window_a).start()
        source_b = session.new_db_source(video_b)
        window_b = session.new_video_window(name="window-b")
        try:
            stream_b = session.connect(source_b, window_b, degrade=recover)
            stream_b.start()
        except AdmissionError:
            degraded_failed = True
        end = session.run()
        frames_a = len(window_a.presented)
        frames_b = len(window_b.presented)
    metrics = system.metrics
    negotiated = 2 * 24
    return {
        "recover": recover,
        "admission_failed": degraded_failed,
        "frames_a": frames_a,
        "frames_b": frames_b,
        "negotiated_frames": negotiated,
        "delivered_qos": round((frames_a + frames_b) / negotiated, 4),
        "degraded_streams": session.degraded_streams,
        "degraded_sessions": int(metrics.counter("faults.degraded_sessions").value),
        "virtual_seconds": round(end.seconds, 4),
        "faults_injected": int(metrics.counter("faults.injected").value),
        "faults_retries": int(metrics.counter("faults.retries").value),
    }


SCENARIOS: Dict[str, Callable[..., Dict[str, object]]] = {
    "disk-outage": disk_outage,
    "lossy-channel": lossy_channel,
    "crash-recovery": crash_recovery,
    "degraded-session": degraded_session,
}
