"""Failure-recovery policies, in virtual time.

Three composable defenses against the faults :mod:`repro.faults.plan`
injects:

* :func:`with_retries` — retry a failed DES subroutine with exponential
  backoff (virtual-time delays; attempt counts in ``faults.retries``);
* :func:`with_deadline` — bound any operation with a kernel ``Timeout``,
  interrupting the guarded process when the deadline passes (the defense
  against hang faults);
* :func:`supervised` — restart a crashed/hung/timed-out process up to
  ``max_restarts`` times (``faults.restarts``).

All are generator subroutines for DES processes::

    request = yield from with_retries(sim, lambda: disk.read(pos, bits))
    result  = yield from supervised(sim, make_worker, deadline_s=2.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Tuple, Type

from repro.errors import DeadlineExceeded, FaultError, Interrupted
from repro.sim import Delay, Process, Simulator, Timeout, WaitProcess

#: what a recovery layer treats as transient by default: injected faults
#: (device/channel/scheduler) and guard-level timeouts.
TRANSIENT = (FaultError, DeadlineExceeded)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff: ``base * factor**attempt``, capped.

    ``max_attempts`` counts the first try, so ``max_attempts=4`` means
    one try plus up to three retries.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.01
    factor: float = 2.0
    max_delay_s: float = 10.0
    retry_on: Tuple[Type[BaseException], ...] = field(default=TRANSIENT)

    def delay_for(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        return min(self.base_delay_s * self.factor ** retry_index, self.max_delay_s)


def with_retries(simulator: Simulator,
                 make_attempt: Callable[[], Generator],
                 policy: RetryPolicy = RetryPolicy(),
                 label: Optional[str] = None) -> Generator:
    """DES subroutine: run ``make_attempt()`` until it succeeds or the
    policy is exhausted.

    ``make_attempt`` must build a *fresh* generator per call (a generator
    cannot be re-run).  On a retryable failure the subroutine sleeps the
    policy's backoff in virtual time and tries again; the final failure
    re-raises.  With ``label`` set, each retry (and a final exhaustion)
    is recorded as a decision event about that subject, tying recovery
    activity into the session's causal chain
    (:mod:`repro.obs.decisions`).
    """
    retries = simulator.obs.metrics.counter("faults.retries")
    decisions = simulator.obs.decisions
    attempt = 0
    while True:
        try:
            result = yield from make_attempt()
            return result
        except policy.retry_on as exc:
            attempt += 1
            if attempt >= policy.max_attempts:
                if label is not None and decisions.enabled:
                    decisions.emit("retries-exhausted", label,
                                   actor="recovery", attempts=attempt,
                                   error=type(exc).__name__)
                raise
            retries.inc()
            backoff = policy.delay_for(attempt - 1)
            if label is not None and decisions.enabled:
                decisions.emit("retry", label, actor="recovery",
                               attempt=attempt, error=type(exc).__name__,
                               backoff_s=backoff)
            yield Delay(backoff)


def with_deadline(simulator: Simulator, gen: Generator, seconds: float,
                  name: str = "guarded") -> Generator:
    """DES subroutine: run ``gen`` as a child process with a deadline.

    Returns the child's result; re-raises the child's error.  When the
    deadline passes first, the child is interrupted (so it cannot hold
    resources forever) and :class:`~repro.errors.DeadlineExceeded`
    propagates to the caller.
    """
    proc = simulator.spawn(gen, name=name)
    try:
        result = yield Timeout(proc, seconds)
    except DeadlineExceeded:
        proc.interrupt()
        decisions = simulator.obs.decisions
        if decisions.enabled:
            decisions.emit("deadline", name, actor="recovery",
                           seconds=seconds)
        raise
    return result


def supervised(simulator: Simulator,
               make_gen: Callable[[], Generator],
               max_restarts: int = 3,
               deadline_s: Optional[float] = None,
               backoff: RetryPolicy = RetryPolicy(),
               name: str = "supervised",
               first_process: Optional[Process] = None) -> Generator:
    """DES subroutine: run ``make_gen()`` as a process, restarting it when
    it crashes (``FaultError``/``Interrupted``), hangs past ``deadline_s``,
    or times out — up to ``max_restarts`` times, with backoff.

    Pass ``first_process`` to adopt an already-spawned process as the
    first attempt (useful when a fault injector must be armed against the
    process before the supervisor starts); restarts still come from
    ``make_gen()``.
    """
    restarts = simulator.obs.metrics.counter("faults.restarts")
    failures = 0
    while True:
        if failures == 0 and first_process is not None:
            proc = first_process
        else:
            attempt_name = f"{name}#{failures}" if failures else name
            proc = simulator.spawn(make_gen(), name=attempt_name)
        try:
            if deadline_s is not None:
                result = yield Timeout(proc, deadline_s)
            else:
                result = yield WaitProcess(proc)
            return result
        except DeadlineExceeded as exc:
            proc.interrupt()  # a hung attempt must not keep resources
            failure: BaseException = exc
        except (FaultError, Interrupted) as exc:
            failure = exc
        failures += 1
        if failures > max_restarts:
            raise failure
        restarts.inc()
        yield Delay(backoff.delay_for(failures - 1))


def fire_and_forget(result: Any = None) -> Generator:
    """A degenerate subroutine: immediately return ``result``.

    Useful as a stand-in attempt in tests and as the no-op branch of
    conditional recovery pipelines.
    """
    return result
    yield  # pragma: no cover - makes this a generator
