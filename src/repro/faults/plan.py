"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is a declarative schedule of faults against named
targets — storage devices, the disk scheduler, network channels, and
processes.  Plans are pure data: nothing happens until a
:class:`~repro.faults.injector.FaultInjector` arms the plan against live
components.  Because every time and parameter is fixed (either written
explicitly or drawn from ``random.Random(seed)`` at *plan-build* time),
the same plan replays the identical fault schedule on every run — which
is what lets ``bench_fault_recovery.py`` compare recovery policies under
byte-identical adversity.

Fault kinds
-----------
``device-outage``
    The device serves no transfers during ``[at, at + duration)``.  In
    ``wait`` mode a transfer that hits the window blocks until it ends;
    in ``error`` mode it raises :class:`~repro.errors.DeviceFaultError`.
``device-slowdown``
    Transfers starting inside the window take ``factor``× as long.
``scheduler-outage``
    ``DiskScheduler.stop()`` fires at ``at`` (failing queued requests)
    and, when ``duration`` > 0, ``start()`` fires at ``at + duration``.
``scheduler-slowdown``
    The scheduler's ``service_scale`` is ``factor`` during the window.
``channel-loss``
    Each transmission is dropped with probability ``rate`` (seeded,
    deterministic) and jittered by up to ``jitter_s``; ``retransmit``
    mode recovers at the link layer (costing wire time), ``error`` mode
    surfaces :class:`~repro.errors.ChannelFaultError`.
``process-crash``
    ``Process.interrupt(FaultError(...))`` at ``at``.
``process-hang``
    ``Process.abandon()`` at ``at`` — the process wedges forever.
``node-outage``
    ``StorageNode.kill()`` fires at ``at`` (the node's scheduler stops,
    failing queued requests; its replicas go dead) and, when
    ``duration`` > 0, ``restore()`` fires at ``at + duration``.
``edge-cache-outage``
    ``EdgeCacheNode.kill()`` fires at ``at`` (the edge's RAM cache dies
    with it; readers degrade to pass-through or re-attach to a surviving
    edge) and, when ``duration`` > 0, ``restore()`` brings the edge back
    cold at ``at + duration``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence

from repro.errors import SimulationError

KINDS = (
    "device-outage", "device-slowdown",
    "scheduler-outage", "scheduler-slowdown",
    "channel-loss",
    "process-crash", "process-hang",
    "node-outage",
    "edge-cache-outage",
)

#: kinds whose [at, at+duration) window takes a target *down*; two such
#: windows on the same target cannot disagree about when it comes back.
OUTAGE_KINDS = frozenset((
    "device-outage", "scheduler-outage", "node-outage", "edge-cache-outage",
))


@dataclass(frozen=True, slots=True)
class Fault:
    """One scheduled fault against one named target."""

    kind: str
    target: str
    at: float = 0.0
    duration: float = 0.0
    factor: float = 1.0      # slowdown multiplier
    rate: float = 0.0        # loss probability (channel-loss)
    jitter_s: float = 0.0    # max injected jitter per transmission
    mode: str = "wait"       # outage/loss handling: "wait"/"retransmit"/"error"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SimulationError(f"unknown fault kind {self.kind!r} (one of {KINDS})")
        if self.at < 0 or self.duration < 0:
            raise SimulationError(f"fault times must be >= 0 ({self})")
        if not 0.0 <= self.rate <= 0.95:
            raise SimulationError(
                f"loss rate must be in [0, 0.95], got {self.rate} "
                "(higher rates make expected retransmission counts explode)"
            )
        if self.factor < 1.0:
            raise SimulationError(f"slowdown factor must be >= 1, got {self.factor}")

    def describe(self) -> str:
        parts = [f"t={self.at:g}s {self.kind} on {self.target!r}"]
        if self.duration:
            parts.append(f"for {self.duration:g}s")
        if self.kind.endswith("slowdown"):
            parts.append(f"x{self.factor:g}")
        if self.kind == "channel-loss":
            parts.append(f"loss={self.rate:.0%} jitter<={self.jitter_s:g}s ({self.mode})")
        elif self.kind.endswith("outage"):
            parts.append(f"({self.mode})")
        return " ".join(parts)


@dataclass
class FaultPlan:
    """An ordered, seeded schedule of faults.

    The ``seed`` does double duty: it seeds :meth:`randomized` plan
    generation and the per-channel loss/jitter streams at arm time, so a
    plan is fully determined by ``(seed, faults)``.
    """

    seed: int = 0
    faults: List[Fault] = field(default_factory=list)

    # -- builders ----------------------------------------------------------
    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    def device_outage(self, target: str, at: float, duration: float,
                      mode: str = "wait") -> "FaultPlan":
        return self.add(Fault("device-outage", target, at, duration, mode=mode))

    def device_slowdown(self, target: str, at: float, duration: float,
                        factor: float) -> "FaultPlan":
        return self.add(Fault("device-slowdown", target, at, duration, factor=factor))

    def scheduler_outage(self, target: str, at: float,
                         duration: float = 0.0) -> "FaultPlan":
        """Stop the scheduler at ``at``; restart after ``duration`` (0 = never)."""
        return self.add(Fault("scheduler-outage", target, at, duration))

    def scheduler_slowdown(self, target: str, at: float, duration: float,
                           factor: float) -> "FaultPlan":
        return self.add(Fault("scheduler-slowdown", target, at, duration, factor=factor))

    def channel_loss(self, target: str, rate: float, jitter_s: float = 0.0,
                     mode: str = "retransmit") -> "FaultPlan":
        if mode not in ("retransmit", "error"):
            raise SimulationError(f"channel loss mode must be 'retransmit' or 'error', got {mode!r}")
        return self.add(Fault("channel-loss", target, rate=rate,
                              jitter_s=jitter_s, mode=mode))

    def node_outage(self, target: str, at: float,
                    duration: float = 0.0) -> "FaultPlan":
        """Kill a storage node at ``at``; restore after ``duration`` (0 = never)."""
        return self.add(Fault("node-outage", target, at, duration))

    def edge_cache_outage(self, target: str, at: float,
                          duration: float = 0.0) -> "FaultPlan":
        """Kill an edge cache at ``at``; restore after ``duration`` (0 = never)."""
        return self.add(Fault("edge-cache-outage", target, at, duration))

    def process_crash(self, target: str, at: float) -> "FaultPlan":
        return self.add(Fault("process-crash", target, at))

    def process_hang(self, target: str, at: float) -> "FaultPlan":
        return self.add(Fault("process-hang", target, at))

    # -- randomized generation ---------------------------------------------
    @classmethod
    def randomized(cls, seed: int, horizon_s: float,
                   devices: Sequence[str] = (),
                   schedulers: Sequence[str] = (),
                   channels: Sequence[str] = (),
                   processes: Sequence[str] = (),
                   faults_per_target: int = 2,
                   max_outage_s: float | None = None,
                   loss_rate: float = 0.05) -> "FaultPlan":
        """Draw a plan from ``Random(seed)`` — same arguments, same plan.

        Outage/slowdown windows land in ``[0.1, 0.9) * horizon`` so the
        workload is already running when they hit; each channel gets one
        persistent loss model.
        """
        if horizon_s <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon_s}")
        rng = random.Random(seed)
        plan = cls(seed=seed)
        max_outage = max_outage_s if max_outage_s is not None else horizon_s / 8
        for name in devices:
            for _ in range(faults_per_target):
                at = rng.uniform(0.1, 0.9) * horizon_s
                if rng.random() < 0.5:
                    plan.device_outage(name, at, rng.uniform(0.2, 1.0) * max_outage)
                else:
                    plan.device_slowdown(name, at, rng.uniform(0.2, 1.0) * max_outage,
                                         factor=rng.uniform(2.0, 6.0))
        for name in schedulers:
            for _ in range(faults_per_target):
                plan.scheduler_outage(name, rng.uniform(0.1, 0.9) * horizon_s,
                                      rng.uniform(0.2, 1.0) * max_outage)
        for name in channels:
            plan.channel_loss(name, rate=loss_rate,
                              jitter_s=rng.uniform(0.0, 0.002))
        for name in processes:
            plan.process_crash(name, rng.uniform(0.1, 0.9) * horizon_s)
        plan.sort()
        return plan

    # -- composition -------------------------------------------------------
    @classmethod
    def merge(cls, *plans: "FaultPlan", seed: int | None = None) -> "FaultPlan":
        """Combine plans into one deterministic, validated schedule.

        The merged plan's faults are the concatenation of every input's,
        sorted by ``(at, kind, target)``; exact duplicates collapse to
        one entry (two plans agreeing on the same fault is agreement,
        not contradiction).  ``seed`` defaults to the first plan's seed
        — per-channel loss/jitter streams are keyed by ``(seed,
        target)``, so merging never reshuffles an armed loss model.
        The result is :meth:`validate`-d; contradictory inputs raise
        :class:`~repro.errors.SimulationError` instead of producing a
        schedule whose arm-time behaviour depends on heap tie-breaks.
        """
        if not plans:
            raise SimulationError("FaultPlan.merge() needs at least one plan")
        merged_seed = plans[0].seed if seed is None else seed
        seen = set()
        faults: List[Fault] = []
        for plan in plans:
            for fault in plan.faults:
                if fault not in seen:
                    seen.add(fault)
                    faults.append(fault)
        return cls(seed=merged_seed, faults=faults).sort().validate()

    def validate(self) -> "FaultPlan":
        """Reject contradictory schedules; return self when coherent.

        Two outage windows on the same target must not overlap unless
        they are the *same* window: interleaved kill/restore pairs with
        conflicting restore times would leave the component's end state
        dependent on event-queue tie-breaks (e.g. outage A restores at
        t=2 while overlapping outage B says the target is down until
        t=3).  A ``duration`` of 0 means "never restored", which
        conflicts with any later outage of the same target.  A channel
        may carry at most one loss model (the injector enforces this at
        arm time; validating the plan surfaces it before a run is
        half-built).
        """
        windows: Dict[tuple, List[Fault]] = {}
        for fault in self.faults:
            if fault.kind in OUTAGE_KINDS:
                windows.setdefault((fault.kind, fault.target), []).append(fault)
        for (kind, target), group in sorted(windows.items()):
            group.sort(key=lambda f: f.at)
            for prev, cur in zip(group, group[1:]):
                prev_end = float("inf") if prev.duration == 0 \
                    else prev.at + prev.duration
                if cur.at < prev_end and (cur.at, cur.duration) != \
                        (prev.at, prev.duration):
                    raise SimulationError(
                        f"contradictory fault plan: overlapping {kind} "
                        f"windows on {target!r} with conflicting restore "
                        f"times ({prev.describe()} vs {cur.describe()})"
                    )
        loss_targets: Dict[str, Fault] = {}
        for fault in self.faults:
            if fault.kind != "channel-loss":
                continue
            prior = loss_targets.get(fault.target)
            if prior is not None and prior != fault:
                raise SimulationError(
                    f"contradictory fault plan: channel {fault.target!r} "
                    f"has two different loss models"
                )
            loss_targets[fault.target] = fault
        return self

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain data, stable field order — the chaos-search artifact."""
        return {
            "seed": self.seed,
            "faults": [
                {"kind": f.kind, "target": f.target, "at": f.at,
                 "duration": f.duration, "factor": f.factor,
                 "rate": f.rate, "jitter_s": f.jitter_s, "mode": f.mode}
                for f in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan emitted by :meth:`to_dict` (replay artifacts)."""
        return cls(seed=int(doc["seed"]),
                   faults=[Fault(**fields) for fields in doc["faults"]])

    # -- inspection --------------------------------------------------------
    def sort(self) -> "FaultPlan":
        self.faults.sort(key=lambda f: (f.at, f.kind, f.target))
        return self

    def for_target(self, target: str) -> List[Fault]:
        return [f for f in self.faults if f.target == target]

    def scaled(self, time_factor: float) -> "FaultPlan":
        """A copy with every time stretched by ``time_factor``."""
        return FaultPlan(self.seed, [
            replace(f, at=f.at * time_factor, duration=f.duration * time_factor)
            for f in self.faults
        ])

    def describe(self) -> str:
        if not self.faults:
            return f"fault plan (seed {self.seed}): empty"
        lines = [f"fault plan (seed {self.seed}, {len(self.faults)} faults):"]
        lines += [f"  {fault.describe()}" for fault in self.faults]
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)
