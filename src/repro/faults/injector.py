"""Arming fault plans against live components.

A :class:`FaultInjector` takes a :class:`~repro.faults.plan.FaultPlan`
and wires it into a running system:

* device faults attach a :class:`DeviceFaults` window model to
  ``Device.faults`` (consulted by every reservation transfer);
* channel faults attach a seeded :class:`ChannelFaults` loss/jitter model
  to ``Channel.faults`` (consulted by every transmit/serialize);
* scheduler faults schedule ``stop()``/``start()``/``service_scale``
  flips on the simulator's own queue;
* process faults schedule kernel-level ``interrupt()``/``abandon()``.

Every fault that actually *bites* (a transfer hits a window, a
transmission is dropped, a stop fires) increments ``faults.injected``
and is appended to ``injector.log`` — ``(virtual time, kind, target)``
tuples — which the determinism tests compare across runs.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.avtime import WorldTime
from repro.errors import DeviceFaultError, FaultError, SimulationError
from repro.faults.plan import Fault, FaultPlan
from repro.sim import Process, Simulator

InjectionRecord = Tuple[float, str, str]


class DeviceFaults:
    """Outage/slowdown windows for one storage device (or scheduler)."""

    __slots__ = ("windows", "_record")

    def __init__(self, record) -> None:
        self.windows: List[Fault] = []
        self._record = record

    def add(self, fault: Fault) -> None:
        self.windows.append(fault)

    def adjust(self, now: float, duration: float, target: str) -> Tuple[float, float]:
        """Transform a transfer starting at ``now``: (extra wait, new duration)."""
        wait_s = 0.0
        for window in self.windows:
            if not window.at <= now < window.at + window.duration:
                continue
            self._record(window.kind, target)
            if window.kind == "device-outage":
                if window.mode == "error":
                    raise DeviceFaultError(
                        f"device {target!r} is down until t={window.at + window.duration:g}s"
                    )
                wait_s = max(wait_s, window.at + window.duration - now)
            else:  # slowdown
                duration *= window.factor
        return wait_s, duration


class ChannelFaults:
    """A seeded loss/jitter model for one channel.

    The random stream is seeded from ``(plan seed, channel name)``, so
    the drop/jitter sequence is a pure function of the plan and the
    (deterministic) order of transmissions.
    """

    __slots__ = ("rate", "jitter_s", "mode", "_rng", "_record")

    def __init__(self, fault: Fault, seed: int, record) -> None:
        self.rate = fault.rate
        self.jitter_s = fault.jitter_s
        self.mode = fault.mode
        self._rng = random.Random(f"{seed}:channel:{fault.target}")
        self._record = record

    def sample_drop(self, target: str) -> bool:
        if self.rate <= 0.0:
            return False
        dropped = self._rng.random() < self.rate
        if dropped:
            self._record("channel-loss", target)
        return dropped

    def sample_jitter(self) -> float:
        if self.jitter_s <= 0.0:
            return 0.0
        return self._rng.random() * self.jitter_s


class FaultInjector:
    """Arms a :class:`FaultPlan` against live components and keeps score."""

    def __init__(self, simulator: Simulator, plan: FaultPlan) -> None:
        self.simulator = simulator
        self.plan = plan
        self.log: List[InjectionRecord] = []
        metrics = simulator.obs.metrics
        self._m_injected = metrics.counter("faults.injected")
        self._armed = False

    # -- bookkeeping -------------------------------------------------------
    def record(self, kind: str, target: str) -> None:
        self._m_injected.inc()
        self.log.append((self.simulator._now, kind, target))
        tracer = self.simulator.obs.tracer
        if tracer.enabled:
            tracer.instant(f"fault:{kind}", "faults", target=target)

    @property
    def injected(self) -> int:
        return len(self.log)

    # -- arming ------------------------------------------------------------
    def arm(self,
            devices: Union[Mapping[str, object], Iterable[object]] = (),
            schedulers: Mapping[str, object] = (),
            channels: Union[Mapping[str, object], Iterable[object]] = (),
            processes: Mapping[str, Process] = (),
            nodes: Union[Mapping[str, object], Iterable[object]] = (),
            edges: Union[Mapping[str, object], Iterable[object]] = ()) -> "FaultInjector":
        """Attach the plan's faults to the given named components.

        ``devices``, ``channels``, ``nodes`` and ``edges`` accept either
        mappings or iterables of objects carrying ``.name``;
        ``schedulers`` and ``processes`` are mappings (schedulers have
        no name of their own).  Unmatched plan targets raise — a
        silently unarmed fault would make a "survived the fault plan"
        claim meaningless.
        """
        if self._armed:
            raise SimulationError("fault plan already armed")
        self._armed = True
        device_map = _by_name(devices)
        channel_map = _by_name(channels)
        scheduler_map = dict(schedulers)
        process_map = dict(processes)
        node_map = _by_name(nodes)
        edge_map = _by_name(edges)
        for fault in self.plan:
            if fault.kind == "node-outage":
                self._arm_node(fault, _lookup(node_map, fault, "node"))
            elif fault.kind == "edge-cache-outage":
                # Same kill/restore surface as a storage node, but its
                # own namespace: a plan cannot quietly hit an edge when
                # it named a node (or vice versa).
                self._arm_node(fault, _lookup(edge_map, fault, "edge"))
            elif fault.kind.startswith("device-"):
                self._arm_device(fault, _lookup(device_map, fault, "device"))
            elif fault.kind.startswith("scheduler-"):
                self._arm_scheduler(fault, _lookup(scheduler_map, fault, "scheduler"))
            elif fault.kind == "channel-loss":
                self._arm_channel(fault, _lookup(channel_map, fault, "channel"))
            elif fault.kind == "process-crash":
                self._arm_crash(fault, _lookup(process_map, fault, "process"))
            elif fault.kind == "process-hang":
                self._arm_hang(fault, _lookup(process_map, fault, "process"))
        return self

    def _arm_node(self, fault: Fault, node) -> None:
        sim = self.simulator

        def kill() -> None:
            if node.live:
                self.record(fault.kind, fault.target)
                node.kill()
        sim.schedule_at(WorldTime(fault.at), kill)
        if fault.duration > 0:
            def restore() -> None:
                if not node.live:
                    node.restore()
            sim.schedule_at(WorldTime(fault.at + fault.duration), restore)

    def _arm_device(self, fault: Fault, device) -> None:
        if device.faults is None:
            device.faults = DeviceFaults(self.record)
        device.faults.add(fault)

    def _arm_scheduler(self, fault: Fault, scheduler) -> None:
        sim = self.simulator
        if fault.kind == "scheduler-outage":
            def stop() -> None:
                self.record(fault.kind, fault.target)
                scheduler.stop()
            sim.schedule_at(WorldTime(fault.at), stop)
            if fault.duration > 0:
                def restart() -> None:
                    if not scheduler.running:
                        scheduler.start()
                sim.schedule_at(WorldTime(fault.at + fault.duration), restart)
        else:  # scheduler-slowdown
            def slow() -> None:
                self.record(fault.kind, fault.target)
                scheduler.service_scale *= fault.factor
            def recover() -> None:
                scheduler.service_scale /= fault.factor
            sim.schedule_at(WorldTime(fault.at), slow)
            sim.schedule_at(WorldTime(fault.at + fault.duration), recover)

    def _arm_channel(self, fault: Fault, channel) -> None:
        if channel.faults is not None:
            raise SimulationError(
                f"channel {fault.target!r} already has a loss model armed"
            )
        channel.faults = ChannelFaults(fault, self.plan.seed, self.record)

    def _arm_crash(self, fault: Fault, process: Process) -> None:
        def crash() -> None:
            if not process.done:
                self.record(fault.kind, fault.target)
                process.interrupt(FaultError(
                    f"injected crash of {fault.target!r} at t={fault.at:g}s"
                ))
        self.simulator.schedule_at(WorldTime(fault.at), crash)

    def _arm_hang(self, fault: Fault, process: Process) -> None:
        def hang() -> None:
            if not process.done:
                self.record(fault.kind, fault.target)
                process.abandon()
        self.simulator.schedule_at(WorldTime(fault.at), hang)


def _by_name(components) -> Dict[str, object]:
    if isinstance(components, Mapping):
        return dict(components)
    return {component.name: component for component in components}


def _lookup(mapping: Mapping[str, object], fault: Fault, kind: str):
    try:
        return mapping[fault.target]
    except KeyError:
        raise SimulationError(
            f"fault plan names {kind} {fault.target!r} but no such "
            f"{kind} was passed to arm() (have: {sorted(mapping) or 'none'})"
        ) from None
