"""Deterministic fault injection and failure recovery.

Continuous media make failure *visible*: a crashed disk scheduler or a
lossy channel does not just slow a query down, it tears frames out of a
presentation the user is watching.  This package stress-tests the rest
of the repro under seeded, replayable adversity:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a declarative seeded
  schedule of device/scheduler/channel/process faults;
* :mod:`repro.faults.injector` — :class:`FaultInjector` arms a plan
  against live components and logs every injection;
* :mod:`repro.faults.recovery` — retry with exponential backoff,
  deadline guards, and process supervision, all in virtual time;
* :mod:`repro.faults.scenarios` — named demos for
  ``python -m repro faults <scenario>``.

Everything is deterministic: the same seed replays the identical fault
schedule, so recovery policies are compared under byte-identical
adversity (see ``benchmarks/bench_fault_recovery.py``).
"""

from repro.faults.injector import ChannelFaults, DeviceFaults, FaultInjector
from repro.faults.plan import KINDS, Fault, FaultPlan
from repro.faults.recovery import (
    TRANSIENT,
    RetryPolicy,
    fire_and_forget,
    supervised,
    with_deadline,
    with_retries,
)
from repro.faults.scenarios import SCENARIOS

__all__ = [
    "KINDS",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "DeviceFaults",
    "ChannelFaults",
    "TRANSIENT",
    "RetryPolicy",
    "with_retries",
    "with_deadline",
    "supervised",
    "fire_and_forget",
    "SCENARIOS",
]
