"""Query-by-example retrieval over the AV database.

Follows REDI's architecture: features live in a :class:`FeatureIndex`
separate from the media store; a query ranks by feature distance and
returns *references*, never media.  ``SimilarityRetrieval`` glues the
index to a :class:`~repro.db.Database`: ``ingest`` extracts and indexes a
stored object's video attribute, ``query_by_example`` ranks everything
indexed against an example frame or clip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.db.database import Database
from repro.db.objects import OID
from repro.errors import DatabaseError, DataModelError
from repro.retrieval.features import FeatureVector, clip_features, frame_features
from repro.values.video import VideoValue


@dataclass(frozen=True, slots=True)
class Match:
    """One ranked retrieval result."""

    ref: OID
    attribute: str
    distance: float


class FeatureIndex:
    """Extracted features, stored apart from the originals (REDI split)."""

    def __init__(self) -> None:
        self._features: Dict[Tuple[OID, str], FeatureVector] = {}

    def insert(self, ref: OID, attribute: str, features: FeatureVector) -> None:
        key = (ref, attribute)
        if key in self._features:
            raise DatabaseError(f"features for {ref}.{attribute} already indexed")
        self._features[key] = features

    def remove(self, ref: OID, attribute: str) -> None:
        try:
            del self._features[(ref, attribute)]
        except KeyError:
            raise DatabaseError(f"{ref}.{attribute} is not indexed") from None

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, key: Tuple[OID, str]) -> bool:
        return key in self._features

    def rank(self, query: FeatureVector, limit: Optional[int] = None) -> List[Match]:
        """All indexed entries ordered by ascending feature distance."""
        matches = [
            Match(ref, attribute, query.distance(features))
            for (ref, attribute), features in self._features.items()
        ]
        matches.sort(key=lambda m: (m.distance, m.ref, m.attribute))
        return matches[:limit] if limit is not None else matches


Example = Union[np.ndarray, VideoValue, FeatureVector]


class SimilarityRetrieval:
    """Query-by-example over video attributes of database objects."""

    def __init__(self, db: Database, sample_every: int = 5) -> None:
        self.db = db
        self.index = FeatureIndex()
        self.sample_every = sample_every

    def ingest(self, ref: OID, attribute: str) -> FeatureVector:
        """Extract and index features for one stored video attribute."""
        obj = self.db.get(ref)
        value = obj.get(attribute)
        if not isinstance(value, VideoValue):
            raise DataModelError(
                f"{ref}.{attribute} is not a video value "
                f"({type(value).__name__})"
            )
        features = clip_features(value, self.sample_every)
        self.index.insert(ref, attribute, features)
        return features

    def forget(self, ref: OID, attribute: str) -> None:
        self.index.remove(ref, attribute)

    def _example_features(self, example: Example) -> FeatureVector:
        if isinstance(example, FeatureVector):
            return example
        if isinstance(example, VideoValue):
            return clip_features(example, self.sample_every)
        return frame_features(np.asarray(example))

    def query_by_example(self, example: Example,
                         limit: int = 5) -> List[Match]:
        """Rank indexed clips by similarity to the example.

        The example may be a raw frame array, a video value, or
        pre-extracted features.  Only the feature index is touched — the
        original media stays in the store, per REDI's design.
        """
        if limit < 1:
            raise DatabaseError(f"limit must be >= 1, got {limit}")
        return self.index.rank(self._example_features(example), limit)
