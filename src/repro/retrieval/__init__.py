"""Content-based retrieval for images and video (paper §2).

The paper surveys REDI's Query-by-Pictorial-Example: "image structures
and features are extracted from images and stored in a relational
database, while the original images are kept in a different image store.
The query interface (Query-by-Pictorial-Example) first tries to answer a
query using the extracted information to avoid retrieval and processing
of the originals."  It also lists content-based retrieval — "problematic
for image and audio, but at least discussed in several lists of
requirements" — among the functions an AV database should offer.

This package implements that design for the AV database:

* :func:`frame_features` — compact luminance-histogram + moment features
  extracted per frame;
* :class:`FeatureIndex` — extracted features stored *separately from the
  originals* (REDI's split), searched first;
* :class:`SimilarityRetrieval` — query-by-example over stored video
  values: rank clips by feature distance to an example frame or clip,
  touching original media only for the returned references.
"""

from repro.retrieval.features import FeatureVector, clip_features, frame_features
from repro.retrieval.qbe import FeatureIndex, Match, SimilarityRetrieval

__all__ = [
    "FeatureVector",
    "frame_features",
    "clip_features",
    "FeatureIndex",
    "SimilarityRetrieval",
    "Match",
]
