"""Frame feature extraction.

Features are deliberately 1990-simple (REDI-era): a 16-bin normalized
luminance histogram plus mean/variance/edge-energy moments.  They are
compact (20 floats), cheap to extract, invariant to frame size, and good
enough to separate synthetic scenes — which is what similarity retrieval
needs from its feature substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import DataModelError
from repro.values.video import VideoValue

HISTOGRAM_BINS = 16


@dataclass(frozen=True)
class FeatureVector:
    """Compact per-frame (or per-clip average) feature description."""

    histogram: Tuple[float, ...]  # 16 normalized luminance bins
    mean: float                   # mean luminance, [0, 1]
    variance: float               # luminance variance, [0, 1]
    edge_energy: float            # mean absolute gradient, [0, 1]

    def __post_init__(self) -> None:
        if len(self.histogram) != HISTOGRAM_BINS:
            raise DataModelError(
                f"feature histogram needs {HISTOGRAM_BINS} bins, "
                f"got {len(self.histogram)}"
            )

    def as_array(self) -> np.ndarray:
        return np.array(
            list(self.histogram) + [self.mean, self.variance, self.edge_energy]
        )

    def distance(self, other: "FeatureVector") -> float:
        """L1 histogram distance plus weighted moment differences.

        0.0 for identical features; ~2.0+ for maximally different frames.
        """
        a, b = np.array(self.histogram), np.array(other.histogram)
        histogram_term = float(np.abs(a - b).sum())
        moment_term = (
            abs(self.mean - other.mean)
            + abs(self.variance - other.variance)
            + abs(self.edge_energy - other.edge_energy)
        )
        return histogram_term + moment_term


def _luminance(frame: np.ndarray) -> np.ndarray:
    if frame.ndim == 3:
        return frame.mean(axis=2)
    return frame.astype(np.float64)


def frame_features(frame: np.ndarray) -> FeatureVector:
    """Extract features from one frame array."""
    luma = _luminance(np.asarray(frame))
    if luma.size == 0:
        raise DataModelError("cannot extract features from an empty frame")
    histogram, _ = np.histogram(luma, bins=HISTOGRAM_BINS, range=(0, 256))
    normalized = histogram / luma.size
    gx = np.abs(np.diff(luma, axis=1)).mean() if luma.shape[1] > 1 else 0.0
    gy = np.abs(np.diff(luma, axis=0)).mean() if luma.shape[0] > 1 else 0.0
    return FeatureVector(
        histogram=tuple(float(x) for x in normalized),
        mean=float(luma.mean() / 255.0),
        variance=float(luma.var() / (255.0 ** 2)),
        edge_energy=float((gx + gy) / (2 * 255.0)),
    )


def clip_features(value: VideoValue, sample_every: int = 5) -> FeatureVector:
    """Average features over a sampled subset of a clip's frames.

    Sampling every ``sample_every``-th frame keeps extraction cheap for
    long clips (REDI's avoid-processing-the-originals goal applies at
    ingest too).
    """
    if sample_every < 1:
        raise DataModelError(f"sample interval must be >= 1, got {sample_every}")
    indices = range(0, value.num_frames, sample_every)
    vectors = [frame_features(value.frame(i)).as_array() for i in indices]
    mean = np.mean(vectors, axis=0)
    return FeatureVector(
        histogram=tuple(float(x) for x in mean[:HISTOGRAM_BINS]),
        mean=float(mean[HISTOGRAM_BINS]),
        variance=float(mean[HISTOGRAM_BINS + 1]),
        edge_energy=float(mean[HISTOGRAM_BINS + 2]),
    )
