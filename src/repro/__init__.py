"""repro — an AV database system.

A complete implementation of the framework of Gibbs, Breiteneder &
Tsichritzis, *Audio/Video Databases: An Object-Oriented Approach*
(ICDE 1993): the AV data model (``MediaValue`` and friends), temporal
composition (``tcomp`` / timelines), flow composition (activities, ports,
composites, activity graphs), and an AV database system with an
asynchronous stream-based client interface — plus every substrate the
framework needs (DES kernel, codecs, storage/placement, network channels,
an OODBMS, a 3D renderer, hypermedia links, non-linear editing).

Quickstart::

    from repro import AVDatabaseSystem, MagneticDisk, Q
    from repro.synth import moving_scene

    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    video = moving_scene(30)
    system.store_value(video, "disk0")
    session = system.open_session()
    source = session.new_db_source(video)
    window = session.new_video_window("320x240x8@30")
    stream = session.connect(source, window)
    stream.start()
    session.run()
    assert len(window.presented) == 30
"""

from repro.activities import (
    ActivityGraph,
    ActivityKind,
    ActivityState,
    CompositeActivity,
    Connection,
    Direction,
    Location,
    MediaActivity,
    MultiSink,
    MultiSource,
    Port,
)
from repro.avdb import AVDatabaseSystem
from repro.avtime import AllenRelation, Interval, ObjectTime, Timecode, TimeMapping, WorldTime
from repro.db import AttributeSpec, ClassDef, Database, DBObject, OID, Q
from repro.errors import AVDBError
from repro.net import Channel
from repro.quality import AudioQuality, VideoQuality, parse_quality
from repro.session import Session, Stream
from repro.sim import Simulator
from repro.storage import JukeboxDevice, MagneticDisk, PlacementManager, WritableCD
from repro.temporal import TCompSpec, TemporalComposite, Timeline, TrackSpec
from repro.values import (
    AudioValue,
    ImageValue,
    MediaValue,
    MIDIValue,
    RawAudioValue,
    RawVideoValue,
    TextStreamValue,
    VideoValue,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # system
    "AVDatabaseSystem", "Session", "Stream", "Simulator", "AVDBError",
    # data model
    "MediaValue", "VideoValue", "RawVideoValue", "AudioValue", "RawAudioValue",
    "TextStreamValue", "ImageValue", "MIDIValue",
    # time
    "WorldTime", "ObjectTime", "Timecode", "Interval", "AllenRelation", "TimeMapping",
    # temporal composition
    "TCompSpec", "TrackSpec", "Timeline", "TemporalComposite",
    # flow composition
    "MediaActivity", "ActivityGraph", "ActivityKind", "ActivityState",
    "CompositeActivity", "MultiSource", "MultiSink",
    "Port", "Direction", "Connection", "Location",
    # quality
    "VideoQuality", "AudioQuality", "parse_quality",
    # database
    "Database", "ClassDef", "AttributeSpec", "Q", "OID", "DBObject",
    # substrates
    "Channel", "MagneticDisk", "WritableCD", "JukeboxDevice", "PlacementManager",
]
