"""Scenario II — the virtual-world AV database (paper §3.2, Fig. 4).

"An AV database supporting 'virtual worlds' is provided as a network
service. ... Users interactively move through the virtual world by
querying the database.  As the user changes position, a new visualization
of the world is rendered ..., resulting in a sequence of images (an AV
value) being sent to the user."

Runs a museum walkthrough with video projected on a wall, in both Fig. 4
configurations (client-side and database-side rendering), prints the
network-traffic comparison, and writes a few rendered frames as PGM
images under examples/output/.

Run:  python examples/virtual_world.py
"""

import pathlib

from repro.codecs import MPEGCodec
from repro.render import (
    Rasterizer,
    client_side_rendering,
    database_side_rendering,
    walk_path,
)
from repro.synth import moving_scene

OUTPUT = pathlib.Path(__file__).parent / "output"
STEPS = 24


def save_pgm(path: pathlib.Path, frame) -> None:
    """Write a grayscale frame as a binary PGM (viewable anywhere)."""
    height, width = frame.shape
    with open(path, "wb") as f:
        f.write(f"P5\n{width} {height}\n255\n".encode())
        f.write(frame.tobytes())


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)
    # The "video material projected on a wall": an MPEG-stored clip.
    wall_video = MPEGCodec(80).encode_value(moving_scene(STEPS, 64, 48))
    path = walk_path(STEPS, start=(0.0, 1.6, -7.0), end=(0.0, 1.6, -2.0))
    rasterizer = Rasterizer(width=160, height=120)

    print("walking through the virtual museum "
          f"({STEPS} steps, {rasterizer.width}x{rasterizer.height} view)...")
    fat = client_side_rendering(wall_video, path, rasterizer=rasterizer)
    thin = database_side_rendering(wall_video, path, rasterizer=rasterizer)

    print(f"\n{'configuration':<42}{'frames':>8}{'net KiB':>10}{'KiB/frame':>11}")
    for result in (fat, thin):
        print(f"{result.configuration:<42}{result.frames_presented:>8}"
              f"{result.network_bits / 8 / 1024:>10.1f}"
              f"{result.network_bytes_per_frame / 1024:>11.2f}")
    winner = "client-side" if fat.network_bits < thin.network_bits else "database-side"
    print(f"\nwith compressed wall video, {winner} rendering minimizes traffic")
    print("(swap in a raw video and a small viewport and the trade-off flips;")
    print(" see benchmarks/bench_fig4_virtual_world.py for the full sweep)")

    for step in (0, STEPS // 2, STEPS - 1):
        target = OUTPUT / f"walkthrough_{step:02d}.pgm"
        save_pgm(target, fat.frames[step])
        print(f"wrote {target}")


if __name__ == "__main__":
    main()
