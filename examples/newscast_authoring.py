"""Authoring and playing a temporally composed Newscast (paper §4.1, Fig. 1).

Builds the paper's Newscast.clip — a video track, two language audio
tracks and a subtitle track — positions the tracks on a timeline with the
exact Fig. 1 shape (video on [t0, t1), the other tracks on [t1, t2)),
prints the timeline diagram, compresses the video track for storage, and
plays the whole composite back with injected latency jitter, with and
without resynchronization, reporting the measured inter-track skew.

Run:  python examples/newscast_authoring.py
"""

from repro import AVDatabaseSystem, AttributeSpec, ClassDef, MagneticDisk, Q, WorldTime
from repro.activities.library import Speaker, SubtitleWindow, VideoWindow
from repro.codecs import JPEGCodec
from repro.streams.sync import RandomWalkJitter
from repro.synth import NEWSCAST_CLIP_SPEC, moving_scene, subtitle_track, tone
from repro.temporal import TemporalComposite


def author_clip() -> TemporalComposite:
    """Author the Fig. 1 composite: video first, then audio + subtitles."""
    t0, t1, t2 = 0.0, 1.0, 3.0
    video = moving_scene(num_frames=int((t1 - t0) * 30), width=64, height=48)
    english = tone(t2 - t1, 440.0).translate(WorldTime(t1))
    french = tone(t2 - t1, 330.0).translate(WorldTime(t1))
    subtitles = subtitle_track(
        ["Good evening.", "Top story tonight.", "That's all."],
        rate=3.0 / (t2 - t1),
    ).translate(WorldTime(t1))
    return TemporalComposite(NEWSCAST_CLIP_SPEC, {
        "videoTrack": video,
        "englishTrack": english,
        "frenchTrack": french,
        "subtitleTrack": subtitles,
    })


def play(system, clip, jitter_step, resync_interval):
    session = system.open_session()
    source = system.make_multisource(
        clip, name=None,
        jitter_factory=lambda track: RandomWalkJitter(
            step=jitter_step, bias=2.5, seed=sum(map(ord, track)) % 997),
        resync_interval=resync_interval,
    )
    session._activities.append(source)
    sink = session.new_multi_sink()
    sink.install(VideoWindow(system.simulator, keep_payloads=False),
                 track="videoTrack")
    sink.install(Speaker(system.simulator, keep_payloads=False),
                 track="englishTrack")
    sink.install(Speaker(system.simulator, keep_payloads=False),
                 track="frenchTrack")
    sink.install(SubtitleWindow(system.simulator), track="subtitleTrack")
    stream = session.connect(source, sink)
    stream.start()
    session.run()
    return source.max_skew()


def main() -> None:
    clip = author_clip()
    clip.validate_alignment()
    print("Fig. 1 — the authored Newscast.clip timeline:\n")
    print(clip.timeline.render_ascii(width=50))
    print(f"\ncomposite duration: {clip.duration.seconds:.1f}s; "
          f"tracks active at t=2.0s: {clip.active_tracks(WorldTime(2.0))}")

    # Compress the video track for storage (the DB keeps the composite).
    compressed = JPEGCodec(80).encode_value(clip.value("videoTrack"))
    print(f"video track stored as {compressed.media_type.name}: "
          f"{compressed.compression_ratio():.1f}x compression")

    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.db.define_class(ClassDef("Newscast", attributes=[
        AttributeSpec("title", str, indexed=True),
    ], tcomps=[NEWSCAST_CLIP_SPEC]))
    system.db.insert("Newscast", title="Evening News", clip=clip)
    found = system.db.select("Newscast", Q.eq("title", "Evening News"))
    print(f"stored and queried back: {found}")

    print("\nsynchronized playback with injected jitter "
          "(random-walk latency, 4 ms steps):")
    for resync in (None, 10):
        skew = play(system, clip, jitter_step=0.004, resync_interval=resync)
        label = "no resynchronization " if resync is None \
            else f"resync every {resync} elems"
        print(f"  {label}: max inter-track skew = {skew * 1000:7.2f} ms")


if __name__ == "__main__":
    main()
