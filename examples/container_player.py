"""Muxing and playing a track-based container file.

The paper's conclusion names its next step: "We are exploring this issue
by modelling a particular AV format in detail."  This example *is* that
exercise: author a Newscast composite, serialize it to a container file
(atoms: FTYP / MOOV / MDAT, media interleaved by presentation time),
then play it back two ways —

1. parse the container back into a composite and check fidelity;
2. stream it with the :class:`ContainerDemuxer`: one sequential pass
   over the bytes drives a synchronized four-track presentation, which
   is exactly why real formats interleave.

Run:  python examples/container_player.py
"""

import pathlib

from repro.activities import ActivityGraph
from repro.activities.library import Speaker, SubtitleWindow, VideoWindow
from repro.codecs import JPEGCodec
from repro.container import ContainerDemuxer, read_composite, write_composite
from repro.sim import Simulator
from repro.synth import NEWSCAST_CLIP_SPEC, newscast_clip
from repro.temporal import TemporalComposite

OUTPUT = pathlib.Path(__file__).parent / "output"


def author() -> TemporalComposite:
    clip = newscast_clip(video_frames=30, audio_seconds=1.0)
    # Store the video track compressed inside the container.
    compressed = JPEGCodec(80).encode_value(clip.value("videoTrack"))
    values = {name: clip.value(name) for name in clip.track_names}
    values["videoTrack"] = compressed
    return TemporalComposite(NEWSCAST_CLIP_SPEC, values)


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)
    clip = author()
    data = write_composite(clip)
    path = OUTPUT / "newscast.avdb"
    path.write_bytes(data)
    video = clip.value("videoTrack")
    print(f"muxed 4 tracks into {path} ({len(data):,} bytes; video stored "
          f"as {video.media_type.name}, {video.compression_ratio():.1f}x)")

    # 1. Parse back and verify fidelity.
    restored = read_composite(path.read_bytes())
    assert restored.value("subtitleTrack").texts() == \
        clip.value("subtitleTrack").texts()
    assert restored.value("videoTrack").chunks == video.chunks
    print("demux-to-values: tracks parse back bit-exact")

    # 2. Stream it: one sequential scan, four synchronized sinks.
    sim = Simulator()
    demuxer = ContainerDemuxer(sim, path.read_bytes(), name="player")
    graph = ActivityGraph(sim)
    graph.add(demuxer)
    from repro.activities.library import VideoDecoder
    decoder = graph.add(VideoDecoder(sim, video.codec, video.width,
                                     video.height, video.depth))
    window = graph.add(VideoWindow(sim, name="screen", keep_payloads=False))
    english = graph.add(Speaker(sim, name="english", keep_payloads=False))
    french = graph.add(Speaker(sim, name="french", keep_payloads=False))
    subtitles = graph.add(SubtitleWindow(sim, name="subtitles"))
    graph.connect(demuxer.port("videoTrack"), decoder.port("video_in"))
    graph.connect(decoder.port("video_out"), window.port("video_in"))
    graph.connect(demuxer.port("englishTrack"), english.port("audio_in"))
    graph.connect(demuxer.port("frenchTrack"), french.port("audio_in"))
    graph.connect(demuxer.port("subtitleTrack"), subtitles.port("text_in"))
    end = graph.run_to_completion()
    print(f"streamed playback: {window.elements_consumed} frames, "
          f"{english.elements_consumed} audio blocks, "
          f"{len(subtitles.texts())} subtitles in {end.seconds:.2f}s "
          f"of virtual time (clip duration {clip.duration.seconds:.2f}s)")
    print(f"video presentation jitter: {window.log.jitter() * 1000:.2f} ms")


if __name__ == "__main__":
    main()
