"""A newsroom's day against the AV database — the extension features.

Builds on Scenario I with the capabilities the paper's survey section
wishes for but 1993 systems lacked:

1. per-class access control (the "security ... never really addressed"
   gap of §2) for producer / editor / viewer roles;
2. live capture recorded through an MPEG encoder into the archive;
3. textual queries in the paper's own ``select ... where`` syntax;
4. REDI-style query-by-example over a feature index ("avoid retrieval
   and processing of the originals");
5. striped placement to stream a hot clip no single disk could sustain.

Run:  python examples/newsroom_workflow.py
"""

from repro import AVDatabaseSystem, AttributeSpec, ClassDef, MagneticDisk
from repro.activities import ActivityGraph
from repro.activities.library import VideoReader, VideoWindow
from repro.activities.live import LiveCamera
from repro.codecs import MPEGCodec
from repro.db.access import AccessController, AccessDeniedError, GuardedDatabase, Permission
from repro.retrieval import SimilarityRetrieval
from repro.storage.striping import StripingManager
from repro.synth import flat_video, moving_scene, noise_video
from repro.values import VideoValue


def main() -> None:
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "archive-0"))
    system.add_storage(MagneticDisk(system.simulator, "archive-1"))
    system.db.define_class(ClassDef("Footage", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("kind", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))

    # -- 1. roles ----------------------------------------------------------
    control = AccessController()
    control.grant("chief", "*", Permission.READ | Permission.WRITE | Permission.ADMIN)
    control.grant("producer", "Footage", Permission.READ | Permission.WRITE,
                  granted_by="chief")
    control.grant("intern", "Footage", Permission.READ, granted_by="chief")
    producer_db = GuardedDatabase(system.db, control, "producer")
    intern_db = GuardedDatabase(system.db, control, "intern")
    try:
        intern_db.insert("Footage", title="forged")
    except AccessDeniedError as error:
        print(f"access control works: {error}")

    # -- 2. live capture into the archive -------------------------------
    session = system.open_session("studio-floor")
    camera = session.new_activity(LiveCamera(
        system.simulator, width=64, height=48, rate=30.0, max_elements=24,
    ))
    recording = session.record(camera, codec=MPEGCodec(80, gop=6),
                               geometry=(64, 48, 8))
    recording.start()
    session.run()
    oid, captured = recording.store("Footage", "video", device="archive-0",
                                    title="studio feed", kind="live")
    print(f"recorded {captured.num_frames} frames from the studio camera "
          f"as {captured.media_type.name} -> {oid}")

    # -- 3. archive some library footage, query textually -----------------
    retrieval = SimilarityRetrieval(system.db, sample_every=3)
    retrieval.ingest(oid, "video")
    library = {
        "weather map": flat_video(18, 64, 48, level=70),
        "stadium crowd": noise_video(18, 64, 48, seed=4),
        "city traffic": moving_scene(18, 64, 48, seed=9),
    }
    for title, video in library.items():
        system.store_value(video, "archive-1")
        ref = producer_db.insert("Footage", title=title, kind="stock",
                                 video=video)
        retrieval.ingest(ref, "video")
    hits = system.db.query('select Footage where kind = "stock"')
    print(f"textual query found {len(hits)} stock clips")

    # -- 4. query by example ----------------------------------------------
    example = moving_scene(1, 64, 48, seed=10).frame(0)  # looks like traffic
    matches = retrieval.query_by_example(example, limit=2)
    best = system.db.get(matches[0].ref)
    print(f"query-by-example: best match is {best.title!r} "
          f"(distance {matches[0].distance:.3f})")

    # -- 5. striping a hot clip across both archive disks ------------------
    hot = moving_scene(30, 128, 96)  # too fast for either disk alone?
    rate = hot.data_rate_bps()
    slow_disks = [
        MagneticDisk(system.simulator, f"slow-{i}", bandwidth_bps=rate * 0.7)
        for i in range(2)
    ]
    for disk in slow_disks:
        system.placement.add_device(disk)
    striping = StripingManager(system.placement)
    striping.place_striped(hot, ["slow-0", "slow-1"])
    print(f"hot clip needs {rate / 1e6:.1f} Mb/s; each slow disk offers "
          f"{slow_disks[0].bandwidth_bps / 1e6:.1f} Mb/s -> striped across both")
    reservation = striping.reserve(hot, readahead=1.3)
    graph = ActivityGraph(system.simulator, "hot-playback")
    reader = graph.add(VideoReader(system.simulator, name="hot-reader"))
    reader.bind(hot)
    reader.io_stream = reservation
    window = graph.add(VideoWindow(system.simulator, name="hot-window",
                                   keep_payloads=False))
    graph.connect(reader.port("video_out"), window.port("video_in"))
    graph.run_to_completion()
    print(f"striped playback presented {window.elements_consumed} frames; "
          f"disk shares: "
          + ", ".join(f"{d.name}={d.total_bits_read // 8:,}B" for d in slow_disks))


if __name__ == "__main__":
    main()
