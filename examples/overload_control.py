"""Admission control on a shared trunk: admit, degrade, shed.

The paper makes resource allocation client-visible — "this statement
would fail if insufficient network bandwidth were available" (§4.3).
This example puts an :class:`AdmissionController` in front of that
decision so three competing sessions on one under-provisioned trunk get
three different answers instead of first-come-first-served exceptions:

1. the first stream is admitted at its full rate;
2. the second declares a degradation floor and is admitted at the
   leftover bandwidth (the session records the renegotiated QoS);
3. the third is background work past the utilization high-watermark
   and is shed outright.

Afterwards the sessions close and the trunk's reservation ledger reads
zero — nothing leaks. For the full multi-client overload harness
(Poisson arrivals, preemption, circuit breakers) see
``python -m repro overload`` and EXPERIMENTS.md Exp. R2.

Run:  python examples/overload_control.py
"""

from repro import AVDatabaseSystem, AttributeSpec, ClassDef, MagneticDisk, Q, VideoValue
from repro.admission import Priority
from repro.errors import AdmissionError
from repro.net import Channel
from repro.synth import moving_scene


def main() -> None:
    system = AVDatabaseSystem()
    video = moving_scene(num_frames=15, width=64, height=48)
    rate = video.data_rate_bps()
    system.add_storage(
        MagneticDisk(system.simulator, "disk0", bandwidth_bps=rate * 10)
    )
    system.db.define_class(ClassDef("Clip", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))
    system.store_value(video, "disk0")
    system.db.insert("Clip", title="shared", video=video)

    # One trunk sized for 1.5 streams, shared by every session below.
    trunk = Channel(system.simulator, rate * 1.5, latency_s=0.001,
                    name="trunk")
    system.enable_admission(trunk)
    clip = Q.eq("title", "shared")

    # 1. Full-rate admission while capacity lasts.
    first = system.open_session("first", channel=trunk)
    ref = first.select_one("Clip", clip)
    first.connect(first.new_db_source((ref, "video")),
                  first.new_video_window(name="w1")).start()
    print(f"first:  admitted at full rate ({rate / 1e6:.1f} Mb/s)")

    # 2. The leftover half-stream is below nominal, but the client
    #    declared it would rather degrade than fail.
    second = system.open_session("second", channel=trunk)
    second.connect(second.new_db_source((ref, "video")),
                   second.new_video_window(name="w2"),
                   degrade=True, min_degraded_fraction=0.25).start()
    print(f"second: degraded admission "
          f"({second.degraded_streams} renegotiated stream)")

    # 3. Background work past the high-watermark is shed, not queued.
    third = system.open_session("third", channel=trunk)
    try:
        third.connect(third.new_db_source((ref, "video")),
                      third.new_video_window(name="w3"),
                      priority=Priority.BACKGROUND, degrade=True)
    except AdmissionError as error:
        print(f"third:  shed ({error})")

    system.run()
    for session in (first, second, third):
        session.close()

    metrics = system.metrics
    print(f"admission.admitted = "
          f"{metrics.counter('admission.admitted').value}, "
          f"degraded = {metrics.counter('admission.degraded').value}, "
          f"shed = {metrics.counter('admission.shed').value}")
    print(f"trunk reserved after close: {trunk.reserved_bps:.0f} bps")
    assert trunk.reserved_bps == 0


if __name__ == "__main__":
    main()
