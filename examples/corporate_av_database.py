"""Scenario I — the corporate AV database (paper §3.2).

"A professional in-house production group prepares product announcements
and other promotional videos.  Important project presentations ... are
also recorded and edited.  Various public broadcasts are captured and
archived.  The entire video collection is managed by an AV database
system.  The video material is accessible through a hypermedia interface
... Users modify the database, either through the hypermedia interface or
other specialized applications such as workstation-based video editors."

This example exercises that whole workflow end to end:

1. schema definition with a tcomp (the Newscast class);
2. archiving captured broadcasts under transactions;
3. hypermedia links from project documents into the video collection;
4. non-linear editing of a promotional video (EDL) and a derivation
   record connecting the cut to its master;
5. a synchronized composite playback session;
6. durability: checkpoint, 'crash', recovery.

Run:  python examples/corporate_av_database.py
"""

import shutil
import tempfile

from repro import AVDatabaseSystem, AttributeSpec, ClassDef, Database, MagneticDisk, Q
from repro.activities.library import Speaker, SubtitleWindow, VideoWindow
from repro.avtime import WorldTime
from repro.codecs import MPEGCodec
from repro.editing import EditDecisionList
from repro.hypermedia import Anchor, HypermediaBase
from repro.synth import NEWSCAST_CLIP_SPEC, newscast_clip
from repro.values import VideoValue


def define_schema(db) -> None:
    db.define_class(ClassDef("Document", attributes=[
        AttributeSpec("name", str, indexed=True),
        AttributeSpec("body", str),
    ]))
    db.define_class(ClassDef("Newscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("broadcastSource", str),
        AttributeSpec("keywords", list, keyword_indexed=True),
        AttributeSpec("whenBroadcast", str, indexed=True),
    ], tcomps=[NEWSCAST_CLIP_SPEC]))
    db.define_class(ClassDef("PromoVideo", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
        AttributeSpec("status", str),
    ]))


def archive_broadcasts(system) -> list:
    """Capture three nightly broadcasts in one transaction each."""
    oids = []
    for day in ("1992-11-01", "1992-11-02", "1992-11-03"):
        clip = newscast_clip(video_frames=20, audio_seconds=0.7,
                             seed=sum(map(ord, day)) % 100)
        for track in clip.track_names:
            system.store_value(clip.value(track))
        with system.db.begin() as tx:
            oid = tx.insert("Newscast", title="Evening News",
                            broadcastSource="Channel 4",
                            keywords=["news", "evening", day],
                            whenBroadcast=day, clip=clip)
        oids.append(oid)
    return oids


def main() -> None:
    directory = tempfile.mkdtemp(prefix="corporate-avdb-")
    try:
        system = AVDatabaseSystem(database=Database(directory))
        system.add_storage(MagneticDisk(system.simulator, "archive-disk"))
        system.add_storage(MagneticDisk(system.simulator, "production-disk"))
        define_schema(system.db)

        # -- archive captured broadcasts -------------------------------
        broadcasts = archive_broadcasts(system)
        print(f"archived {len(broadcasts)} broadcasts")
        hits = system.db.select("Newscast", Q.contains("keywords", "news"))
        print(f"keyword query 'news' -> {len(hits)} newscasts")

        # -- production: edit a promo from the first broadcast ------------
        master_clip = system.db.get(broadcasts[0]).clip.value("videoTrack")
        edl = EditDecisionList()
        edl.append(master_clip, 2, 10)   # the good take
        edl.append(master_clip, 14, 20)  # the closing shot
        promo = edl.render()
        encoded_promo = MPEGCodec(80).encode_value(promo)
        system.store_value(encoded_promo, "production-disk")
        promo_oid = system.db.insert("PromoVideo", title="Product Announcement",
                                     video=encoded_promo, status="rough-cut")
        system.db.versions.record_derivation(promo_oid, broadcasts[0], 1,
                                             "promo cut from broadcast master")
        print(f"promo rendered: {promo.num_frames} frames, stored as "
              f"{encoded_promo.media_type.name} "
              f"({encoded_promo.compression_ratio():.1f}x compression)")

        # -- hypermedia: link the project plan to the footage -------------
        hypermedia = HypermediaBase(system.db)
        plan = system.db.insert("Document", name="Launch Plan",
                                body="The announcement builds on the "
                                     "Nov 1 evening broadcast.")
        hypermedia.link(plan, Anchor("Nov 1 evening broadcast"),
                        broadcasts[0], media_path="clip.videoTrack",
                        cue=WorldTime(0.1))
        hypermedia.link(plan, Anchor("the announcement"), promo_oid,
                        media_path="video")
        print(f"linked document {plan} to the archive "
              f"({len(hypermedia.links_from(plan))} links)")

        # -- a user follows a link and watches, synchronized --------------
        session = system.open_session("hypermedia-browser")
        link = hypermedia.follow(plan, "Nov 1 evening broadcast")
        source = system.make_multisource(session.fetch(link.target).clip)
        source.cue(link.cue)
        sink = session.new_multi_sink()
        sink.install(VideoWindow(system.simulator, name="viewer",
                                 keep_payloads=False), track="videoTrack")
        sink.install(Speaker(system.simulator, name="speaker",
                             keep_payloads=False), track="englishTrack")
        sink.install(Speaker(system.simulator, name="speaker-fr",
                             keep_payloads=False), track="frenchTrack")
        sink.install(SubtitleWindow(system.simulator, name="captions"),
                     track="subtitleTrack")
        stream = session.connect(source, sink)
        stream.start()
        session.run()
        viewer = sink.components["viewer"]
        print(f"playback from link cue {link.cue.seconds:.1f}s: "
              f"{viewer.elements_consumed} frames, "
              f"max sync skew {source.max_skew() * 1000:.2f} ms")

        # -- durability: checkpoint, 'crash', recover ----------------------
        system.db.checkpoint()
        system.db.update(promo_oid, status="approved")
        system.db.close()  # the 'crash' boundary: nothing flushed beyond WAL

        recovered = Database(directory)
        define_schema(recovered)
        HypermediaBase(recovered)  # re-register the link class
        recovered.rebuild_indexes()
        promo_after = recovered.get(promo_oid)
        print(f"after recovery: promo status = {promo_after.status!r}, "
              f"{len(recovered)} objects restored "
              f"({recovered._store.recovered_records} WAL records replayed)")
        recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
