"""Non-linear video editing against the AV database (paper §3.3).

The workstation-based video editor of Scenario I: assemble a program
from archived footage with an edit decision list, apply a cross-dissolve,
and mix two clips — demonstrating the data-placement interaction the
paper analyzes: mixing two values on one saturated device forces a
time-consuming copy, while split placement mixes interactively.

Run:  python examples/video_editing.py
"""

from repro.editing import EditDecisionList, Editor, cut, dissolve
from repro.sim import Simulator
from repro.storage import MagneticDisk, PlacementManager
from repro.synth import flat_video, moving_scene


def build_program():
    """Cut and re-assemble footage with an EDL, then add a dissolve."""
    footage = moving_scene(num_frames=60, width=64, height=48, seed=3)
    b_roll = flat_video(num_frames=30, width=64, height=48, level=90)

    # Frame-accurate cut: keep the middle of the take.
    _, keeper = cut(footage, 10)
    print(f"cut footage at frame 10 -> keeper has {keeper.num_frames} frames")

    edl = EditDecisionList()
    edl.append(keeper, 0, 20)
    edl.append(b_roll, 0, 10)
    edl.append(keeper, 30, 50)
    print(f"EDL: {len(edl)} segments, {edl.total_frames()} frames, "
          f"{edl.duration().seconds:.2f}s")
    edl.move(1, 2)  # re-order instantly: non-linear editing
    program = edl.render()

    with_transition = dissolve(program, b_roll, transition_frames=8)
    print(f"program rendered: {program.num_frames} frames; with dissolve: "
          f"{with_transition.num_frames} frames")
    return program


def demonstrate_placement():
    """The §3.3 video-mixing example, both placements."""
    print("\nmixing two clips (the §3.3 data-placement example):")
    for split in (False, True):
        sim = Simulator()
        manager = PlacementManager(sim)
        a = moving_scene(30, 64, 48, seed=1)
        b = moving_scene(30, 64, 48, seed=2)
        rate = a.data_rate_bps()
        manager.add_device(MagneticDisk(sim, "editing-disk",
                                        bandwidth_bps=rate * 1.5))
        manager.add_device(MagneticDisk(sim, "spare-disk",
                                        bandwidth_bps=rate * 4))
        manager.place(a, "editing-disk")
        manager.place(b, "spare-disk" if split else "editing-disk")
        editor = Editor(manager)
        label = "split devices" if split else "same device  "
        interactive = editor.can_mix_interactively(a, b)
        proc = sim.spawn(editor.mix(a, b))
        outcome = sim.run_until_complete(proc)
        print(f"  {label}: interactive={str(interactive):<5} "
              f"copied={str(outcome.copied):<5} "
              f"start delay={outcome.start_delay_seconds:6.3f}s")


def main() -> None:
    build_program()
    demonstrate_placement()


if __name__ == "__main__":
    main()
