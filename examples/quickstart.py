"""Quickstart: store a video in an AV database and play it back.

Covers the core loop of the framework in ~40 lines: create a system with
a storage device, store a value (client-visible placement), open a client
session, query by attribute, build the Fig. 3 source -> window stream
across the database/application channel, and run it in virtual time.

Run:  python examples/quickstart.py
"""

from repro import AVDatabaseSystem, AttributeSpec, ClassDef, MagneticDisk, Q, VideoValue
from repro.activities import EVENT_LAST_FRAME
from repro.synth import moving_scene


def main() -> None:
    # 1. An AV database system with one storage device.
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))

    # 2. A schema with a video-valued attribute, and one stored object.
    system.db.define_class(ClassDef("Clip", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))
    video = moving_scene(num_frames=30, width=64, height=48)
    system.store_value(video, "disk0")  # data placement is client-visible
    system.db.insert("Clip", title="demo reel", video=video)

    # 3. A client session: query (returns references), wire the stream.
    session = system.open_session("quickstart-app")
    clip_ref = session.select_one("Clip", Q.eq("title", "demo reel"))
    print(f"query returned a reference: {clip_ref}")

    source = session.new_db_source((clip_ref, "video"))
    window = session.new_video_window("320x240x8@30")
    stream = session.connect(source, window)

    # 4. Asynchronous notification, then start and run.
    source.catch(EVENT_LAST_FRAME,
                 lambda activity, event, frame:
                 print(f"last frame ({frame}) produced at "
                       f"{system.simulator.now.seconds:.3f}s"))
    stream.start()
    end = session.run()

    print(f"presented {len(window.presented)} frames "
          f"in {end.seconds:.3f}s of virtual time")
    print(f"transferred {stream.bits_transferred / 8 / 1024:.1f} KiB "
          f"over {session.channel.name}")
    print(f"mean presentation latency: {window.log.mean_latency() * 1000:.2f} ms")


if __name__ == "__main__":
    main()
