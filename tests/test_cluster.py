"""Scale-out cluster tier: hashing, placement, failover, repair, rebalance."""

from collections import Counter as TallyCounter

import pytest

from repro.admission.controller import Priority, QoSContract
from repro.cluster import (
    ClusterPlacementManager,
    StorageNode,
    hashing,
)
from repro.cluster.scenarios import Blob, read_storm
from repro.errors import ClusterError, OutOfSpaceError, PlacementError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs import scoped
from repro.sim import Delay


def make_cluster(sim, nodes, replication=2, repair_cap=12_000_000.0,
                 **node_kwargs):
    cluster = ClusterPlacementManager(sim, replication=replication,
                                      repair_bps_cap=repair_cap)
    for i in range(nodes):
        cluster.add_node(StorageNode(sim, f"node-{i}", **node_kwargs))
    return cluster


class TestRendezvousHashing:
    def test_stable_and_distinct(self):
        nodes = [f"n{i}" for i in range(5)]
        for key in ("a", "b", "shard#0", "shard#1"):
            picked = hashing.top(key, nodes, 2)
            assert picked == hashing.top(key, nodes, 2)
            assert len(set(picked)) == 2
            assert hashing.rank(key, nodes)[:2] == picked

    def test_balance_across_keys(self):
        nodes = [f"n{i}" for i in range(5)]
        tally = TallyCounter(
            name for i in range(200)
            for name in hashing.top(f"key-{i}", nodes, 2)
        )
        assert set(tally) == set(nodes)  # every node carries load
        assert min(tally.values()) > 0.3 * max(tally.values())

    def test_minimal_reshuffle_on_join(self):
        nodes = [f"n{i}" for i in range(5)]
        grown = nodes + ["n5"]
        moved = 0
        for i in range(200):
            key = f"key-{i}"
            old = hashing.top(key, nodes, 2)
            new = hashing.top(key, grown, 2)
            if "n5" in new:
                moved += 1
            else:
                # Keys the new node does not claim keep their placement.
                assert new == old
        assert 0 < moved < 200


class TestClusterPlacement:
    def test_place_replicates_on_distinct_nodes(self, sim):
        cluster = make_cluster(sim, 4, replication=2)
        value = Blob(900_000, 6_000_000.0)
        placement = cluster.place(value, key="v", shards=3)
        assert len(placement.shards) == 3
        for shard in placement.shards:
            assert len(shard.replicas) == 2
            assert shard.replicas.keys() == set(
                hashing.top(shard.key, [n.name for n in cluster.nodes], 2))
        used = sum(n.device.allocator.used_bytes for n in cluster.nodes)
        assert used == 2 * 900_000
        assert cluster.under_replicated() == []

    def test_place_rolls_back_on_out_of_space(self, sim):
        cluster = make_cluster(sim, 2, replication=2, capacity_bytes=1000)
        with pytest.raises(OutOfSpaceError):
            cluster.place(Blob(1100, 1e6), key="big", shards=2)
        for node in cluster.nodes:
            assert node.device.allocator.used_bytes == 0

    def test_double_place_and_remove(self, sim):
        cluster = make_cluster(sim, 2, replication=2)
        value = Blob(1000, 1e6)
        cluster.place(value, key="v")
        with pytest.raises(PlacementError):
            cluster.place(value, key="v2")
        cluster.remove(value)
        assert not cluster.is_placed(value)
        for node in cluster.nodes:
            assert node.device.allocator.used_bytes == 0

    def test_replication_needs_enough_nodes(self, sim):
        cluster = make_cluster(sim, 1, replication=1)
        with pytest.raises(ClusterError, match="replication 2"):
            cluster.place(Blob(1000, 1e6), replication=2)


class TestClusterReads:
    def test_read_routes_to_least_loaded_replica(self, sim):
        cluster = make_cluster(sim, 2, replication=2)
        value = Blob(300_000, 6_000_000.0)
        cluster.place(value, key="v")
        # Load node-0's NIC so routing prefers node-1.
        cluster.node("node-0").admission.try_admit(
            QoSContract(40_000_000.0, Priority.STANDARD), label="hog")
        stream = cluster.open_read(value, 6_000_000.0, label="probe")

        def client():
            yield from stream.read(240_000)

        sim.run_until_complete(sim.spawn(client(), name="client"))
        assert stream.serving_node == "node-1"
        stream.close()

    def test_routing_sees_live_disk_queue_not_flushed_metrics(self, sim):
        """Regression: replica scoring must read live queue depths.

        The old scorer ranked replicas by flush-batched channel metrics,
        which lag the first flush interval of a flash crowd — every
        arrival piled onto the same "idle-looking" node.  Jamming a disk
        queue directly (no metrics flush ever happens here) must be
        enough to steer the very next read away.
        """
        cluster = make_cluster(sim, 2, replication=2)
        value = Blob(300_000, 6_000_000.0)
        cluster.place(value, key="v")
        jammed = cluster.node("node-0")
        jammed.scheduler.submit(0, 48_000_000)  # ~1 s of queued service
        assert jammed.load_key > cluster.node("node-1").load_key
        stream = cluster.open_read(value, 6_000_000.0, label="probe")

        def client():
            yield from stream.read(240_000)

        sim.run_until_complete(sim.spawn(client(), name="client"))
        assert stream.serving_node == "node-1"
        stream.close()

    def test_trim_defers_until_reader_detaches(self, sim):
        """Regression: a trim never frees a replica under a live reader.

        Boost copies a second replica, the reader re-routes onto it,
        and the unboost-triggered trim must park until the reader
        closes — then reclaim exactly that replica, with the deferral
        and the trim both on the ledger and zero failovers.
        """
        cluster = make_cluster(sim, 3, replication=1)
        cluster.repair.start()
        value = Blob(240_000, 6_000_000.0)
        placement = cluster.place(value, key="v")
        shard = placement.shards[0]
        (origin,) = shard.replicas
        cluster.repair.boost(placement)
        sim.run()  # boost copy completes; two live replicas now
        boosted = [n for n in shard.replicas if n != origin]
        assert boosted, "boost must have added a replica"
        # Jam the origin so routing attaches the reader to the copy.
        cluster.node(origin).scheduler.submit(0, 48_000_000)
        stream = cluster.open_read(value, 6_000_000.0, label="viewer")
        states = {}

        def client():
            yield from stream.read(240_000)
            states["serving"] = stream.serving_node
            yield Delay(0.2)  # hold the replica across the unboost
            yield from stream.read(240_000)
            states["replicas_while_open"] = sorted(shard.replicas)
            stream.close()

        def control():
            yield Delay(0.05)
            cluster.repair.unboost(placement)

        sim.spawn(client(), name="client")
        sim.spawn(control(), name="control")
        sim.run()
        metrics = sim.obs.metrics
        assert states["serving"] == boosted[0]
        # The trim ran while the reader was attached — and deferred.
        assert metrics.counter("cluster.trim_deferred").value == 1
        assert states["replicas_while_open"] == sorted([origin, boosted[0]])
        # The reader was never yanked off its replica...
        assert stream.failovers == 0 and cluster.failovers == 0
        assert stream.bits_read == 480_000
        # ...and the close released the trim: surplus reclaimed.
        assert sorted(shard.replicas) == [origin]
        assert metrics.counter("cluster.trimmed").value == 1
        assert cluster.over_replicated() == []

    def test_failover_mid_stream(self, sim):
        cluster = make_cluster(sim, 3, replication=2)
        value = Blob(600_000, 6_000_000.0)
        cluster.place(value, key="v")
        stream = cluster.open_read(value, 6_000_000.0, label="viewer")
        finished = []

        def client():
            for _ in range(4):
                yield from stream.read(1_200_000)
            finished.append(stream.bits_read)

        def killer():
            # Jam the serving node's disk with a long competing transfer
            # so the stream's next request sits *queued* when the node
            # dies: stop() fails queued requests (an in-flight transfer
            # always completes), which exercises the retry failover path.
            yield Delay(0.01)
            victim = cluster.node(stream.serving_node)
            victim.scheduler.submit(0, 48_000_000)  # ~1 s of service
            yield Delay(0.05)
            cluster.kill_node(victim.name)

        sim.spawn(client(), name="client")
        sim.spawn(killer(), name="killer")
        sim.run()
        assert finished == [600_000 * 8]
        assert stream.failovers == 1
        assert cluster.failovers == 1
        metrics = sim.obs.metrics
        assert metrics.counter("cluster.failovers").value == 1
        assert metrics.counter("faults.retries").value >= 1

    def test_striped_value_survives_node_kill_with_consistent_counters(
            self, sim):
        """Satellite: kill a node while a striped value streams from it."""
        cluster = make_cluster(sim, 4, replication=2)
        value = Blob(1_200_000, 6_000_000.0)
        placement = cluster.place(value, key="striped", shards=3)
        victim = cluster._route(placement.shards[0])[0].name
        plan = FaultPlan(seed=1).node_outage(victim, at=0.05)
        injector = FaultInjector(sim, plan).arm(nodes=cluster.nodes)
        stream = cluster.open_read(value, 6_000_000.0, label="viewer",
                                   queue_timeout_s=0.5)
        finished = []

        def client():
            total = 1_200_000 * 8
            while stream.bits_read < total:
                yield from stream.read(240_000)
            finished.append(stream.bits_read)

        sim.spawn(client(), name="client")
        sim.run()
        # The stream completed entirely from surviving replicas...
        assert finished == [1_200_000 * 8]
        assert stream.failovers >= 1
        # ...and the fault and cluster ledgers agree.
        metrics = sim.obs.metrics
        assert injector.injected == 1
        assert metrics.counter("faults.injected").value == 1
        assert (metrics.counter("cluster.failovers").value
                == cluster.failovers == stream.failovers)
        assert metrics.counter("cluster.node_deaths").value == 1
        assert [s for s in placement.shards
                if victim in s.replicas]  # dead replicas tracked, not lost

    def test_read_past_end_rejected(self, sim):
        cluster = make_cluster(sim, 2, replication=1)
        value = Blob(1000, 1e6)
        cluster.place(value, key="v")
        stream = cluster.open_read(value, 1e6, label="s")

        def client():
            yield from stream.read(9000)

        proc = sim.spawn(client(), name="client")
        with pytest.raises(ClusterError, match="past end"):
            sim.run_until_complete(proc)


class TestRepair:
    def test_repair_restores_replication_under_cap(self, sim):
        cap = 8_000_000.0
        cluster = make_cluster(sim, 3, replication=2, repair_cap=cap)
        values = [Blob(300_000, 6e6) for _ in range(4)]  # held: keyed by id()
        for i, value in enumerate(values):
            cluster.place(value, key=f"v{i}")
        lost_shards = [s for p in cluster.placements for s in p.shards
                       if "node-0" in s.replicas]
        assert lost_shards  # the kill must actually cost replicas
        cluster.repair.start()

        def killer():
            yield Delay(0.01)
            cluster.kill_node("node-0")

        sim.spawn(killer(), name="killer")
        sim.run()
        assert cluster.under_replicated() == []
        assert cluster.repair.repairs == len(lost_shards)
        repaired_bits = sum(s.nbytes * 8 for s in lost_shards)
        assert cluster.repair.repaired_bits == repaired_bits
        # Sequential background copies at <= cap: elapsed >= bits/cap.
        assert sim.now.seconds - 0.01 >= repaired_bits / cap * 0.99
        metrics = sim.obs.metrics
        assert metrics.counter("cluster.repairs").value == len(lost_shards)
        assert metrics.gauge("cluster.under_replicated").value == 0

    def test_restore_trims_surplus_replicas(self, sim):
        cluster = make_cluster(sim, 3, replication=2)
        values = [Blob(200_000, 6e6) for _ in range(3)]
        for i, value in enumerate(values):
            cluster.place(value, key=f"v{i}")
        cluster.repair.start()

        def script():
            yield Delay(0.01)
            cluster.kill_node("node-0")
            yield Delay(2.0)   # repair finishes well before this
            cluster.restore_node("node-0")

        sim.spawn(script(), name="script")
        sim.run()
        for placement in cluster.placements:
            for shard in placement.shards:
                assert len(cluster.live_replicas(shard)) == placement.replication
        assert cluster.over_replicated() == []
        assert sim.obs.metrics.counter("cluster.trimmed").value > 0

    def test_rebalance_moves_shards_to_joined_node(self, sim):
        cluster = make_cluster(sim, 3, replication=2)
        values = [Blob(200_000, 6e6) for _ in range(8)]
        for i, value in enumerate(values):
            cluster.place(value, key=f"v{i}")
        cluster.add_node(StorageNode(sim, "node-3"))
        proc = sim.spawn(cluster.repair.rebalance(), name="rebalance")
        sim.run_until_complete(proc)
        moved = proc.result
        assert moved > 0
        names = [n.name for n in cluster.nodes]
        on_new = 0
        for placement in cluster.placements:
            for shard in placement.shards:
                # Post-rebalance placement is exactly the rendezvous top-R.
                assert sorted(shard.replicas) == sorted(
                    hashing.top(shard.key, names, placement.replication))
                on_new += int("node-3" in shard.replicas)
        assert on_new == moved
        assert cluster.under_replicated() == []


class TestNodeOutageFaultKind:
    def test_outage_window_kills_then_restores(self, sim):
        cluster = make_cluster(sim, 2, replication=1)
        plan = FaultPlan().node_outage("node-0", at=0.1, duration=0.5)
        injector = FaultInjector(sim, plan).arm(nodes=cluster.nodes)
        states = {}

        def probe():
            yield Delay(0.2)
            states["during"] = cluster.node("node-0").available
            yield Delay(0.5)
            states["after"] = cluster.node("node-0").available

        sim.spawn(probe(), name="probe")
        sim.run()
        assert states == {"during": False, "after": True}
        assert injector.injected == 1
        assert injector.log[0][1] == "node-outage"

    def test_plan_builder_validates_kind(self):
        plan = FaultPlan().node_outage("n", at=1.0, duration=2.0)
        assert plan.faults[0].kind == "node-outage"
        assert "node-outage" in plan.describe()


class TestClusterScenarios:
    def test_read_storm_deterministic_and_scales(self):
        with scoped(tracing=False):
            one = read_storm(seed=2, nodes=1)
        with scoped(tracing=False):
            four = read_storm(seed=2, nodes=4)
        with scoped(tracing=False):
            again = read_storm(seed=2, nodes=4)
        assert four == again
        assert four["throughput_mbps"] > 1.7 * one["throughput_mbps"]
        assert one["streams_completed"] == four["streams_completed"] == 16
        assert one["stranded_processes"] == four["stranded_processes"] == 0
