"""Codecs: roundtrip fidelity, compression shapes, streaming state."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codecs import (
    ADPCMCodec,
    DVICodec,
    JPEGCodec,
    MPEGCodec,
    RawCodec,
    RLECodec,
    available_codecs,
    decode_mulaw,
    encode_mulaw,
    get_codec,
)
from repro.codecs.rle import rle_decode_bytes, rle_encode_bytes
from repro.errors import CodecError
from repro.synth import flat_video, moving_scene, noise_video
from repro.values import RawVideoValue


def mae(a, b):
    return float(np.abs(a.astype(int) - b.astype(int)).mean())


class TestRawCodec:
    def test_roundtrip_exact(self, small_video):
        codec = RawCodec()
        encoded = codec.encode_value(small_video)
        decoded = codec.decode_value(encoded)
        assert np.array_equal(decoded, small_video.frames_array)

    def test_wrong_length_detected(self):
        with pytest.raises(CodecError, match="length"):
            RawCodec().decode_frame_at([b"xx"], 0, 16, 16, 8)


class TestRLE:
    def test_bytes_roundtrip(self):
        data = b"\x00" * 300 + b"\x05\x05\x07" + b"\xff" * 10
        assert rle_decode_bytes(rle_encode_bytes(data)) == data

    def test_empty(self):
        assert rle_encode_bytes(b"") == b""
        assert rle_decode_bytes(b"") == b""

    def test_odd_stream_rejected(self):
        with pytest.raises(CodecError):
            rle_decode_bytes(b"\x01")

    @given(st.binary(max_size=2000))
    @settings(max_examples=50)
    def test_roundtrip_property(self, data):
        assert rle_decode_bytes(rle_encode_bytes(data)) == data

    def test_flat_video_compresses_noise_does_not(self):
        codec = RLECodec()
        flat = codec.encode_value(flat_video(5, 64, 48))
        noise = codec.encode_value(noise_video(5, 64, 48))
        assert flat.compression_ratio() > 50.0
        assert noise.compression_ratio() < 1.0  # RLE expands noise

    def test_lossless(self, small_video):
        codec = RLECodec()
        decoded = codec.decode_value(codec.encode_value(small_video))
        assert np.array_equal(decoded, small_video.frames_array)


class TestJPEG:
    def test_lossy_but_close(self, small_video):
        codec = JPEGCodec(85)
        decoded = codec.decode_value(codec.encode_value(small_video))
        assert mae(decoded, small_video.frames_array) < 8.0

    def test_quality_monotonicity(self, small_video):
        """Higher quality -> larger chunks and lower error."""
        sizes, errors = [], []
        for quality in (20, 60, 95):
            codec = JPEGCodec(quality)
            encoded = codec.encode_value(small_video)
            sizes.append(encoded.data_size_bits())
            errors.append(mae(codec.decode_value(encoded), small_video.frames_array))
        assert sizes[0] < sizes[1] < sizes[2]
        assert errors[0] > errors[2]

    def test_color_frames(self):
        video = moving_scene(4, 32, 24, color=True)
        codec = JPEGCodec(85)
        decoded = codec.decode_value(codec.encode_value(video))
        assert decoded.shape == (4, 24, 32, 3)
        assert mae(decoded, video.frames_array) < 10.0

    def test_non_multiple_of_8_geometry(self):
        frames = np.random.default_rng(0).integers(
            0, 255, size=(2, 21, 37), dtype=np.uint8
        )
        # Smooth it so DCT error stays small.
        frames = (frames // 4 + 100).astype(np.uint8)
        video = RawVideoValue(frames)
        codec = JPEGCodec(90)
        decoded = codec.decode_value(codec.encode_value(video))
        assert decoded.shape == (2, 21, 37)

    def test_invalid_quality(self):
        with pytest.raises(CodecError):
            JPEGCodec(0)
        with pytest.raises(CodecError):
            JPEGCodec(101)

    def test_bad_magic_rejected(self, small_video):
        codec = JPEGCodec(75)
        with pytest.raises(CodecError, match="magic"):
            codec.decode_frame(b"XXXX" + b"\x00" * 40, 32, 24, 8)


class TestMPEG:
    def test_interframe_beats_intraframe_on_coherent_video(self):
        video = moving_scene(30, 64, 48)
        mpeg = MPEGCodec(75, gop=10).encode_value(video)
        jpeg = JPEGCodec(75).encode_value(video)
        assert mpeg.data_size_bits() < jpeg.data_size_bits()

    def test_degrades_toward_intra_on_noise(self):
        video = noise_video(20, 64, 48)
        mpeg = MPEGCodec(75, gop=10).encode_value(video)
        jpeg = JPEGCodec(75).encode_value(video)
        # Deltas of noise don't compress: no big win over intra.
        assert mpeg.data_size_bits() > 0.5 * jpeg.data_size_bits()

    def test_random_access_decodes_any_frame(self):
        video = moving_scene(25, 32, 24)
        codec = MPEGCodec(85, gop=7)
        encoded = codec.encode_value(video)
        for index in (0, 6, 7, 13, 24):
            frame = encoded.frame(index)
            assert mae(frame, video.frame(index)) < 12.0

    def test_no_drift_across_gop(self):
        """Reconstructed-reference encoding: error doesn't grow with i."""
        video = moving_scene(20, 32, 24)
        codec = MPEGCodec(85, gop=20)  # one keyframe, 19 deltas
        encoded = codec.encode_value(video)
        first_err = mae(encoded.frame(1), video.frame(1))
        last_err = mae(encoded.frame(19), video.frame(19))
        assert last_err < first_err + 6.0

    def test_sequential_and_random_decode_agree(self):
        video = moving_scene(15, 32, 24)
        codec = MPEGCodec(75, gop=5)
        encoded = codec.encode_value(video)
        sequential = codec.decode_value(encoded)
        for index in (0, 4, 5, 14):
            assert np.array_equal(sequential[index], encoded.frame(index))

    def test_stream_encoder_matches_batch(self):
        video = moving_scene(12, 32, 24)
        codec = MPEGCodec(75, gop=4)
        batch = codec.encode_frames([video.frame(i) for i in range(12)])
        streaming = codec.stream_encoder()
        live = [streaming.encode_next(video.frame(i)) for i in range(12)]
        assert live == batch

    def test_stream_decoder_requires_keyframe_first(self):
        video = moving_scene(4, 32, 24)
        codec = MPEGCodec(75, gop=2)
        chunks = codec.encode_frames([video.frame(i) for i in range(4)])
        decoder = codec.stream_decoder(32, 24, 8)
        with pytest.raises(CodecError, match="keyframe"):
            decoder.decode_next(chunks[1])  # a delta chunk

    def test_invalid_parameters(self):
        with pytest.raises(CodecError):
            MPEGCodec(gop=0)
        with pytest.raises(CodecError):
            MPEGCodec(delta_quant=0)


class TestDVI:
    def test_roundtrip_quality(self, small_video):
        codec = DVICodec()
        decoded = codec.decode_value(codec.encode_value(small_video))
        assert mae(decoded, small_video.frames_array) < 6.0

    def test_compresses(self, small_video):
        encoded = DVICodec().encode_value(small_video)
        assert encoded.compression_ratio() > 2.0

    def test_payload_length_checked(self):
        codec = DVICodec()
        chunk = codec.encode_frame(np.zeros((16, 16), dtype=np.uint8))
        import zlib
        truncated = chunk[:8] + zlib.compress(b"\x00" * 10)
        with pytest.raises(CodecError):
            codec.decode_frame_at([truncated], 0, 16, 16, 8)


class TestAudioCodecs:
    @given(st.lists(st.integers(-32000, 32000), min_size=1, max_size=500))
    @settings(max_examples=30)
    def test_mulaw_error_bounded_relative(self, samples):
        pcm = np.array(samples, dtype=np.int16)
        decoded = decode_mulaw(encode_mulaw(pcm))
        # µ-law error is proportional to magnitude; bound it loosely.
        error = np.abs(decoded.astype(int) - pcm.astype(int))
        allowance = np.maximum(np.abs(pcm.astype(int)) * 0.12, 600)
        assert (error <= allowance).all()

    def test_mulaw_preserves_silence(self):
        silence = np.zeros(100, dtype=np.int16)
        assert np.abs(decode_mulaw(encode_mulaw(silence))).max() < 300

    def test_adpcm_block_roundtrip(self):
        codec = ADPCMCodec()
        t = np.arange(2048) / 8000.0
        pcm = np.round(8000 * np.sin(2 * np.pi * 300 * t)).astype(np.int16)
        pcm = pcm[np.newaxis, :]
        from repro.values import RawAudioValue
        encoded = codec.encode_value(RawAudioValue(pcm, 8000.0))
        error = np.abs(encoded.samples().astype(int) - pcm.astype(int))
        assert error.mean() < 400

    def test_adpcm_block_size_mismatch_detected(self):
        codec = ADPCMCodec()
        with pytest.raises(CodecError):
            codec.decode_block((100).to_bytes(4, "little") + b"\x00" * 10, 1)


class TestRegistry:
    def test_all_names_constructible(self):
        for name in available_codecs():
            codec = get_codec(name)
            assert codec is not None

    def test_params_forwarded(self):
        codec = get_codec("jpeg", quality=33)
        assert codec.quality == 33
        codec = get_codec("mpeg", gop=5)
        assert codec.gop == 5

    def test_unknown_codec(self):
        with pytest.raises(CodecError, match="unknown codec"):
            get_codec("h264")
