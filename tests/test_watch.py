"""The supervision layer: SLOs, invariants, flight recorder, explain."""

import json

import pytest

from repro.admission.controller import AdmissionController, QoSContract
from repro.errors import InvariantBreachError, WatchError
from repro.net.channel import Channel
from repro.obs import scoped
from repro.obs.metrics import MetricsRegistry
from repro.avtime import WorldTime
from repro.sim import Delay, Simulator
from repro.watch import (
    SCENARIOS,
    FlightRecorder,
    InvariantMonitor,
    SLOEngine,
    SLOSpec,
    Watchdog,
    default_slos,
    explain_report,
    render_event,
    subjects_summary,
    summary_line,
)


# ---------------------------------------------------------------------------
# SLO engine
# ---------------------------------------------------------------------------

class TestSLOEngine:
    def test_histogram_quantile_burn(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("admission.queue_wait_s", (0.1, 0.5, 2.0))
        for _ in range(99):
            hist.observe(0.05)
        hist.observe(1.0)
        engine = SLOEngine(metrics, [
            SLOSpec("startup", "histogram-quantile",
                    "admission.queue_wait_s", 0.2, quantile=95.0),
        ])
        result = engine.evaluate()[0]
        assert result.value == 0.1        # p95 bucket edge
        assert result.burn == pytest.approx(0.5)
        assert result.ok

    def test_ratio_burn_over_budget(self):
        metrics = MetricsRegistry()
        metrics.counter("storage.deadline_misses").inc(10)
        metrics.counter("storage.disk_requests").inc(100)
        engine = SLOEngine(metrics, [
            SLOSpec("misses", "ratio", "storage.deadline_misses", 0.05,
                    denominator="storage.disk_requests"),
        ])
        result = engine.evaluate()[0]
        assert result.value == pytest.approx(0.1)
        assert result.burn == pytest.approx(2.0)
        assert not result.ok

    def test_gauge_floor_burn(self):
        metrics = MetricsRegistry()
        metrics.gauge("cluster.nodes_live").set(3)
        engine = SLOEngine(metrics, [
            SLOSpec("floor", "gauge-min", "cluster.nodes_live", 2.0),
        ])
        assert engine.evaluate()[0].burn == pytest.approx(2 / 3)
        metrics.gauge("cluster.nodes_live").set(1)
        assert engine.evaluate()[0].burn == pytest.approx(2.0)

    def test_missing_metric_reads_zero(self):
        engine = SLOEngine(MetricsRegistry(), [
            SLOSpec("quiet", "counter-max", "admission.shed", 5),
        ])
        result = engine.evaluate()[0]
        assert result.value == 0.0 and result.ok

    def test_burn_by_class_takes_worst(self):
        metrics = MetricsRegistry()
        metrics.counter("a").inc(4)
        metrics.counter("b").inc(1)
        engine = SLOEngine(metrics, [
            SLOSpec("a-max", "counter-max", "a", 2, klass="capacity"),
            SLOSpec("b-max", "counter-max", "b", 2, klass="capacity"),
        ])
        burns = engine.burn_by_class(engine.evaluate())
        assert burns == {"capacity": 2.0}

    def test_report_is_plain_sorted_data(self):
        engine = SLOEngine(MetricsRegistry(), default_slos(nodes_floor=2.0))
        report = engine.report()
        json.dumps(report)
        assert report["hard_failed"] == ["replication-floor"]  # gauge reads 0

    def test_spec_validation(self):
        with pytest.raises(WatchError, match="kind"):
            SLOSpec("bad", "nope", "m", 1.0)
        with pytest.raises(WatchError, match="denominator"):
            SLOSpec("bad", "ratio", "m", 1.0)
        with pytest.raises(WatchError, match="positive"):
            SLOSpec("bad", "gauge-min", "m", 0.0)
        engine = SLOEngine(MetricsRegistry(),
                           [SLOSpec("dup", "counter-max", "m", 1.0)])
        with pytest.raises(WatchError, match="already"):
            engine.add(SLOSpec("dup", "counter-max", "m", 2.0))


# ---------------------------------------------------------------------------
# invariant monitor
# ---------------------------------------------------------------------------

class TestInvariantMonitor:
    def _stack(self):
        sim = Simulator()
        trunk = Channel(sim, capacity_bps=1_000_000.0, name="trunk")
        controller = AdmissionController(sim, trunk)
        monitor = InvariantMonitor(sim).arm(
            channels=[trunk], controllers=[controller],
            channels_complete=True)
        return sim, trunk, controller, monitor

    def test_healthy_system_has_no_breaches(self):
        sim, trunk, controller, monitor = self._stack()
        reservation = controller.try_admit(
            QoSContract(500_000.0), label="s-1")
        assert monitor.check_now() == []
        reservation.release()
        assert monitor.check_teardown() == []
        assert monitor.checks == 2

    def test_leaked_release_is_caught(self):
        sim, trunk, controller, monitor = self._stack()
        reservation = controller.try_admit(
            QoSContract(500_000.0), label="leaky")
        trunk.debug_leak_releases = True
        reservation.release()
        breaches = monitor.check_now()
        assert len(breaches) >= 1
        assert breaches[0].invariant == "reservation-conservation"
        assert breaches[0].component == "trunk"
        assert "leaky" in breaches[0].evidence["leaked"]
        json.dumps(breaches[0].to_dict())

    def test_queue_depth_mirror_corruption_is_caught(self):
        sim, trunk, controller, monitor = self._stack()
        controller._live_queued = 3  # corrupt the O(1) mirror
        breaches = monitor.check_now()
        assert any(b.invariant == "controller-consistency" for b in breaches)

    def test_extent_wholeness(self):
        from repro.storage.extents import ExtentAllocator

        allocator = ExtentAllocator("disk0", 1000)
        extent = allocator.allocate(100)
        sim = Simulator()
        monitor = InvariantMonitor(sim).arm(allocators=[allocator])
        assert monitor.check_now() == []
        # Corrupt the books: drop an allocated extent without freeing.
        del allocator._allocated[extent.id]
        breaches = monitor.check_now()
        assert breaches[0].invariant == "extent-wholeness"

    def test_bit_conservation_requires_complete_arming(self):
        sim = Simulator()
        armed = Channel(sim, 1_000_000.0, name="armed")
        unarmed = Channel(sim, 1_000_000.0, name="unarmed")
        unarmed._account(4096)  # traffic the monitor cannot see
        partial = InvariantMonitor(sim).arm(channels=[armed])
        assert partial.check_now() == []  # gated: no false positive
        complete = InvariantMonitor(sim).arm(
            channels=[armed], channels_complete=True)
        breaches = complete.check_now()
        assert any(b.invariant == "bit-conservation" for b in breaches)

    def test_leaked_process_caught_at_teardown(self):
        sim = Simulator()
        monitor = InvariantMonitor(sim)

        def lingerer():
            yield Delay(1000.0)

        sim.spawn(lingerer(), "lingerer")
        sim.run(until=WorldTime(1.0))
        assert monitor.check_now() == []  # live processes are fine mid-run
        breaches = monitor.check_teardown()
        assert any(b.invariant == "process-accounting" for b in breaches)


# ---------------------------------------------------------------------------
# flight recorder + watchdog
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_bundle_is_plain_deterministic_data(self):
        with scoped():
            sim = Simulator()
            trunk = Channel(sim, 1_000_000.0, name="trunk")
            recorder = FlightRecorder(sim.obs).track(trunk)
            doc = recorder.bundle("unit-test", 1.5)
        assert doc["reason"] == "unit-test"
        assert doc["components"][0]["name"] == "trunk"
        assert FlightRecorder.to_bytes(doc) == FlightRecorder.to_bytes(doc)
        json.loads(FlightRecorder.to_bytes(doc))

    def test_dump_writes_bundle(self, tmp_path):
        with scoped():
            sim = Simulator()
            recorder = FlightRecorder(sim.obs)
            doc = recorder.bundle("unit-test", 0.0)
            path = recorder.dump(doc, tmp_path / "bundle.json")
        data = json.loads(path.read_text())
        assert data["bundle"] == "repro.watch postmortem"


class TestWatchdog:
    def test_breach_aborts_the_run(self, tmp_path):
        with scoped():
            sim = Simulator()
            trunk = Channel(sim, 1_000_000.0, name="trunk")
            controller = AdmissionController(sim, trunk)
            dog = Watchdog(sim, slos=default_slos(),
                           bundle_dir=tmp_path)
            dog.arm(channels=[trunk], controllers=[controller],
                    channels_complete=True)
            dog.start(cadence_s=0.1, horizon_s=1.0)

            def leaker():
                reservation = controller.try_admit(
                    QoSContract(250_000.0), label="leaky")
                yield Delay(0.25)
                trunk.debug_leak_releases = True
                reservation.release()

            sim.spawn(leaker(), "leaker")
            with pytest.raises(InvariantBreachError,
                               match="reservation-conservation"):
                sim.run()
            assert len(dog.bundle_paths) == 1
            bundle = json.loads(dog.bundle_paths[0].read_text())
            assert bundle["reason"] == "invariant-breach"
            assert bundle["breaches"][0]["component"] == "trunk"

    def test_ticker_is_horizon_bounded(self):
        with scoped():
            sim = Simulator()
            dog = Watchdog(sim)
            dog.start(cadence_s=0.05, horizon_s=0.5)
            end = sim.run()  # must drain: the ticker stops at the horizon
            assert end.seconds == pytest.approx(0.5)
            assert dog.ticks == 10
            assert sim.live_processes == 0


# ---------------------------------------------------------------------------
# decision chains (overload scenario completeness)
# ---------------------------------------------------------------------------

#: verdicts that legitimately open a subject's decision chain.
_OPENERS = {"admit", "degrade", "shed", "queue", "reject", "node-down"}


def _assert_coherent_chain(chain):
    """A session's decision chain must be ordered and causally closed."""
    assert chain, "empty decision chain"
    times = [e.ts for e in chain]
    assert times == sorted(times), "decision chain out of causal order"
    kinds = [e.kind for e in chain]
    assert kinds[0] in _OPENERS, f"chain opens with {kinds[0]!r}"
    for i, event in enumerate(chain):
        if event.kind == "preempt":
            assert "admit" in kinds[:i] or "degrade" in kinds[:i], (
                "preempted a session that was never granted")
        if event.kind == "admit" and (event.args or {}).get("from_queue"):
            assert "queue" in kinds[:i], "left a queue it never entered"


class TestDecisionChains:
    def test_priority_mix_preemption_chains(self):
        from repro.admission import SCENARIOS as OVERLOAD

        with scoped():
            facts = OVERLOAD["priority-mix"](seed=0, admission=True)
            decisions = Simulator().obs.decisions  # same ambient scope
        assert facts["background_preempted"] == 2
        preempted = {e.subject for e in decisions.by_kind("preempt")}
        assert len(preempted) == 2
        for subject in decisions.subjects():
            _assert_coherent_chain(decisions.chain(subject))
        for subject in preempted:
            kinds = [e.kind for e in decisions.chain(subject)]
            assert kinds.index("admit") < kinds.index("preempt")

    def test_surge_chains_cover_all_outcomes(self):
        from repro.admission import SCENARIOS as OVERLOAD

        with scoped():
            OVERLOAD["surge"](seed=0, admission=True)
            decisions = Simulator().obs.decisions
        assert len(decisions) > 0
        outcomes = {e.kind for e in decisions.events}
        assert {"admit", "shed"} <= outcomes
        for subject in decisions.subjects():
            _assert_coherent_chain(decisions.chain(subject))


# ---------------------------------------------------------------------------
# scenarios + explain
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def node_kill_run():
    """One supervised node-kill run shared by the explain tests."""
    with scoped():
        facts = SCENARIOS["node-kill"](seed=0)
        decisions = Simulator().obs.decisions
    return facts, decisions


class TestWatchScenarios:
    def test_leak_scenario_catches_seeded_bug(self):
        with scoped():
            facts = SCENARIOS["leak"](seed=0)
        assert facts["caught"] is True
        assert facts["breach_invariant"] == "reservation-conservation"
        assert facts["breach_component"] == "trunk"
        assert facts["leaked_reservations"] >= 1

    def test_leak_bundle_is_byte_identical_across_reruns(self):
        def run():
            with scoped():
                return SCENARIOS["leak"](seed=0)

        first, second = run(), run()
        assert first["bundle_sha256"] == second["bundle_sha256"]
        assert summary_line("leak", first) == summary_line("leak", second)

    def test_slo_burn_reports_per_class_budgets(self):
        with scoped():
            facts = SCENARIOS["slo-burn"](seed=0)
        assert set(facts["burn_by_class"]) >= {"latency", "deadline"}
        assert facts["worst_burn"] > 1.0     # the overload burns a budget
        assert facts["hard_failed"] == "none"
        assert facts["stranded_processes"] == 0

    def test_node_kill_supervised_run_is_clean(self, node_kill_run):
        facts, _ = node_kill_run
        assert facts["invariant_breaches"] == 0
        assert facts["failovers"] >= 1
        assert facts["degraded_sessions"] >= 1
        assert facts["stranded_processes"] == 0
        assert "failover" in facts["explained_chain"]


class TestExplain:
    def test_explained_session_chain_is_causal(self, node_kill_run):
        facts, decisions = node_kill_run
        subject = facts["explained_session"]
        chain = decisions.chain(subject)
        _assert_coherent_chain(chain)
        kinds = [e.kind for e in chain]
        assert "failover" in kinds
        # the failover happened after the node went down
        node_down_ts = min(e.ts for e in decisions.by_kind("node-down"))
        failover_ts = min(e.ts for e in chain if e.kind == "failover")
        assert failover_ts >= node_down_ts

    def test_report_rendering(self, node_kill_run):
        facts, decisions = node_kill_run
        subject = facts["explained_session"]
        report = explain_report(decisions, subject)
        assert f"decision chain for {subject!r}" in report
        assert "failover" in report
        # deterministic: rendering twice gives identical text
        assert report == explain_report(decisions, subject)

    def test_unknown_subject_lists_alternatives(self, node_kill_run):
        _, decisions = node_kill_run
        report = explain_report(decisions, "no-such-session")
        assert "no decisions recorded" in report
        assert "known subjects" in report

    def test_render_event_covers_every_emitted_kind(self, node_kill_run):
        _, decisions = node_kill_run
        for event in decisions.events:
            line = render_event(event)
            assert line.startswith("t=")
            # every kind has a dedicated rendering (no raw fallback
            # "kind (k=v)" form for the vocabulary the repo emits)
            assert "=" not in line.split("  ", 1)[1].split(" (")[0]

    def test_subjects_summary_lines(self, node_kill_run):
        _, decisions = node_kill_run
        lines = subjects_summary(decisions)
        assert any(line.startswith("viewer-") for line in lines)
        subjects = [line.split(":", 1)[0] for line in lines]
        assert subjects == sorted(subjects)


# ---------------------------------------------------------------------------
# CLI plumbing
# ---------------------------------------------------------------------------

class TestCLI:
    def test_lookup_scenario_helper(self, capsys):
        from repro.__main__ import _lookup_scenario

        registry = {"a": None, "b": None}
        assert _lookup_scenario("unit", "a", registry) == ["a"]
        assert _lookup_scenario("unit", "all", registry,
                                allow_all=True) == ["a", "b"]
        assert _lookup_scenario("unit", "nope", registry) is None
        err = capsys.readouterr().err
        assert "unknown unit scenario 'nope'" in err
        assert "pick one of: a, b" in err

    def test_watch_command_unknown_scenario_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["watch", "nope"]) == 2
        assert "pick one of" in capsys.readouterr().err

    def test_watch_command_runs_leak(self, capsys, tmp_path):
        from repro.__main__ import main

        assert main(["watch", "leak",
                     "--bundle-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "breach_invariant = reservation-conservation" in out
        assert "watch leak:" in out
        assert list(tmp_path.glob("postmortem-*.json"))

    def test_explain_command_renders_chain(self, capsys):
        from repro.__main__ import main

        assert main(["explain", "priority-mix", "--session", "bg-1"]) == 0
        out = capsys.readouterr().out
        assert "decision chain for 'bg-1'" in out
        assert "preempted" in out


class TestCrashPostmortems:
    """An unhandled scenario exception leaves a postmortem behind."""

    def test_crash_writes_unhandled_failure_bundle(self, tmp_path):
        with scoped():
            sim = Simulator()
            dog = Watchdog(sim, slos=default_slos(), bundle_dir=tmp_path)
            dog.start(cadence_s=0.1, horizon_s=1.0)

            def encoder():
                yield Delay(0.2)
                raise RuntimeError("codec wedged")

            sim.spawn(encoder(), "encoder")
            # The crash still propagates — the bundle is a side effect,
            # not a swallow.
            with pytest.raises(RuntimeError, match="codec wedged"):
                sim.run()
            assert len(dog.bundle_paths) == 1
            bundle = json.loads(dog.bundle_paths[0].read_text())
            assert bundle["reason"] == "unhandled-failure"
            assert bundle["failure"] == {
                "process": "encoder",
                "error_type": "RuntimeError",
                "error": "codec wedged",
            }

    def test_only_the_first_crash_is_bundled(self, tmp_path):
        with scoped():
            sim = Simulator()
            dog = Watchdog(sim, slos=default_slos(), bundle_dir=tmp_path)
            dog.start(cadence_s=0.1, horizon_s=1.0)

            def crasher(name, at):
                def gen():
                    yield Delay(at)
                    raise RuntimeError(name)
                return gen()

            sim.spawn(crasher("first", 0.2), "first")
            sim.spawn(crasher("second", 0.3), "second")
            with pytest.raises(RuntimeError):
                sim.run()
            assert len(dog.bundle_paths) == 1
            bundle = json.loads(dog.bundle_paths[0].read_text())
            assert bundle["failure"]["process"] == "first"

    def test_breach_does_not_double_bundle(self, tmp_path):
        # The kernel failure hook must skip InvariantBreachError — the
        # monitor already wrote the richer invariant-breach bundle.
        with scoped():
            sim = Simulator()
            trunk = Channel(sim, 1_000_000.0, name="trunk")
            controller = AdmissionController(sim, trunk)
            dog = Watchdog(sim, slos=default_slos(), bundle_dir=tmp_path)
            dog.arm(channels=[trunk], controllers=[controller],
                    channels_complete=True)
            dog.start(cadence_s=0.1, horizon_s=1.0)

            def leaker():
                reservation = controller.try_admit(
                    QoSContract(250_000.0), label="leaky")
                yield Delay(0.25)
                trunk.debug_leak_releases = True
                reservation.release()

            sim.spawn(leaker(), "leaker")
            with pytest.raises(InvariantBreachError):
                sim.run()
            assert [json.loads(p.read_text())["reason"]
                    for p in dog.bundle_paths] == ["invariant-breach"]
