"""Regression tests for the hot-path rework: ``with_payload`` sizing
rules, batched channel accounting, heap-based C-SCAN, O(1) admission
queue depth, and the profile CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.avtime import WorldTime
from repro.errors import SimulationError
from repro.net import Channel
from repro.sim import Simulator
from repro.storage.scheduler import DiskScheduler, Policy
from repro.streams.element import StreamElement
from repro.values.mediatype import standard_type


def _element(payload, size_bits=None):
    if size_bits is None:
        size_bits = (payload.nbytes if hasattr(payload, "nbytes")
                     else len(payload)) * 8
    return StreamElement(payload, 0, WorldTime(0.0),
                         standard_type("video/raw"), size_bits)


class TestWithPayloadSizing:
    def test_same_shape_payload_inherits_size(self):
        frame = np.zeros((8, 8), dtype=np.uint8)
        element = _element(frame)
        out = element.with_payload(frame + 1)
        assert out.size_bits == element.size_bits
        assert out.index == element.index
        assert out.ideal_time == element.ideal_time
        assert type(out) is StreamElement

    def test_shrunk_payload_without_size_raises(self):
        element = _element(np.zeros((8, 8), dtype=np.uint8))
        with pytest.raises(SimulationError, match="size_bits"):
            element.with_payload(np.zeros((4, 4), dtype=np.uint8))

    def test_type_change_without_size_raises(self):
        element = _element(np.zeros((8, 8), dtype=np.uint8))
        with pytest.raises(SimulationError, match="size_bits"):
            element.with_payload(b"compressed")

    def test_explicit_size_always_allowed(self):
        element = _element(np.zeros((8, 8), dtype=np.uint8))
        out = element.with_payload(b"xx", size_bits=16)
        assert out.size_bits == 16

    def test_negative_explicit_size_rejected(self):
        element = _element(np.zeros((8, 8), dtype=np.uint8))
        with pytest.raises(SimulationError, match=">= 0"):
            element.with_payload(b"xx", size_bits=-1)

    def test_traffic_accounting_uses_restated_size(self):
        # The regression the rule exists for: a transformer that halves
        # the payload must halve what the channel is charged.
        sim = Simulator()
        channel = Channel(sim, capacity_bps=1e9)
        reservation = channel.reserve(1e6)
        element = _element(np.zeros(1000, dtype=np.uint8))  # 8000 bits
        shrunk = element.with_payload(b"\x00" * 125, size_bits=1000)

        def send(el):
            yield from reservation.serialize(el.size_bits)

        sim.run_until_complete(sim.spawn(send(element), "big"))
        sim.run_until_complete(sim.spawn(send(shrunk), "small"))
        assert channel.total_bits == 8000 + 1000


class TestBatchedChannelAccounting:
    def test_counter_settles_on_every_read_path(self):
        sim = Simulator()
        channel = Channel(sim, capacity_bps=1e9)
        channel._account(4000)
        metrics = sim.obs.metrics
        assert metrics.get("net.bits_sent").value == 4000
        channel._account(500)
        assert metrics.snapshot()["net.bits_sent"] == 4500
        channel._account(1)
        assert metrics.by_kind("counter")["net.bits_sent"].value == 4501
        assert channel.total_bits == 4501

    def test_two_channels_share_one_counter(self):
        sim = Simulator()
        a = Channel(sim, capacity_bps=1e9, name="a")
        b = Channel(sim, capacity_bps=1e9, name="b")
        a._account(100)
        b._account(23)
        assert sim.obs.metrics.get("net.bits_sent").value == 123


class TestHeapCSCAN:
    @staticmethod
    def _fcfs_equivalent_cscan_order(submissions):
        """The old O(n)-scan C-SCAN semantics, reimplemented naively."""
        queue = list(submissions)
        head = 0
        order = []
        while queue:
            ahead = [p for p in queue if p >= head]
            chosen = min(ahead) if ahead else min(queue)
            queue.remove(chosen)
            head = chosen
            order.append(chosen)
        return order

    def test_two_heap_pick_matches_scan_semantics(self):
        positions = [500, 100, 900, 100, 50, 700, 300, 950, 20, 500]
        sim = Simulator()
        disk = DiskScheduler(sim, Policy.CSCAN)
        requests = [disk.submit(p, bits=0) for p in positions]
        served = [disk._pick() for _ in range(len(positions))]
        # _pick does not move the head itself; replay the serve loop.
        got = []
        sim2 = Simulator()
        disk2 = DiskScheduler(sim2, Policy.CSCAN)
        for p in positions:
            disk2.submit(p, bits=0)
        while disk2.queue_depth:
            req = disk2._pick()
            disk2.head_position = req.position
            got.append(req.position)
        assert got == self._fcfs_equivalent_cscan_order(positions)
        assert {r.position for r in served} == set(positions)

    def test_equal_positions_serve_in_arrival_order(self):
        sim = Simulator()
        disk = DiskScheduler(sim, Policy.CSCAN)
        first = disk.submit(10, bits=0)
        second = disk.submit(10, bits=0)
        assert disk._pick() is first
        assert disk._pick() is second

    def test_served_results_match_policies(self):
        # End-to-end: C-SCAN still serves everything and seeks less than
        # FCFS on a zig-zag pattern.
        positions = [0, 900, 10, 890, 20, 880, 30, 870]
        totals = {}
        for policy in (Policy.FCFS, Policy.CSCAN):
            sim = Simulator()
            disk = DiskScheduler(sim, policy)
            disk.start()
            for p in positions:
                disk.submit(p, bits=8_000)
            disk.drain()
            sim.run()
            assert disk.requests_served == len(positions)
            totals[policy] = disk.total_seek_distance
        assert totals[Policy.CSCAN] < totals[Policy.FCFS]


class TestAdmissionQueueDepthCounter:
    def test_depth_tracks_queue_transitions(self):
        from repro.admission import AdmissionController, QoSContract, Priority
        from repro.errors import AdmissionTimeoutError

        sim = Simulator()
        channel = Channel(sim, capacity_bps=1000.0)
        controller = AdmissionController(sim, channel, max_queue=4)
        hog = controller.try_admit(
            QoSContract(bps=1000.0, priority=Priority.INTERACTIVE), "hog")
        assert controller.queue_depth == 0

        results = []

        def client(name, timeout):
            contract = QoSContract(bps=400.0, priority=Priority.STANDARD,
                                   queue_timeout_s=timeout)
            try:
                reservation = yield from controller.admit(contract, name)
                results.append((name, "admitted"))
                reservation.release()
            except AdmissionTimeoutError:
                results.append((name, "timeout"))

        sim.spawn(client("a", 0.5), "a")
        sim.spawn(client("b", 10.0), "b")
        sim.run(until=WorldTime(0.1))
        assert controller.queue_depth == 2
        sim.run(until=WorldTime(1.0))  # client a times out
        assert controller.queue_depth == 1
        hog.release()  # pump admits client b
        sim.run()
        assert controller.queue_depth == 0
        assert ("a", "timeout") in results
        assert ("b", "admitted") in results


class TestProfileCLI:
    def test_profile_resolves_all_registries(self):
        from repro.perf import available_scenarios, profile_scenario

        names = available_scenarios()
        assert {"quickstart", "disk-outage", "surge"} <= set(names)
        report, facts = profile_scenario("quickstart", top=5)
        assert "quickstart" in report
        assert "cumulative" in report
        assert facts["frames_presented"] > 0

    def test_unknown_scenario_raises(self):
        from repro.perf import resolve_scenario

        with pytest.raises(KeyError, match="pick one of"):
            resolve_scenario("definitely-not-a-scenario")
