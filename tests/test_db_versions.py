"""Version graphs and cross-object derivations."""

import pytest

from repro.db import AttributeSpec, ClassDef, Database
from repro.db.objects import OID
from repro.db.versions import VersionCatalog, VersionGraph
from repro.errors import VersionError


class TestVersionGraph:
    def test_linear_history(self):
        graph = VersionGraph(OID("Doc", 1))
        graph.record(2, 1, "edit")
        graph.record(3, 2, "another edit")
        assert graph.lineage(3) == [3, 2, 1]
        assert graph.latest() == 3
        assert graph.heads() == [3]

    def test_branching(self):
        graph = VersionGraph(OID("Doc", 1))
        graph.record(2, 1)
        graph.record(3, 2)
        graph.record(4, 2)  # branch off version 2
        assert graph.is_branch_point(2)
        assert sorted(graph.heads()) == [3, 4]
        assert graph.children(2) == [3, 4]

    def test_invalid_records(self):
        graph = VersionGraph(OID("Doc", 1))
        with pytest.raises(VersionError, match="already recorded"):
            graph.record(1, 1)
        with pytest.raises(VersionError, match="unknown parent"):
            graph.record(5, 4)
        with pytest.raises(VersionError, match="no version"):
            graph.node(9)


class TestCatalogIntegration:
    def test_updates_build_history(self):
        db = Database()
        db.define_class(ClassDef("Doc", attributes=[AttributeSpec("body", str)]))
        oid = db.insert("Doc", body="v1")
        db.update(oid, body="v2")
        db.update(oid, body="v3")
        graph = db.versions.graph(oid)
        assert graph.lineage(3) == [3, 2, 1]

    def test_derivation_records(self):
        catalog = VersionCatalog()
        master = OID("Video", 1)
        edit = OID("Video", 2)
        catalog.record_derivation(edit, master, source_version=3, note="rough cut")
        assert catalog.derivations_of(master)[0].derived == edit
        assert catalog.derived_from(edit).source == master
        assert catalog.derived_from(master) is None

    def test_self_derivation_rejected(self):
        catalog = VersionCatalog()
        oid = OID("Video", 1)
        with pytest.raises(VersionError):
            catalog.record_derivation(oid, oid, 1)

    def test_recovered_history_backfills(self):
        catalog = VersionCatalog()
        oid = OID("Doc", 1)
        # An object recovered at version 5 with no recorded history.
        catalog.record_update(oid, 5)
        graph = catalog.graph(oid)
        assert graph.lineage(5) == [5, 4, 3, 2, 1]
