"""Cross-cutting property-based tests on core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.avtime import Interval, ObjectTime, TimeMapping, WorldTime
from repro.codecs import JPEGCodec, MPEGCodec, RLECodec
from repro.sim import Delay, Simulator
from repro.streams.buffer import StreamBuffer
from repro.values import RawVideoValue


# -- codec roundtrips over arbitrary (small) frame content ----------------

frame_strategy = st.integers(0, 255).flatmap(
    lambda fill: st.tuples(
        st.integers(2, 4),     # frames
        st.integers(8, 24),    # height
        st.integers(8, 24),    # width
        st.just(fill),
        st.integers(0, 2**31 - 1),
    )
)


@given(frame_strategy)
@settings(max_examples=15, deadline=None)
def test_rle_lossless_on_any_video(params):
    n, h, w, fill, seed = params
    rng = np.random.default_rng(seed)
    # A mix of flat fill and sparse noise: exercises run boundaries.
    frames = np.full((n, h, w), fill, dtype=np.uint8)
    mask = rng.random((n, h, w)) < 0.1
    frames[mask] = rng.integers(0, 255, int(mask.sum()), dtype=np.uint8)
    video = RawVideoValue(frames)
    codec = RLECodec()
    assert np.array_equal(codec.decode_value(codec.encode_value(video)), frames)


@given(st.integers(1, 100), st.integers(2, 10), st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_mpeg_decode_order_independent(quality_seed, gop, seed):
    """Random access equals sequential decode for every frame."""
    rng = np.random.default_rng(seed)
    frames = (rng.integers(0, 64, (6, 16, 16), dtype=np.uint8) * 4)
    video = RawVideoValue(frames)
    codec = MPEGCodec(75, gop=gop)
    encoded = codec.encode_value(video)
    sequential = codec.decode_value(encoded)
    for i in range(6):
        assert np.array_equal(encoded.frame(i), sequential[i])


@given(st.integers(1, 100))
@settings(max_examples=20, deadline=None)
def test_jpeg_error_bounded_at_any_quality(quality):
    y, x = np.mgrid[0:16, 0:16]
    frame = ((x * 8 + y * 4) % 256).astype(np.uint8)
    codec = JPEGCodec(quality)
    decoded = codec.decode_frame(codec.encode_frame(frame), 16, 16, 8)
    error = np.abs(decoded.astype(int) - frame.astype(int)).mean()
    assert error < 64.0  # even quality=1 stays in the ballpark


# -- temporal invariants -------------------------------------------------

@given(st.floats(1.0, 120.0), st.floats(0.1, 8.0), st.floats(0.0, 100.0),
       st.integers(0, 10_000))
@settings(max_examples=50)
def test_mapping_monotone(rate, scale, start, index):
    mapping = TimeMapping(rate, WorldTime(start), scale)
    t1 = mapping.object_to_world(ObjectTime(index))
    t2 = mapping.object_to_world(ObjectTime(index + 1))
    assert t2 > t1
    assert (t2 - t1).seconds == pytest.approx(mapping.element_period().seconds)


@given(st.floats(0, 50), st.floats(0.1, 20), st.floats(0, 50), st.floats(0.1, 20))
@settings(max_examples=50)
def test_interval_intersection_inside_both(s1, d1, s2, d2):
    a = Interval(WorldTime(s1), WorldTime(d1))
    b = Interval(WorldTime(s2), WorldTime(d2))
    inter = a.intersection(b)
    assume(inter is not None)
    # Intervals store (start, duration), so reconstructing `end` can round
    # up by one ulp; bounds hold to float tolerance.
    eps = 1e-9
    assert inter.start.seconds >= a.start.seconds - eps
    assert inter.start.seconds >= b.start.seconds - eps
    assert inter.end.seconds <= a.end.seconds + eps
    assert inter.end.seconds <= b.end.seconds + eps
    assert inter.duration.seconds <= min(d1, d2) + eps


@given(st.floats(0, 50), st.floats(0.1, 20), st.floats(0.25, 4.0),
       st.floats(-10, 10))
@settings(max_examples=50)
def test_value_scale_translate_algebra(start, dur_frames, factor, delta):
    """duration(scale(v, f)) == f * duration(v); translate preserves it."""
    n = max(1, int(dur_frames))
    video = RawVideoValue(np.zeros((n, 8, 8), dtype=np.uint8), rate=10.0)
    positioned = video.translate(WorldTime(start))
    scaled = positioned.scale(factor)
    assert scaled.duration.seconds == pytest.approx(
        positioned.duration.seconds * factor
    )
    moved = scaled.translate(WorldTime(delta))
    assert moved.duration.seconds == pytest.approx(scaled.duration.seconds)
    assert (moved.start - scaled.start).seconds == pytest.approx(delta)


# -- stream buffer conservation --------------------------------------------

@given(st.lists(st.integers(0, 1000), min_size=1, max_size=60),
       st.integers(1, 8), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_buffer_conserves_and_orders(items, capacity, consumer_delay_ticks):
    """Everything put is got, exactly once, in order, under any timing."""
    sim = Simulator()
    buffer = StreamBuffer(sim, capacity)
    received = []

    def producer():
        for item in items:
            yield from buffer.put(item)

    def consumer():
        for _ in items:
            if consumer_delay_ticks:
                yield Delay(consumer_delay_ticks * 0.01)
            value = yield from buffer.get()
            received.append(value)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == items
    assert buffer.empty
    assert buffer.high_watermark <= capacity


# -- query/index agreement under random data --------------------------------

@given(st.lists(st.tuples(st.integers(0, 20), st.text("abc", min_size=1, max_size=3)),
                min_size=1, max_size=40),
       st.integers(0, 20))
@settings(max_examples=25, deadline=None)
def test_indexed_query_matches_scan(rows, pivot):
    from repro.db import AttributeSpec, ClassDef, Database, Q
    db = Database()
    db.define_class(ClassDef("Row", attributes=[
        AttributeSpec("n", int, indexed=True),
        AttributeSpec("tag", str),
    ]))
    for n, tag in rows:
        db.insert("Row", n=n, tag=tag)
    predicate = Q.le("n", pivot)
    via_index = db.select("Row", predicate)
    by_scan = [oid for oid in db.select("Row")
               if db.get(oid).n <= pivot]
    assert via_index == by_scan


# -- simulation determinism under random workloads ------------------------

@given(st.lists(st.floats(0.001, 1.0), min_size=1, max_size=10),
       st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_simulation_deterministic(delays, processes):
    def trace_run():
        sim = Simulator()
        trace = []

        def proc(pid):
            for i, d in enumerate(delays):
                yield Delay(d * (pid + 1))
                trace.append((pid, i, sim.now.seconds))

        for pid in range(processes):
            sim.spawn(proc(pid))
        sim.run()
        return trace

    assert trace_run() == trace_run()
