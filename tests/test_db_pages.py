"""Paged storage: slotted pages, LRU buffer pool, heap file with
overflow chains."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.pages import (
    PAGE_SIZE,
    BufferPool,
    HeapFile,
    Page,
    PageFile,
)
from repro.errors import DatabaseError


class TestPage:
    def test_insert_read(self):
        page = Page(0)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"
        assert page.dirty

    def test_multiple_records_independent(self):
        page = Page(0)
        slots = [page.insert(bytes([i]) * (i + 1)) for i in range(10)]
        for i, slot in enumerate(slots):
            assert page.read(slot) == bytes([i]) * (i + 1)

    def test_free_space_decreases(self):
        page = Page(0)
        before = page.free_space()
        page.insert(b"x" * 100)
        assert page.free_space() < before - 100

    def test_overflow_when_full(self):
        page = Page(0)
        page.insert(b"x" * 3000)
        with pytest.raises(DatabaseError, match="does not fit"):
            page.insert(b"y" * 3000)

    def test_delete_and_double_delete(self):
        page = Page(0)
        slot = page.insert(b"doomed")
        page.delete(slot)
        with pytest.raises(DatabaseError, match="deleted"):
            page.read(slot)
        with pytest.raises(DatabaseError, match="already deleted"):
            page.delete(slot)

    def test_live_slots(self):
        page = Page(0)
        a = page.insert(b"a")
        b = page.insert(b"b")
        page.delete(a)
        assert page.live_slots() == [b]

    def test_bad_slot(self):
        with pytest.raises(DatabaseError, match="no slot"):
            Page(0).read(0)


class TestPageFile:
    def test_allocate_write_read_roundtrip(self, tmp_path):
        pf = PageFile(tmp_path / "data.pages")
        pid = pf.allocate()
        page = Page(pid)
        page.insert(b"persisted")
        pf.write_page(page)
        pf.close()

        pf2 = PageFile(tmp_path / "data.pages")
        assert pf2.page_count == 1
        restored = pf2.read_page(pid)
        assert restored.read(0) == b"persisted"
        pf2.close()

    def test_torn_file_detected(self, tmp_path):
        path = tmp_path / "torn.pages"
        path.write_bytes(b"x" * (PAGE_SIZE + 100))
        with pytest.raises(DatabaseError, match="torn"):
            PageFile(path)

    def test_out_of_range_read(self, tmp_path):
        pf = PageFile(tmp_path / "d.pages")
        with pytest.raises(DatabaseError, match="no page"):
            pf.read_page(0)
        pf.close()


class TestBufferPool:
    def test_hit_miss_accounting(self, tmp_path):
        pf = PageFile(tmp_path / "d.pages")
        pool = BufferPool(pf, capacity=2)
        page = pool.new_page()
        pool.flush_all()
        pool.fetch(page.page_id)  # hit: still resident
        assert pool.hits == 1
        pf.close()

    def test_lru_eviction_writes_dirty_pages(self, tmp_path):
        pf = PageFile(tmp_path / "d.pages")
        pool = BufferPool(pf, capacity=2)
        first = pool.new_page()
        first.insert(b"dirty data")
        pool.new_page()
        pool.new_page()  # evicts `first` (LRU), must write it back
        assert pool.evictions >= 1
        # Re-fetch from disk: the data survived eviction.
        again = pool.fetch(first.page_id)
        assert again.read(0) == b"dirty data"
        pf.close()

    def test_pinned_pages_not_evicted(self, tmp_path):
        pf = PageFile(tmp_path / "d.pages")
        pool = BufferPool(pf, capacity=2)
        pinned = pool.new_page()
        pool.fetch(pinned.page_id, pin=True)
        pool.new_page()
        pool.new_page()  # must evict the unpinned one
        assert pinned.page_id in pool._frames
        pool.unpin(pinned.page_id)
        pf.close()

    def test_all_pinned_pool_errors(self, tmp_path):
        pf = PageFile(tmp_path / "d.pages")
        pool = BufferPool(pf, capacity=1)
        page = pool.new_page()
        pool.fetch(page.page_id, pin=True)
        with pytest.raises(DatabaseError, match="pinned"):
            pool.new_page()
        pf.close()

    def test_unpin_unpinned_errors(self, tmp_path):
        pf = PageFile(tmp_path / "d.pages")
        pool = BufferPool(pf, capacity=2)
        page = pool.new_page()
        with pytest.raises(DatabaseError, match="not pinned"):
            pool.unpin(page.page_id)
        pf.close()

    def test_invalid_capacity(self, tmp_path):
        pf = PageFile(tmp_path / "d.pages")
        with pytest.raises(DatabaseError):
            BufferPool(pf, capacity=0)
        pf.close()


class TestHeapFile:
    def test_small_records_share_pages(self, tmp_path):
        heap = HeapFile(tmp_path / "heap.pages")
        rids = [heap.insert(f"record-{i}".encode()) for i in range(50)]
        # 50 tiny records fit in very few pages.
        assert heap.page_file.page_count <= 2
        for i, rid in enumerate(rids):
            assert heap.read(rid) == f"record-{i}".encode()
        heap.close()

    def test_large_record_overflow_chain(self, tmp_path):
        heap = HeapFile(tmp_path / "heap.pages")
        blob = bytes(range(256)) * 100  # 25.6 KB: spans ~7 pages
        rid = heap.insert(blob)
        assert heap.read(rid) == blob
        assert heap.page_file.page_count >= 6
        heap.close()

    def test_two_large_records_do_not_collide(self, tmp_path):
        heap = HeapFile(tmp_path / "heap.pages")
        a = bytes([1]) * 10_000
        b = bytes([2]) * 12_000
        rid_a = heap.insert(a)
        rid_b = heap.insert(b)
        assert heap.read(rid_a) == a
        assert heap.read(rid_b) == b
        heap.close()

    def test_mixed_sizes_with_interleaved_smalls(self, tmp_path):
        heap = HeapFile(tmp_path / "heap.pages")
        rids = {}
        for i in range(20):
            if i % 4 == 0:
                payload = bytes([i]) * 9000
            else:
                payload = f"small-{i}".encode()
            rids[i] = (heap.insert(payload), payload)
        for rid, payload in rids.values():
            assert heap.read(rid) == payload
        heap.close()

    def test_delete_then_read_fails(self, tmp_path):
        heap = HeapFile(tmp_path / "heap.pages")
        rid = heap.insert(b"doomed")
        heap.delete(rid)
        with pytest.raises(DatabaseError):
            heap.read(rid)
        heap.close()

    def test_delete_large_record_clears_chain(self, tmp_path):
        heap = HeapFile(tmp_path / "heap.pages")
        rid = heap.insert(bytes(10) * 2000)  # 20 KB chain
        heap.delete(rid)
        with pytest.raises(DatabaseError):
            heap.read(rid)
        heap.close()

    def test_scan_returns_live_home_records(self, tmp_path):
        heap = HeapFile(tmp_path / "heap.pages")
        keep = heap.insert(b"keep")
        doomed = heap.insert(b"doomed")
        big = heap.insert(bytes([7]) * 9000)
        heap.delete(doomed)
        found = dict(heap.scan())
        assert found[keep] == b"keep"
        assert found[big] == bytes([7]) * 9000
        assert doomed not in found
        heap.close()

    def test_persistence_across_reopen(self, tmp_path):
        heap = HeapFile(tmp_path / "heap.pages")
        rid_small = heap.insert(b"small")
        rid_big = heap.insert(bytes([9]) * 15_000)
        heap.close()

        reopened = HeapFile(tmp_path / "heap.pages")
        assert reopened.read(rid_small) == b"small"
        assert reopened.read(rid_big) == bytes([9]) * 15_000
        reopened.close()

    def test_tiny_pool_still_correct(self, tmp_path):
        """Correct under heavy eviction pressure (capacity 2)."""
        heap = HeapFile(tmp_path / "heap.pages", pool_capacity=2)
        rids = [(heap.insert(bytes([i % 250]) * (500 + i * 40)),
                 bytes([i % 250]) * (500 + i * 40))
                for i in range(30)]
        assert heap.pool.evictions > 0
        for rid, payload in rids:
            assert heap.read(rid) == payload
        heap.close()

    @given(st.lists(st.binary(min_size=0, max_size=12_000),
                    min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, records):
        import tempfile
        with tempfile.TemporaryDirectory() as directory:
            heap = HeapFile(f"{directory}/h.pages", pool_capacity=4)
            rids = [heap.insert(record) for record in records]
            for rid, record in zip(rids, records):
                assert heap.read(rid) == record
            heap.close()
