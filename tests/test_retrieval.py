"""Query-by-example similarity retrieval (the REDI design of §2)."""

import numpy as np
import pytest

from repro.db import AttributeSpec, ClassDef, Database
from repro.errors import DatabaseError, DataModelError
from repro.retrieval import (
    FeatureIndex,
    SimilarityRetrieval,
    clip_features,
    frame_features,
)
from repro.synth import flat_video, moving_scene, noise_video
from repro.values import VideoValue


class TestFeatures:
    def test_histogram_normalized(self, gradient_frame):
        features = frame_features(gradient_frame)
        assert sum(features.histogram) == pytest.approx(1.0)
        assert 0.0 <= features.mean <= 1.0
        assert features.variance >= 0.0

    def test_identical_frames_distance_zero(self, gradient_frame):
        a = frame_features(gradient_frame)
        b = frame_features(gradient_frame.copy())
        assert a.distance(b) == pytest.approx(0.0)

    def test_different_content_distance_positive(self):
        flat = frame_features(np.full((24, 32), 128, dtype=np.uint8))
        noisy = frame_features(
            np.random.default_rng(0).integers(0, 255, (24, 32), dtype=np.uint8)
        )
        assert flat.distance(noisy) > 0.5

    def test_distance_symmetric(self, gradient_frame):
        other = np.roll(gradient_frame, 5, axis=1)
        a, b = frame_features(gradient_frame), frame_features(other)
        assert a.distance(b) == pytest.approx(b.distance(a))

    def test_size_invariance(self):
        """The same content at different resolutions has small distance."""
        small = flat_video(1, 32, 24, level=100).frame(0)
        large = flat_video(1, 128, 96, level=100).frame(0)
        assert frame_features(small).distance(frame_features(large)) < 0.05

    def test_clip_features_sampling(self, small_video):
        every = clip_features(small_video, sample_every=1)
        sampled = clip_features(small_video, sample_every=5)
        assert every.distance(sampled) < 0.3  # sampling approximates
        with pytest.raises(DataModelError):
            clip_features(small_video, sample_every=0)

    def test_rgb_frames_supported(self):
        rgb = moving_scene(2, 32, 24, color=True).frame(0)
        features = frame_features(rgb)
        assert sum(features.histogram) == pytest.approx(1.0)


class TestFeatureIndex:
    def test_rank_orders_by_distance(self, gradient_frame):
        from repro.db.objects import OID
        index = FeatureIndex()
        index.insert(OID("V", 1), "video", frame_features(gradient_frame))
        index.insert(OID("V", 2), "video",
                     frame_features(np.zeros((24, 32), dtype=np.uint8)))
        matches = index.rank(frame_features(gradient_frame))
        assert matches[0].ref == OID("V", 1)
        assert matches[0].distance < matches[1].distance

    def test_duplicate_insert_rejected(self, gradient_frame):
        from repro.db.objects import OID
        index = FeatureIndex()
        features = frame_features(gradient_frame)
        index.insert(OID("V", 1), "video", features)
        with pytest.raises(DatabaseError, match="already indexed"):
            index.insert(OID("V", 1), "video", features)

    def test_remove(self, gradient_frame):
        from repro.db.objects import OID
        index = FeatureIndex()
        index.insert(OID("V", 1), "video", frame_features(gradient_frame))
        index.remove(OID("V", 1), "video")
        assert len(index) == 0
        with pytest.raises(DatabaseError):
            index.remove(OID("V", 1), "video")


class TestQueryByExample:
    @pytest.fixture
    def retrieval(self):
        db = Database()
        db.define_class(ClassDef("Footage", attributes=[
            AttributeSpec("title", str, indexed=True),
            AttributeSpec("video", VideoValue),
        ]))
        retrieval = SimilarityRetrieval(db, sample_every=2)
        self.clips = {
            "scene-a": moving_scene(8, 48, 36, seed=1),
            "scene-b": moving_scene(8, 48, 36, seed=2),
            "flat": flat_video(8, 48, 36, level=40),
            "noise": noise_video(8, 48, 36, seed=3),
        }
        self.refs = {}
        for title, video in self.clips.items():
            ref = db.insert("Footage", title=title, video=video)
            retrieval.ingest(ref, "video")
            self.refs[title] = ref
        return retrieval

    def test_example_clip_finds_itself_first(self, retrieval):
        matches = retrieval.query_by_example(self.clips["flat"], limit=4)
        assert matches[0].ref == self.refs["flat"]
        assert matches[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_similar_scene_ranks_above_dissimilar(self, retrieval):
        # A third moving scene resembles the other moving scenes more
        # than flat or noise content.
        example = moving_scene(8, 48, 36, seed=9)
        matches = retrieval.query_by_example(example, limit=4)
        top_two = {m.ref for m in matches[:2]}
        assert top_two == {self.refs["scene-a"], self.refs["scene-b"]}

    def test_example_frame_array_works(self, retrieval):
        frame = self.clips["noise"].frame(0)
        matches = retrieval.query_by_example(frame, limit=1)
        assert matches[0].ref == self.refs["noise"]

    def test_returns_references_not_media(self, retrieval):
        matches = retrieval.query_by_example(self.clips["flat"], limit=2)
        from repro.db.objects import OID
        assert all(isinstance(m.ref, OID) for m in matches)

    def test_limit_respected(self, retrieval):
        assert len(retrieval.query_by_example(self.clips["flat"], limit=2)) == 2
        with pytest.raises(DatabaseError):
            retrieval.query_by_example(self.clips["flat"], limit=0)

    def test_ingest_non_video_rejected(self, retrieval):
        ref = retrieval.db.insert("Footage", title="no video")
        with pytest.raises(DataModelError):
            retrieval.ingest(ref, "video")

    def test_forget(self, retrieval):
        retrieval.forget(self.refs["noise"], "video")
        matches = retrieval.query_by_example(self.clips["noise"], limit=4)
        assert all(m.ref != self.refs["noise"] for m in matches)
