"""The paged object store: bounded memory, WAL recovery over the heap."""

import numpy as np
import pytest

from repro.db import AttributeSpec, ClassDef, Database, Q
from repro.db.pagedstore import PagedObjectStore
from repro.errors import ObjectNotFoundError, SchemaError
from repro.synth import moving_scene
from repro.values import VideoValue


def doc_class():
    return ClassDef("Doc", attributes=[
        AttributeSpec("name", str, indexed=True),
        AttributeSpec("body", str),
    ])


def open_db(path, pool_capacity=16):
    db = Database(str(path), paged=True, pool_capacity=pool_capacity)
    db.define_class(doc_class())
    db.rebuild_indexes()
    return db


class TestPagedDatabase:
    def test_basic_crud(self, tmp_path):
        db = open_db(tmp_path)
        oid = db.insert("Doc", name="a", body="hello")
        assert db.get(oid).body == "hello"
        db.update(oid, body="world")
        assert db.get(oid).body == "world"
        db.delete(oid)
        with pytest.raises(ObjectNotFoundError):
            db.get(oid)
        db.close()

    def test_requires_directory(self):
        with pytest.raises(SchemaError, match="directory"):
            Database(paged=True)

    def test_recovery_after_close(self, tmp_path):
        db = open_db(tmp_path)
        oid1 = db.insert("Doc", name="one")
        oid2 = db.insert("Doc", name="two")
        db.update(oid1, body="edited")
        db.delete(oid2)
        db.close()

        recovered = open_db(tmp_path)
        assert recovered.get(oid1).body == "edited"
        assert not recovered.exists(oid2)
        recovered.close()

    def test_recovery_is_idempotent_after_flush(self, tmp_path):
        """Heap flushed + WAL intact: replay must not duplicate objects."""
        db = open_db(tmp_path)
        oid = db.insert("Doc", name="a")
        db._store._heap.pool.flush_all()  # effects reach the heap...
        db._store._wal_file.close()       # ...but the WAL is NOT truncated
        db._store._heap.close()

        recovered = open_db(tmp_path)
        assert len(recovered) == 1
        assert recovered.get(oid).name == "a"
        # Exactly one live record for the OID in the heap.
        live = [o for _, o in recovered._store._heap.scan()]
        assert len(live) == 1
        recovered.close()

    def test_checkpoint_truncates_wal(self, tmp_path):
        db = open_db(tmp_path)
        db.insert("Doc", name="pre")
        db.checkpoint()
        oid = db.insert("Doc", name="post")
        db.close()

        recovered = open_db(tmp_path)
        assert recovered._store.recovered_records == 1  # only post-checkpoint
        assert len(recovered) == 2
        recovered.close()

    def test_serials_survive(self, tmp_path):
        db = open_db(tmp_path)
        old = db.insert("Doc", name="old")
        db.close()
        recovered = open_db(tmp_path)
        new = recovered.insert("Doc", name="new")
        assert new.serial > old.serial
        recovered.close()

    def test_queries_and_indexes(self, tmp_path):
        db = open_db(tmp_path)
        oid = db.insert("Doc", name="findme")
        assert db.select("Doc", Q.eq("name", "findme")) == [oid]
        db.close()
        recovered = open_db(tmp_path)
        assert recovered.select("Doc", Q.eq("name", "findme")) == [oid]
        recovered.close()

    def test_large_media_objects_page_out(self, tmp_path):
        """Objects bigger than one page round-trip through overflow
        chains, with a pool far smaller than the data."""
        db = Database(str(tmp_path), paged=True, pool_capacity=4)
        db.define_class(ClassDef("Clip", attributes=[
            AttributeSpec("video", VideoValue),
        ]))
        videos = [moving_scene(6, 32, 24, seed=i) for i in range(8)]
        oids = [db.insert("Clip", video=v) for v in videos]
        store: PagedObjectStore = db._store
        assert store.pool.evictions > 0  # really paging
        for oid, video in zip(oids, videos):
            restored = db.get(oid).video
            assert np.array_equal(restored.frames_array, video.frames_array)
        db.close()

    def test_transactions_work_over_paged_store(self, tmp_path):
        db = open_db(tmp_path)
        with db.begin() as tx:
            oid = tx.insert("Doc", name="tx")
            tx.update(oid, body="buffered")
        assert db.get(oid).body == "buffered"
        # Abort leaves nothing.
        tx2 = db.begin()
        doomed = tx2.insert("Doc", name="no")
        tx2.abort()
        assert not db.exists(doomed)
        db.close()

    def test_update_reclaims_heap_space(self, tmp_path):
        db = open_db(tmp_path)
        oid = db.insert("Doc", name="x", body="v1")
        for i in range(5):
            db.update(oid, body=f"v{i + 2}")
        # Only one live record remains despite 6 versions written.
        live = [o for _, o in db._store._heap.scan()]
        assert len(live) == 1
        db.close()


class TestVacuum:
    def test_vacuum_reclaims_dead_space(self, tmp_path):
        db = open_db(tmp_path, pool_capacity=8)
        oids = [db.insert("Doc", name=f"d{i}", body="x" * 2000)
                for i in range(20)]
        for oid in oids[:15]:
            db.delete(oid)
        store = db._store
        saved = store.vacuum()
        assert saved > 0
        # Survivors still readable after compaction re-pointed the map.
        for oid in oids[15:]:
            assert db.get(oid).name.startswith("d")
        db.close()

    def test_vacuum_preserves_large_records(self, tmp_path):
        import numpy as np
        from repro.synth import moving_scene
        db = Database(str(tmp_path), paged=True, pool_capacity=8)
        db.define_class(ClassDef("Clip", attributes=[
            AttributeSpec("video", VideoValue),
        ]))
        videos = [moving_scene(5, 32, 24, seed=i) for i in range(4)]
        oids = [db.insert("Clip", video=v) for v in videos]
        db.delete(oids[1])
        db._store.vacuum()
        for oid, video in ((oids[0], videos[0]), (oids[2], videos[2]),
                           (oids[3], videos[3])):
            assert np.array_equal(db.get(oid).video.frames_array,
                                  video.frames_array)
        db.close()

    def test_updates_work_after_vacuum(self, tmp_path):
        db = open_db(tmp_path)
        oid = db.insert("Doc", name="survivor")
        db.insert("Doc", name="casualty")
        db.delete(db.select("Doc", Q.eq("name", "casualty"))[0])
        db._store.vacuum()
        db.update(oid, body="post-vacuum edit")
        assert db.get(oid).body == "post-vacuum edit"
        db.close()

    def test_recovery_after_vacuum_and_checkpoint(self, tmp_path):
        db = open_db(tmp_path)
        keep = db.insert("Doc", name="keep")
        drop = db.insert("Doc", name="drop")
        db.delete(drop)
        db._store.vacuum()
        db.checkpoint()
        post = db.insert("Doc", name="post")
        db.close()
        recovered = open_db(tmp_path)
        assert recovered.get(keep).name == "keep"
        assert recovered.get(post).name == "post"
        assert len(recovered) == 2
        recovered.close()
