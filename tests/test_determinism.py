"""Byte-identity guards for the hot-path optimization work.

``tests/golden/trace_hashes.json`` holds SHA-256 hashes of the
*canonical* Chrome-trace export (wall-clock stamps stripped, keys
sorted) for the quickstart, faults, and overload scenarios, captured on
the pre-optimization kernel.  If any kernel/dataplane change perturbs
the schedule — event order, virtual timestamps, or metric totals — the
exported bytes change and these tests fail.  That is what "preserving
epoch semantics and (time, seq) determinism exactly" means, made
executable.

The hashes cover the metrics snapshot too, so an *intentional* snapshot
format change (e.g. the histogram ``sum``/percentile fields) requires
regenerating ``trace_hashes.json`` from the new format — a deliberate,
reviewed step, unlike a schedule perturbation.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.obs import canonical_trace_bytes, scoped
from repro.obs.scenarios import SCENARIOS
from repro.sim import Delay, Simulator, Timeout

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "trace_hashes.json").read_text()
)


def _run_canonical(name: str) -> bytes:
    with scoped(tracing=True) as obs:
        SCENARIOS[name]()
        return canonical_trace_bytes(obs.tracer, obs.metrics)


class TestGoldenTraces:
    """Scenario traces must match the pre-optimization bytes exactly."""

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_trace_matches_pre_optimization_hash(self, name):
        digest = hashlib.sha256(_run_canonical(name)).hexdigest()
        assert digest == GOLDEN[name], (
            f"canonical trace for {name!r} diverged from the "
            f"pre-optimization kernel — the schedule or metric totals "
            f"changed"
        )

    def test_rerun_is_byte_identical(self):
        assert _run_canonical("quickstart") == _run_canonical("quickstart")


class TestCompactionEquivalence:
    """Lazy heap compaction must be invisible in every observable."""

    @staticmethod
    def _timeout_storm(threshold):
        sim = Simulator()
        sim.compact_threshold = threshold

        def waiter(ev):
            try:
                yield Timeout(ev, 1000.0)
            except Exception:
                pass

        def firer(evs):
            for ev in evs:
                yield Delay(0.001)
                ev.trigger("x")

        events = [sim.event(f"e{i}") for i in range(2000)]
        for i, ev in enumerate(events):
            sim.spawn(waiter(ev), f"w{i}")
        sim.spawn(firer(events), "firer")
        end = sim.run()
        return end.seconds, sim._m_dispatched.value, sim.heap_compactions

    def test_compaction_preserves_clock_and_dispatch_count(self):
        t_plain, n_plain, c_plain = self._timeout_storm(10**9)
        t_compact, n_compact, c_compact = self._timeout_storm(64)
        assert c_plain == 0
        assert c_compact > 0, "compaction never triggered under the storm"
        assert t_plain == t_compact
        assert n_plain == n_compact

    def test_stale_count_settles_to_zero(self):
        # The event wins the race, so each Timeout leaves one stale
        # throw-timer in the heap; draining the run must pop (and
        # account) every one of them.
        sim = Simulator()
        ev = sim.event("go")

        def waiter():
            got = yield Timeout(ev, 0.5)
            return got

        def firer():
            yield Delay(0.1)
            ev.trigger("won")

        procs = [sim.spawn(waiter(), f"w{i}") for i in range(10)]
        sim.spawn(firer(), "firer")
        sim.run()
        assert all(p.result == "won" for p in procs)
        assert sim._stale == 0
        assert not sim._compacted
        assert sim.now.seconds == 0.5  # stale timers still advanced the clock
