"""Shared fixtures: a DES kernel and small synthetic media values."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import Simulator
from repro.synth import moving_scene, newscast_clip, noise_video, tone
from repro.values import RawAudioValue, RawVideoValue


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_video() -> RawVideoValue:
    """10 frames of 32x24 coherent video at 30 fps."""
    return moving_scene(num_frames=10, width=32, height=24, seed=1)


@pytest.fixture
def small_noise() -> RawVideoValue:
    return noise_video(num_frames=10, width=32, height=24, seed=1)


@pytest.fixture
def small_audio() -> RawAudioValue:
    """Half a second of 8 kHz mono tone."""
    return tone(seconds=0.5, frequency_hz=440.0, sample_rate=8000.0)


@pytest.fixture
def clip():
    """A small 4-track Newscast clip."""
    return newscast_clip(video_frames=10, audio_seconds=0.4, seed=2)


@pytest.fixture
def gradient_frame() -> np.ndarray:
    y, x = np.mgrid[0:24, 0:32]
    return ((x * 8 + y) % 256).astype(np.uint8)
