"""Cross-subsystem integration: the two §3.2 scenarios end to end, plus
claims that span several layers (compression vs. transfer, jukebox path,
quality-factor service)."""

import numpy as np

from repro.activities import Location
from repro.activities.library import VideoDigitizer
from repro.avdb import AVDatabaseSystem
from repro.avtime import WorldTime
from repro.codecs import MPEGCodec
from repro.db import AttributeSpec, ClassDef, Q
from repro.hypermedia import HypermediaBase
from repro.quality import parse_quality, scale_video_quality, VideoQuality
from repro.storage import JukeboxDevice, MagneticDisk
from repro.synth import (
    NEWSCAST_CLIP_SPEC,
    analog_master,
    jingle,
    moving_scene,
    newscast_clip,
)
from repro.values import VideoValue


class TestCorporateScenario:
    """Scenario I: the corporate AV database with hypermedia access."""

    def build(self):
        system = AVDatabaseSystem()
        system.add_storage(MagneticDisk(system.simulator, "disk0"))
        system.db.define_class(ClassDef("Document", attributes=[
            AttributeSpec("name", str, indexed=True),
            AttributeSpec("body", str),
        ]))
        system.db.define_class(ClassDef("Presentation", attributes=[
            AttributeSpec("title", str, indexed=True),
            AttributeSpec("presenter", str),
            AttributeSpec("keywords", list, keyword_indexed=True),
            AttributeSpec("video", VideoValue),
        ]))
        return system

    def test_document_link_to_video_playback(self):
        system = self.build()
        video = moving_scene(12, 48, 36)
        system.store_value(video, "disk0")
        presentation = system.db.insert(
            "Presentation", title="Project Kickoff", presenter="S. Gibbs",
            keywords=["kickoff", "demo"], video=video,
        )
        document = system.db.insert("Document", name="project plan",
                                    body="See the kickoff presentation.")
        hypermedia = HypermediaBase(system.db)
        hypermedia.link(document, "kickoff presentation", presentation,
                        media_path="video", cue=WorldTime(0.2))

        # A user reads the document, follows the link and plays the video
        # from the linked cue point.
        session = system.open_session("editor-workstation")
        link = hypermedia.follow(document, "kickoff presentation")
        target = session.fetch(link.target)
        source = session.new_db_source((link.target, link.media_path))
        source.cue(link.cue)
        window = session.new_video_window("320x240x8@30")
        stream = session.connect(source, window)
        stream.start()
        session.run()
        assert target.presenter == "S. Gibbs"
        assert len(window.presented) == 6  # cue skipped the first 6 frames

    def test_content_based_retrieval_then_playback(self):
        system = self.build()
        for i, keywords in enumerate((["demo"], ["budget"], ["demo", "q3"])):
            video = moving_scene(4, 32, 24, seed=i)
            system.store_value(video, "disk0")
            system.db.insert("Presentation", title=f"p{i}",
                             presenter="x", keywords=keywords, video=video)
        session = system.open_session()
        hits = session.select("Presentation", Q.contains("keywords", "demo"))
        assert len(hits) == 2

    def test_editing_produces_versioned_derivative(self):
        from repro.editing import EditDecisionList
        system = self.build()
        video = moving_scene(12, 32, 24)
        system.store_value(video, "disk0")
        master_oid = system.db.insert("Presentation", title="master",
                                      presenter="x", keywords=[], video=video)
        edl = EditDecisionList()
        edl.append(video, 2, 8)
        rough_cut = edl.render()
        system.store_value(rough_cut, "disk0")
        cut_oid = system.db.insert("Presentation", title="rough cut",
                                   presenter="x", keywords=[], video=rough_cut)
        system.db.versions.record_derivation(cut_oid, master_oid, 1, "EDL cut")
        derivation = system.db.versions.derived_from(cut_oid)
        assert derivation.source == master_oid
        assert system.db.get(cut_oid).video.num_frames == 6


class TestJukeboxPath:
    def test_analog_value_digitized_from_jukebox(self):
        """LV value on a jukebox: disc swap + digitizer activity."""
        system = AVDatabaseSystem()
        jukebox = JukeboxDevice(system.simulator, swap_s=2.0, seek_s=0.1)
        system.add_storage(jukebox)
        master = analog_master(6, 32, 24)
        system.store_value(master, "jukebox")
        jukebox.load_disc(5)

        session = system.open_session()
        source = session.new_db_source(master)
        assert isinstance(source, VideoDigitizer)
        window = session.new_video_window()
        stream = session.connect(source, window)
        stream.start()
        session.run()
        assert len(window.presented) == 6
        # The stream start paid the swap + seek before the first frame.
        first_latency = window.log.records[0].latency.seconds
        assert first_latency >= 2.0


class TestCompressionClaim:
    """§4 footnote: 'by exchanging compressed AV data, transfer durations
    can be reduced' — measured across codec + channel layers."""

    def transfer_seconds(self, value, channel_bps=2_000_000.0):
        system = AVDatabaseSystem()
        system.readahead = 100.0  # bulk read: not paced at playback rate
        system.add_storage(MagneticDisk(system.simulator, "disk0"))
        system.store_value(value, "disk0")
        session = system.open_session(channel_bps=channel_bps)
        source = session.new_db_source(value, deliver="stored")
        # Bulk transfer: grab the whole channel, stream as fast as it goes.
        if value.media_type.compressed:
            from repro.activities.library import VideoDecoder
            decoder = session.new_activity(VideoDecoder(
                system.simulator, value.codec, value.width, value.height,
                value.depth, location=Location.APPLICATION))
            window = session.new_video_window()
            s1 = session.connect(source, decoder.port("video_in"),
                                 bandwidth_bps=channel_bps)
            s2 = session.connect(decoder.port("video_out"), window)
            source.paced = False
            window.paced = False
            s1.start()
            s2.start()
        else:
            window = session.new_video_window()
            stream = session.connect(source, window,
                                     bandwidth_bps=channel_bps)
            source.paced = False
            window.paced = False
            stream.start()
        end = session.run()
        assert len(window.presented) == value.num_frames
        return end.seconds

    def test_compressed_transfer_faster_on_slow_channel(self):
        raw = moving_scene(10, 64, 48)
        compressed = MPEGCodec(75).encode_value(raw)
        t_raw = self.transfer_seconds(raw)
        t_compressed = self.transfer_seconds(compressed)
        assert t_compressed < t_raw / 2


class TestQualityFactorService:
    def test_stored_high_quality_served_lower(self):
        """C5 path: scalable service — drop frames and subsample pixels."""
        stored_value = moving_scene(30, 64, 48)  # 30 fps
        stored_quality = VideoQuality(64, 48, 8, 30.0)
        requested = parse_quality("32x24x8@15")
        plan = scale_video_quality(stored_quality, requested)
        served_frames = stored_value.frames_array[::plan.frame_keep_every,
                                                  ::plan.spatial_divisor,
                                                  ::plan.spatial_divisor]
        assert served_frames.shape == (15, 24, 32)
        served_bits = served_frames.size * 8
        full_bits = stored_value.data_size_bits()
        assert served_bits <= full_bits / 7  # 2x rate * 4x pixels

    def test_window_quality_enforced_at_sink(self):
        system = AVDatabaseSystem()
        system.add_storage(MagneticDisk(system.simulator, "disk0"))
        video = moving_scene(5, 64, 48)
        system.store_value(video, "disk0")
        session = system.open_session()
        source = session.new_db_source(video)
        window = session.new_video_window("32x24x8@30")
        stream = session.connect(source, window)
        stream.start()
        session.run()
        assert window.presented[0].shape == (24, 32)


class TestAlternateRepresentation:
    def test_midi_to_speaker_through_session(self):
        """Stored MIDI, synthesized at the database, streamed as PCM."""
        from repro.activities.library import MIDISource, Speaker
        system = AVDatabaseSystem()
        session = system.open_session()
        source = session.new_activity(
            MIDISource(system.simulator, location=Location.DATABASE)
        )
        source.bind(jingle())
        speaker = session.new_speaker("voice")
        stream = session.connect(source, speaker)
        stream.start()
        session.run()
        assert np.abs(speaker.pcm()).max() > 1000
        assert stream.bits_transferred > 0
