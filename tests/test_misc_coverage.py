"""Directed tests for paths the feature suites don't hit head-on:
disconnect/teardown, EOS ordering over latency, event un-subscription,
composite cue propagation, negotiation edge cases."""

import pytest

from repro.activities import (
    ActivityGraph,
    EVENT_EACH_FRAME,
    MultiSink,
    MultiSource,
)
from repro.activities.library import Speaker, VideoReader, VideoWindow
from repro.activities.ports import Connection
from repro.avtime import Interval, WorldTime
from repro.errors import ActivityError, ConnectionError_, PlacementError
from repro.net import Channel
from repro.streams.element import END_OF_STREAM, EndOfStream
from repro.synth import moving_scene, newscast_clip


class TestConnectionTeardown:
    def test_disconnect_frees_ports_and_reservation(self, sim, small_video):
        channel = Channel(sim, capacity_bps=10_000_000)
        reservation = channel.reserve(1_000_000)
        reader = VideoReader(sim)
        reader.bind(small_video)
        window = VideoWindow(sim)
        connection = Connection(sim, reader.port("video_out"),
                                window.port("video_in"),
                                reservation=reservation)
        connection.disconnect()
        assert not reader.port("video_out").connected
        assert not window.port("video_in").connected
        assert reservation.released
        assert channel.available_bps == channel.capacity_bps
        # Ports are reusable after disconnect.
        Connection(sim, reader.port("video_out"), window.port("video_in"))

    def test_eos_ordering_over_latency_path(self, sim, small_video):
        """EOS rides the delayed-delivery path: it must arrive after the
        last element even with propagation latency."""
        channel = Channel(sim, capacity_bps=1e9, latency_s=0.02)
        reservation = channel.reserve(1e8)
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim))
        reader.bind(small_video)
        window = graph.add(VideoWindow(sim))
        graph.connect(reader.port("video_out"), window.port("video_in"),
                      reservation=reservation)
        graph.run_to_completion()
        assert len(window.presented) == small_video.num_frames


class TestEventDispatcher:
    def test_uncatch_stops_delivery(self, sim, small_video):
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim))
        reader.bind(small_video)
        window = graph.add(VideoWindow(sim))
        graph.connect(reader.port("video_out"), window.port("video_in"))
        seen = []
        handler = lambda a, e, p: seen.append(p)
        reader.catch(EVENT_EACH_FRAME, handler)
        reader.events.uncatch(EVENT_EACH_FRAME, handler)
        graph.run_to_completion()
        assert seen == []
        assert reader.events.emit_counts[EVENT_EACH_FRAME] == 10

    def test_uncatch_unregistered_rejected(self, sim):
        reader = VideoReader(sim)
        with pytest.raises(ActivityError, match="not registered"):
            reader.events.uncatch(EVENT_EACH_FRAME, lambda a, e, p: None)


class TestCompositeCue:
    def test_cue_propagates_to_components(self, sim):
        clip = newscast_clip(video_frames=12, audio_seconds=0.4)
        source = MultiSource(sim, name="s")
        video_reader = VideoReader(sim, name="vr")
        video_reader.bind(clip.value("videoTrack"))
        source.install(video_reader, track="videoTrack")
        source.cue(WorldTime(0.2))
        assert video_reader.cue_position == WorldTime(0.2)


class TestEndOfStreamSentinel:
    def test_singleton(self):
        assert EndOfStream() is END_OF_STREAM
        assert repr(END_OF_STREAM) == "END_OF_STREAM"


class TestConnectCompositesFailure:
    def test_no_matching_in_port(self, sim, small_video):
        source = MultiSource(sim, name="src")
        reader = VideoReader(sim, name="r")
        reader.bind(small_video)
        source.install(reader, track="videoTrack")
        sink = MultiSink(sim, name="snk")
        speaker = Speaker(sim, name="sp")  # audio-only sink
        sink.install(speaker, track="audioTrack")
        graph = ActivityGraph(sim)
        graph.add(source)
        graph.add(sink)
        with pytest.raises(ConnectionError_, match="no in-port"):
            graph.connect_composites(source, sink)

    def test_empty_source_rejected(self, sim):
        from repro.errors import GraphError
        source = MultiSource(sim)
        sink = MultiSink(sim)
        graph = ActivityGraph(sim)
        graph.add(source)
        graph.add(sink)
        with pytest.raises(GraphError, match="exports no out ports"):
            graph.connect_composites(source, sink)


class TestPlacementEdges:
    def test_copy_with_no_bandwidth_fails_cleanly(self, sim):
        from repro.storage import MagneticDisk, PlacementManager
        manager = PlacementManager(sim)
        video = moving_scene(5)
        src = MagneticDisk(sim, "src")
        dst = MagneticDisk(sim, "dst")
        manager.add_device(src)
        manager.add_device(dst)
        manager.place(video, "src")
        dst.reserve(dst.bandwidth_bps)  # saturate the destination
        used_before = dst.allocator.used_bytes

        def copier():
            yield from manager.copy(video, "dst")

        proc = sim.spawn(copier())
        with pytest.raises(PlacementError, match="no streaming bandwidth"):
            sim.run_until_complete(proc)
        # The pre-allocated destination extent was rolled back.
        assert dst.allocator.used_bytes == used_before
        assert manager.device_of(video).name == "src"

    def test_duplicate_device_rejected(self, sim):
        from repro.storage import MagneticDisk, PlacementManager
        manager = PlacementManager(sim)
        manager.add_device(MagneticDisk(sim, "d"))
        with pytest.raises(PlacementError, match="already registered"):
            manager.add_device(MagneticDisk(sim, "d"))


class TestIntervalEdges:
    def test_is_empty_and_union(self):
        empty = Interval(WorldTime(1.0), WorldTime(0.0))
        assert empty.is_empty()
        other = Interval(WorldTime(3.0), WorldTime(1.0))
        assert empty.union_span(other) == Interval.between(WorldTime(1.0),
                                                           WorldTime(4.0))


class TestQualityEdges:
    def test_scale_reduces_depth_when_requested(self):
        from repro.quality import VideoQuality, scale_video_quality
        stored = VideoQuality(64, 48, 24, 30.0)
        plan = scale_video_quality(stored, VideoQuality(64, 48, 8, 30.0))
        assert plan.delivered.depth == 8


class TestSessionMisc:
    def test_subtitle_window_and_jittered_source(self):
        from repro.avdb import AVDatabaseSystem
        from repro.streams.sync import RandomWalkJitter
        from repro.synth import subtitle_track
        system = AVDatabaseSystem()
        session = system.open_session()
        source = session.new_db_source(
            subtitle_track(["a", "b"], rate=2.0),
            jitter=RandomWalkJitter(step=0.001, seed=1),
        )
        window = session.new_subtitle_window()
        session.connect(source, window).start()
        session.run()
        assert window.texts() == ["a", "b"]

    def test_connect_rejects_multi_port_activity_without_port(self, sim):
        from repro.avdb import AVDatabaseSystem
        from repro.activities.library import VideoMixer
        from repro.errors import SessionError
        system = AVDatabaseSystem()
        session = system.open_session()
        mixer = session.new_activity(VideoMixer(system.simulator))
        window = session.new_video_window()
        with pytest.raises(SessionError, match="pass the port explicitly"):
            session.connect(window, mixer)  # mixer has 2 in ports
