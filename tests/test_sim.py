"""The DES kernel: delays, events, subroutines, resources, determinism."""

import pytest

from repro.avtime import WorldTime
from repro.errors import DeadlineExceeded, FaultError, Interrupted, SimulationError
from repro.sim import (
    Acquire,
    Delay,
    Release,
    SimResource,
    Simulator,
    Timeout,
    WaitEvent,
    WaitProcess,
)


class TestDelays:
    def test_delay_advances_clock(self, sim):
        log = []

        def proc():
            yield Delay(1.5)
            log.append(sim.now.seconds)
            yield Delay(0.5)
            log.append(sim.now.seconds)

        sim.spawn(proc())
        sim.run()
        assert log == [1.5, 2.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Delay(-1.0)

    def test_run_until_limit(self, sim):
        ticks = []

        def ticker():
            for _ in range(100):
                yield Delay(1.0)
                ticks.append(sim.now.seconds)

        sim.spawn(ticker())
        end = sim.run(until=WorldTime(5.5))
        assert end == WorldTime(5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_zero_delay_keeps_fifo_order(self, sim):
        order = []

        def make(name):
            def proc():
                yield Delay(0.0)
                order.append(name)
            return proc()

        for name in "abc":
            sim.spawn(make(name))
        sim.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_trigger_wakes_waiter_with_payload(self, sim):
        event = sim.event("go")
        got = []

        def waiter():
            payload = yield WaitEvent(event)
            got.append((payload, sim.now.seconds))

        def firer():
            yield Delay(2.0)
            event.trigger("hello")

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert got == [("hello", 2.0)]

    def test_late_waiter_resumes_immediately(self, sim):
        event = sim.event()
        event.trigger(42)
        got = []

        def late():
            value = yield WaitEvent(event)
            got.append(value)

        sim.spawn(late())
        sim.run()
        assert got == [42]

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.trigger()
        with pytest.raises(SimulationError):
            event.trigger()


class TestProcesses:
    def test_wait_process_gets_return_value(self, sim):
        def worker():
            yield Delay(1.0)
            return "result"

        def waiter(proc):
            value = yield WaitProcess(proc)
            return value

        worker_proc = sim.spawn(worker())
        waiter_proc = sim.spawn(waiter(worker_proc))
        assert sim.run_until_complete(waiter_proc) == "result"

    def test_subroutine_generators(self, sim):
        def helper(n):
            yield Delay(n)
            return n * 2

        def main():
            a = yield helper(1.0)
            b = yield helper(2.0)
            return a + b

        proc = sim.spawn(main())
        assert sim.run_until_complete(proc) == 6
        assert sim.now.seconds == 3.0

    def test_process_error_propagates_from_run(self, sim):
        def bad():
            yield Delay(1.0)
            raise ValueError("boom")

        sim.spawn(bad())
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_unsupported_yield_is_error(self, sim):
        def bad():
            yield 42

        sim.spawn(bad())
        with pytest.raises(SimulationError, match="unsupported command"):
            sim.run()

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)  # type: ignore[arg-type]

    def test_deadlock_detected_by_run_until_complete(self, sim):
        event = sim.event()

        def stuck():
            yield WaitEvent(event)

        proc = sim.spawn(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_complete(proc)


class TestScheduleAt:
    def test_callable_runs_at_time(self, sim):
        fired = []
        sim.schedule_at(WorldTime(3.0), lambda: fired.append(sim.now.seconds))
        sim.run()
        assert fired == [3.0]

    def test_cannot_schedule_in_past(self, sim):
        sim.schedule_at(WorldTime(1.0), lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(WorldTime(0.5), lambda: None)


class TestResources:
    def test_capacity_enforced_with_queueing(self, sim):
        resource = SimResource(sim, capacity=1, name="device")
        order = []

        def user(name, hold):
            yield Acquire(resource)
            order.append((name, "got", sim.now.seconds))
            yield Delay(hold)
            yield Release(resource)

        sim.spawn(user("a", 2.0))
        sim.spawn(user("b", 1.0))
        sim.run()
        assert order == [("a", "got", 0.0), ("b", "got", 2.0)]
        assert resource.wait_count == 1

    def test_multi_unit_acquire(self, sim):
        resource = SimResource(sim, capacity=3)
        got = []

        def user(units, hold):
            yield Acquire(resource, units)
            got.append((units, sim.now.seconds))
            yield Delay(hold)
            yield Release(resource, units)

        sim.spawn(user(2, 1.0))
        sim.spawn(user(2, 1.0))  # must wait for first
        sim.run()
        assert got == [(2, 0.0), (2, 1.0)]

    def test_over_capacity_acquire_rejected(self, sim):
        resource = SimResource(sim, capacity=2)

        def greedy():
            yield Acquire(resource, 3)

        sim.spawn(greedy())
        with pytest.raises(SimulationError):
            sim.run()

    def test_release_more_than_held_rejected(self, sim):
        resource = SimResource(sim, capacity=2)

        def bad():
            yield Acquire(resource, 1)
            yield Release(resource, 2)

        sim.spawn(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            SimResource(sim, capacity=0)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            simulator = Simulator()
            trace = []

            def proc(name, period):
                for _ in range(5):
                    yield Delay(period)
                    trace.append((name, simulator.now.seconds))

            simulator.spawn(proc("x", 0.3))
            simulator.spawn(proc("y", 0.5))
            simulator.run()
            return trace

        assert build_and_run() == build_and_run()


class TestKernelMetrics:
    """The kernel publishes sim.* metrics on every run (no opt-in)."""

    def test_dispatch_and_process_counters(self, sim):
        def proc():
            yield Delay(0.5)
            yield Delay(0.5)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        metrics = sim.obs.metrics
        assert metrics.counter("sim.events_dispatched").value > 0
        assert metrics.counter("sim.processes_spawned").value == 2
        assert metrics.counter("sim.processes_finished").value == 2
        assert metrics.counter("sim.process_failures").value == 0

    def test_failure_counter(self, sim):
        def bad():
            yield Delay(0.1)
            raise RuntimeError("boom")

        sim.spawn(bad())
        with pytest.raises(RuntimeError):
            sim.run()
        assert sim.obs.metrics.counter("sim.process_failures").value == 1

    def test_resource_wait_histogram(self, sim):
        resource = SimResource(sim, capacity=1)

        def holder():
            yield Acquire(resource)
            yield Delay(2.0)
            yield Release(resource)

        def waiter():
            yield Delay(0.5)     # arrive while the holder has the unit
            yield Acquire(resource)
            yield Release(resource)

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        metrics = sim.obs.metrics
        wait = metrics.histogram("sim.resource_wait_s")
        assert wait.count == 2                       # one per grant
        assert wait.max == pytest.approx(1.5)        # waiter queued 0.5 -> 2.0
        assert metrics.counter("sim.resource_grants").value == 2
        assert metrics.counter("sim.resource_waits").value == 1


class TestFaultPrimitives:
    """interrupt(), abandon() and Timeout — the kernel surface the fault
    injector is built on."""

    def test_interrupt_is_catchable_at_the_yield_point(self, sim):
        log = []

        def proc():
            try:
                yield Delay(10.0)
            except Interrupted:
                log.append(sim.now.seconds)
                yield Delay(1.0)       # the process may carry on afterwards
                log.append(sim.now.seconds)

        process = sim.spawn(proc())
        sim.schedule_at(WorldTime(2.0), process.interrupt)
        sim.run()
        assert log == [pytest.approx(2.0), pytest.approx(3.0)]
        assert process.done and process.error is None

    def test_uncaught_interrupt_is_a_fault_not_a_failure(self, sim):
        def proc():
            yield Delay(10.0)

        process = sim.spawn(proc())
        sim.schedule_at(WorldTime(1.0), process.interrupt)
        sim.run()                       # must NOT raise
        assert isinstance(process.error, Interrupted)
        metrics = sim.obs.metrics
        assert metrics.counter("sim.process_faults").value == 1
        assert metrics.counter("sim.process_failures").value == 0

    def test_stale_wakeup_is_discarded_after_interrupt(self, sim):
        # The epoch mechanism: a trigger registered before the interrupt
        # must not resume the process out of a *later* suspension.
        event = sim.event("stale")
        log = []

        def proc():
            try:
                yield WaitEvent(event)
                log.append("event")
            except Interrupted:
                log.append("interrupted")
            yield Delay(5.0)
            log.append("slept")

        process = sim.spawn(proc())
        sim.schedule_at(WorldTime(1.0), process.interrupt)
        sim.schedule_at(WorldTime(2.0), event.trigger)   # lands mid-Delay
        end = sim.run()
        assert log == ["interrupted", "slept"]
        assert end.seconds == pytest.approx(6.0)         # Delay ran in full

    def test_abandon_wedges_without_completing(self, sim):
        def proc():
            yield Delay(10.0)
            return "never"

        process = sim.spawn(proc())
        assert sim.live_processes == 1
        process.abandon()
        assert sim.live_processes == 0
        sim.run()
        assert process.abandoned and not process.done
        assert sim.obs.metrics.counter("sim.process_faults").value == 1

    def test_timeout_passes_payload_when_target_is_in_time(self, sim):
        event = sim.event("prompt")
        sim.schedule_at(WorldTime(0.5), lambda: event.trigger("payload"))

        def proc():
            return (yield Timeout(event, 1.0))

        assert sim.run_until_complete(sim.spawn(proc())) == "payload"

    def test_timeout_raises_when_deadline_passes_first(self, sim):
        event = sim.event("tardy")
        sim.schedule_at(WorldTime(2.0), event.trigger)
        when = []

        def proc():
            try:
                yield Timeout(event, 1.0)
            except DeadlineExceeded:
                when.append(sim.now.seconds)

        sim.spawn(proc())
        sim.run()
        assert when == [pytest.approx(1.0)]

    def test_waitprocess_reraises_child_fault_in_watcher(self, sim):
        def child():
            yield Delay(1.0)
            raise FaultError("injected")

        child_proc = sim.spawn(child())

        def parent():
            try:
                yield WaitProcess(child_proc)
            except FaultError as exc:
                return f"caught: {exc}"

        parent_proc = sim.spawn(parent())
        sim.run()
        assert parent_proc.result == "caught: injected"

    def test_subroutine_exception_propagates_to_caller(self, sim):
        def sub():
            yield Delay(0.5)
            raise FaultError("inner")

        def proc():
            try:
                yield sub()
            except FaultError:
                return "handled"

        assert sim.run_until_complete(sim.spawn(proc())) == "handled"


class TestRunBookkeeping:
    """The kernel keeps a bounded live-process count and records the first
    failure at finish time (it used to retain every process ever spawned
    and rescan the list after each run)."""

    def test_live_processes_drops_to_zero(self, sim):
        def proc():
            yield Delay(0.1)

        for _ in range(50):
            sim.spawn(proc())
        assert sim.live_processes == 50
        sim.run()
        assert sim.live_processes == 0

    def test_first_failure_by_finish_time_is_raised_and_persists(self, sim):
        def fail_at(t, message):
            yield Delay(t)
            raise RuntimeError(message)

        sim.spawn(fail_at(2.0, "second"))
        sim.spawn(fail_at(1.0, "first"))
        with pytest.raises(RuntimeError, match="first"):
            sim.run()
        # The failure is sticky: later runs re-raise it too.
        with pytest.raises(RuntimeError, match="first"):
            sim.run()
        assert sim.obs.metrics.counter("sim.process_failures").value == 2
