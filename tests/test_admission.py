"""Admission control under overload (PR 3).

Covers the :mod:`repro.admission` controller policy (admit / degrade /
shed / queue / preempt / time out), the circuit breaker and its interop
with :mod:`repro.faults`, the resource-lifetime context managers, and
this PR's satellite regressions: the ``Session.connect`` reservation
leak, session churn hygiene, and wait-die behaviour under concurrent
metadata load.
"""

import pytest

from repro.admission import (
    AdmissionController,
    BreakerState,
    CircuitBreaker,
    Priority,
    QoSContract,
    SCENARIOS,
)
from repro.avdb import AVDatabaseSystem
from repro.db import AttributeSpec, ClassDef, Q
from repro.errors import (
    AdmissionError,
    AdmissionTimeoutError,
    AVDBError,
    ChannelFaultError,
    CircuitOpenError,
    LockTimeoutError,
    PreemptedError,
    ResourceError,
)
from repro.net.channel import Channel
from repro.sim import Delay, Simulator
from repro.storage import MagneticDisk
from repro.synth import moving_scene
from repro.values import VideoValue

MBPS = 1_000_000.0


def make_controller(capacity_mbps=2.0, **kwargs):
    sim = Simulator()
    trunk = Channel(sim, capacity_mbps * MBPS, name="trunk")
    return sim, trunk, AdmissionController(sim, trunk, **kwargs)


def build_system():
    system = AVDatabaseSystem()
    video = moving_scene(15, 64, 48)
    system.add_storage(MagneticDisk(system.simulator, "disk0",
                                    bandwidth_bps=video.data_rate_bps() * 10))
    system.db.define_class(ClassDef("Clip", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))
    system.store_value(video, "disk0")
    system.db.insert("Clip", title="shared", video=video)
    return system, video


class TestControllerPolicy:
    def test_full_admission_then_reject(self):
        sim, trunk, ctrl = make_controller(2.0)
        a = ctrl.try_admit(QoSContract(MBPS), label="a")
        b = ctrl.try_admit(QoSContract(MBPS), label="b")
        with pytest.raises(AdmissionError):
            ctrl.try_admit(QoSContract(MBPS), label="c")
        assert sim.obs.metrics.counter("admission.rejected").value == 1
        a.release()
        c = ctrl.try_admit(QoSContract(MBPS), label="c")
        assert trunk.reserved_bps == 2 * MBPS
        b.release()
        c.release()
        assert trunk.reserved_bps == 0

    def test_degraded_admission_honours_floor(self):
        sim, trunk, ctrl = make_controller(1.5)
        ctrl.try_admit(QoSContract(MBPS), label="full")
        # A floorless contract cannot be squeezed into the leftover.
        with pytest.raises(AdmissionError):
            ctrl.try_admit(QoSContract(MBPS, min_fraction=1.0), label="rigid")
        degraded = ctrl.try_admit(QoSContract(MBPS, min_fraction=0.5),
                                  label="elastic")
        assert degraded.bps == pytest.approx(0.5 * MBPS)
        assert sim.obs.metrics.counter("admission.degraded").value == 1
        # Below the floor, even an elastic contract is refused.
        with pytest.raises(AdmissionError):
            ctrl.try_admit(QoSContract(MBPS, min_fraction=0.5), label="late")

    def test_watermark_sheds_background_first(self):
        sim, trunk, ctrl = make_controller(10.0, high_watermark=0.85)
        ctrl.try_admit(QoSContract(9 * MBPS), label="bulk")
        with pytest.raises(AdmissionError, match="shedding background"):
            ctrl.try_admit(QoSContract(0.5 * MBPS, Priority.BACKGROUND),
                           label="bg")
        assert sim.obs.metrics.counter("admission.shed").value == 1
        # The same leftover still serves non-background work.
        std = ctrl.try_admit(QoSContract(2 * MBPS, Priority.STANDARD, 0.5),
                             label="std")
        assert std.bps == pytest.approx(MBPS)

    def test_interactive_preempts_background(self):
        sim, trunk, ctrl = make_controller(2.0)
        bg_a = ctrl.try_admit(QoSContract(MBPS, Priority.BACKGROUND),
                              label="bg-a")
        bg_b = ctrl.try_admit(QoSContract(MBPS, Priority.BACKGROUND),
                              label="bg-b")
        urgent = ctrl.try_admit(
            QoSContract(2 * MBPS, Priority.INTERACTIVE), label="urgent"
        )
        assert urgent.bps == 2 * MBPS
        assert bg_a.preempted and bg_b.preempted
        assert bg_a.released and bg_b.released
        assert sim.obs.metrics.counter("admission.preempted").value == 2

        outcome = {}

        def victim():
            try:
                yield from bg_a.serialize(1000)
            except PreemptedError:
                outcome["preempted"] = True

        sim.spawn(victim())
        sim.run()
        assert outcome["preempted"]

    def test_standard_work_is_never_preempted(self):
        sim, trunk, ctrl = make_controller(2.0)
        ctrl.try_admit(QoSContract(2 * MBPS, Priority.STANDARD), label="std")
        with pytest.raises(AdmissionError):
            ctrl.try_admit(QoSContract(MBPS, Priority.INTERACTIVE),
                           label="urgent")
        assert sim.obs.metrics.counter("admission.preempted").value == 0

    def test_queued_request_granted_when_capacity_frees(self):
        sim, trunk, ctrl = make_controller(2.0)
        held = ctrl.try_admit(QoSContract(2 * MBPS), label="holder")
        granted_at = {}

        def holder():
            yield Delay(0.5)
            held.release()

        def waiter():
            reservation = yield from ctrl.admit(
                QoSContract(2 * MBPS, queue_timeout_s=2.0), label="waiter"
            )
            granted_at["t"] = sim.now.seconds
            reservation.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert granted_at["t"] == pytest.approx(0.5)
        assert trunk.reserved_bps == 0
        assert sim.obs.metrics.counter("admission.queued").value == 1

    def test_queue_deadline_expires(self):
        sim, trunk, ctrl = make_controller(2.0)
        ctrl.try_admit(QoSContract(2 * MBPS), label="holder")
        outcome = {}

        def waiter():
            try:
                yield from ctrl.admit(
                    QoSContract(MBPS, queue_timeout_s=0.3), label="w"
                )
            except AdmissionTimeoutError:
                outcome["timeout_at"] = sim.now.seconds

        sim.spawn(waiter())
        sim.run()
        assert outcome["timeout_at"] == pytest.approx(0.3)
        assert ctrl.queue_depth == 0
        assert sim.obs.metrics.counter("admission.timeouts").value == 1

    def test_bounded_queue_displaces_lower_priority(self):
        sim, trunk, ctrl = make_controller(1.0, max_queue=1)
        held = ctrl.try_admit(QoSContract(MBPS), label="holder")
        outcomes = {}

        def standard():
            try:
                reservation = yield from ctrl.admit(
                    QoSContract(MBPS, Priority.STANDARD, queue_timeout_s=5.0),
                    label="std",
                )
                outcomes["std"] = "granted"
                reservation.release()
            except AdmissionError as error:
                outcomes["std"] = str(error)

        def interactive():
            yield Delay(0.1)
            reservation = yield from ctrl.admit(
                QoSContract(MBPS, Priority.INTERACTIVE, queue_timeout_s=5.0),
                label="urgent",
            )
            outcomes["urgent_at"] = sim.now.seconds
            reservation.release()

        def releaser():
            yield Delay(0.3)
            held.release()

        sim.spawn(standard())
        sim.spawn(interactive())
        sim.spawn(releaser())
        sim.run()
        assert "shed while queued" in outcomes["std"]
        assert outcomes["urgent_at"] == pytest.approx(0.3)

    def test_bounded_queue_backpressures_equal_priority(self):
        sim, trunk, ctrl = make_controller(1.0, max_queue=1)
        ctrl.try_admit(QoSContract(MBPS), label="holder")
        outcomes = {}

        def first():
            try:
                yield from ctrl.admit(
                    QoSContract(MBPS, queue_timeout_s=0.2), label="first"
                )
            except AdmissionTimeoutError:
                outcomes["first"] = "timeout"

        def second():
            yield Delay(0.05)
            try:
                yield from ctrl.admit(
                    QoSContract(MBPS, queue_timeout_s=0.2), label="second"
                )
            except AdmissionError as error:
                outcomes["second"] = str(error)

        sim.spawn(first())
        sim.spawn(second())
        sim.run()
        assert outcomes["first"] == "timeout"
        assert "backpressure" in outcomes["second"]


class TestDeviceAdmission:
    def test_fail_fast_then_queue_with_deadline(self):
        sim, trunk, ctrl = make_controller(2.0)
        system = AVDatabaseSystem(simulator=sim)
        pool = system.resources.add_pool("dve", 1)
        lease = pool.allocate()
        outcomes = {}

        def releaser():
            yield Delay(0.5)
            lease.release()

        def waiter():
            got = yield from ctrl.acquire_device(pool, Priority.STANDARD,
                                                 timeout_s=2.0)
            outcomes["granted_at"] = sim.now.seconds
            got.release()

        sim.spawn(releaser())
        sim.spawn(waiter())
        sim.run()
        assert outcomes["granted_at"] == pytest.approx(0.5)
        assert pool.available == 1

    def test_timeout_does_not_strand_the_unit(self):
        """Even when the release lands in the very tick the waiter's
        deadline fires, the pool unit comes back (the scavenger path)."""
        sim, trunk, ctrl = make_controller(2.0)
        system = AVDatabaseSystem(simulator=sim)
        pool = system.resources.add_pool("dve", 1)
        lease = pool.allocate()
        outcomes = {}

        def releaser():
            yield Delay(1.0)
            lease.release()

        def waiter():
            try:
                yield from ctrl.acquire_device(pool, Priority.STANDARD,
                                               timeout_s=1.0)
            except AdmissionTimeoutError:
                outcomes["timed_out"] = True

        sim.spawn(releaser())
        sim.spawn(waiter())
        sim.run()
        assert outcomes["timed_out"]
        assert pool.available == 1, "device lease stranded after timeout"

    def test_background_is_shed_when_pool_busy(self):
        sim, trunk, ctrl = make_controller(2.0)
        system = AVDatabaseSystem(simulator=sim)
        pool = system.resources.add_pool("dve", 1)
        pool.allocate()
        outcomes = {}

        def bg():
            try:
                yield from ctrl.acquire_device(pool, Priority.BACKGROUND,
                                               timeout_s=5.0)
            except AdmissionError as error:
                outcomes["bg"] = str(error)

        sim.spawn(bg())
        sim.run()
        assert "shedding background" in outcomes["bg"]


class TestCircuitBreaker:
    def test_state_machine_on_virtual_clock(self):
        sim = Simulator()
        breaker = CircuitBreaker(sim, "dev", failure_threshold=2,
                                 reset_timeout_s=0.1)
        log = {}

        def failing():
            yield Delay(0.01)
            raise ChannelFaultError("injected")

        def healthy():
            yield Delay(0.01)
            return "ok"

        def driver():
            for _ in range(2):
                try:
                    yield from breaker.call(failing)
                except ChannelFaultError:
                    pass
            log["after_faults"] = breaker.state
            try:
                yield from breaker.call(healthy)
            except CircuitOpenError:
                log["fast_failed"] = True
            yield Delay(0.15)  # past the reset timeout -> half-open probe
            try:
                yield from breaker.call(failing)  # probe fails: re-open
            except ChannelFaultError:
                pass
            log["after_bad_probe"] = breaker.state
            yield Delay(0.15)
            result = yield from breaker.call(healthy)
            log["probe_result"] = result
            log["final"] = breaker.state

        sim.spawn(driver())
        sim.run()
        assert log["after_faults"] is BreakerState.OPEN
        assert log["fast_failed"]
        assert log["after_bad_probe"] is BreakerState.OPEN
        assert log["probe_result"] == "ok"
        assert log["final"] is BreakerState.CLOSED
        states = [(frm, to) for _, frm, to in breaker.transitions]
        assert states == [
            ("closed", "open"),
            ("open", "half-open"), ("half-open", "open"),
            ("open", "half-open"), ("half-open", "closed"),
        ]
        assert breaker.fast_failures == 1
        metrics = sim.obs.metrics
        assert metrics.counter("admission.breaker_transitions").value == 5
        assert metrics.gauge("admission.breaker.dev.state").value == 0.0

    def test_breaker_interops_with_fault_injection(self):
        """End-to-end against a repro.faults scheduler outage: open on
        consecutive faults, half-open probes on the virtual-time timer,
        closed after the restart — and no request left stranded."""
        facts = SCENARIOS["device-outage"](seed=3, admission=True)
        path = str(facts["breaker_path"])
        assert path.startswith("open")
        assert "half-open" in path
        assert path.endswith("closed")
        assert facts["breaker_state"] == "closed"
        assert int(facts["fast_failed_frames"]) > 0
        assert int(facts["stranded_requests"]) == 0
        assert (int(facts["delivered_frames"]) + int(facts["lost_frames"])
                + int(facts["fast_failed_frames"])
                == int(facts["negotiated_frames"]))


class TestContextManagers:
    def test_reservation_releases_on_exception(self):
        sim = Simulator()
        trunk = Channel(sim, 2 * MBPS, name="trunk")
        with pytest.raises(RuntimeError):
            with trunk.reserve(MBPS, label="cm") as reservation:
                assert trunk.reserved_bps == MBPS
                raise RuntimeError("body failed")
        assert reservation.released
        assert trunk.reserved_bps == 0

    def test_device_lease_releases_on_exception(self):
        system = AVDatabaseSystem()
        pool = system.resources.add_pool("mixer", 1)
        with pytest.raises(RuntimeError):
            with pool.allocate():
                assert pool.available == 0
                raise RuntimeError("body failed")
        assert pool.available == 1
        # Exit is idempotent, but an explicit double release still errors.
        lease = pool.allocate()
        lease.release()
        with pytest.raises(ResourceError):
            lease.release()


class TestConnectReservationLeak:
    def test_failed_connect_releases_its_reservation(self):
        """Regression: ``graph.connect`` raising after ``channel.reserve``
        succeeded must not strand the bandwidth (the §4.3 statement fails
        as a unit)."""
        system, video = build_system()
        session = system.open_session("leaky")
        ref = session.select_one("Clip", Q.eq("title", "shared"))
        source = session.new_db_source((ref, "video"))
        # A video source into an audio sink: admission succeeds (the
        # boundary is crossed, bandwidth is reserved), then the
        # type-checked connection fails.
        speaker = session.new_speaker(name="wrong-sink")
        with pytest.raises(AVDBError):
            session.connect(source, speaker)
        assert session.channel.reserved_bps == 0, (
            "failed connect stranded its bandwidth reservation"
        )
        # The channel is whole: the same stream connects fine afterwards.
        window = session.new_video_window(name="right-sink")
        session.connect(source, window).start()
        system.run()
        assert len(window.presented) == 15


class TestSessionChurn:
    def test_hundred_sessions_leave_no_residue(self):
        """Open/connect/stream/close 100 sessions over one shared trunk:
        afterwards the trunk, the device pools, the storage device and
        the activity graph are exactly as they started."""
        system, video = build_system()
        pool = system.resources.add_pool("mixer", 2)
        trunk = Channel(system.simulator, 100 * MBPS, latency_s=0.001,
                        name="trunk")
        disk = system.placement.device("disk0")
        graph_baseline = len(system.graph.activities)
        connection_baseline = len(system.graph.connections)

        for i in range(100):
            session = system.open_session(f"churn-{i}", channel=trunk)
            ref = session.select_one("Clip", Q.eq("title", "shared"))
            source = session.new_db_source((ref, "video"))
            window = session.new_video_window(name=f"churn-{i}.win")
            session.new_activity(window.__class__(
                system.simulator, name=f"churn-{i}.aux"
            ), device_kind="mixer")
            session.connect(source, window).start()
            system.run()
            session.close()
            assert trunk.reserved_bps == 0

        assert len(system.graph.activities) == graph_baseline
        assert len(system.graph.connections) == connection_baseline
        assert pool.available == pool.count
        assert disk.available_bps == pytest.approx(disk.bandwidth_bps)


class TestWaitDieUnderLoad:
    def test_concurrent_metadata_transactions_all_commit(self):
        """24 clients hammer 3 catalog rows with read-modify-write
        transactions spanning virtual time.  Wait-die resolves every
        conflict (``LockTimeoutError.should_retry`` tells waiters from
        victims), bounded retries converge, nothing deadlocks or
        livelocks, and every client commits."""
        system = AVDatabaseSystem()
        sim = system.simulator
        system.db.define_class(ClassDef("Clip", attributes=[
            AttributeSpec("title", str, indexed=True),
            AttributeSpec("plays", int),
        ]))
        oids = [system.db.insert("Clip", title=f"clip-{i}", plays=0)
                for i in range(3)]
        stats = {"commits": 0, "retries": 0, "gave_up": 0}
        clients = 24

        def client(index: int):
            yield Delay(0.0001 * (index % 4))
            oid = oids[index % len(oids)]
            for attempt in range(10):
                tx = system.db.begin()
                try:
                    obj = tx.read(oid)
                    yield Delay(0.002)  # the window conflicts live in
                    tx.update(oid, plays=obj.plays + 1)
                    tx.commit()
                    stats["commits"] += 1
                    return
                except LockTimeoutError as error:
                    tx.abort()
                    stats["retries"] += 1
                    backoff = 0.002 * (attempt + 1)
                    yield Delay(backoff if error.should_retry
                                else backoff * 1.5)
            stats["gave_up"] += 1

        for index in range(clients):
            sim.spawn(client(index), name=f"tx-client-{index}")
        end = sim.run()  # returning at all means no deadlock
        assert stats["commits"] == clients
        assert stats["gave_up"] == 0
        assert stats["retries"] > 0, (
            "no lock conflicts occurred; the contention this test exists "
            "for never happened"
        )
        total = sum(system.db.get(oid).plays for oid in oids)
        assert total == clients
        assert end.seconds < 5.0, "retry storm: wait-die is livelocking"


class TestSessionAdmissionIntegration:
    def test_connect_routes_through_the_controller(self):
        system, video = build_system()
        rate = video.data_rate_bps()
        trunk = Channel(system.simulator, rate * 1.5, latency_s=0.001,
                        name="trunk")
        system.enable_admission(trunk)
        ref_predicate = Q.eq("title", "shared")

        s1 = system.open_session("first", channel=trunk)
        ref = s1.select_one("Clip", ref_predicate)
        s1.connect(s1.new_db_source((ref, "video")),
                   s1.new_video_window(name="w1")).start()

        # Second stream cannot fit whole; with a degradation floor the
        # controller admits it at the leftover rate.
        s2 = system.open_session("second", channel=trunk)
        stream = s2.connect(s2.new_db_source((ref, "video")),
                            s2.new_video_window(name="w2"),
                            degrade=True, min_degraded_fraction=0.25)
        assert s2.degraded_streams == 1
        stream.start()

        # Background work past the watermark is shed outright.
        s3 = system.open_session("third", channel=trunk)
        with pytest.raises(AdmissionError, match="shedding background"):
            s3.connect(s3.new_db_source((ref, "video")),
                       s3.new_video_window(name="w3"),
                       priority=Priority.BACKGROUND, degrade=True)

        metrics = system.metrics
        assert metrics.counter("admission.admitted").value == 1
        assert metrics.counter("admission.degraded").value == 1
        assert metrics.counter("admission.shed").value == 1
        system.run()
        s1.close()
        s2.close()
        s3.close()
        assert trunk.reserved_bps == 0
