"""The observability layer: instruments, tracer, scoping, exporters."""

import json

import pytest

from repro.obs import (
    DEPTH_BUCKETS,
    NULL_OBS,
    NULL_TRACER,
    Counter,
    DecisionLog,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Obs,
    Tracer,
    attach,
    chrome_trace,
    chrome_trace_events,
    current,
    disabled,
    scoped,
    text_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import Delay, Simulator


class TestInstruments:
    def test_counter_registration_and_aggregation(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.events_dispatched")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        # Get-or-create: same name returns the same instrument.
        assert registry.counter("sim.events_dispatched") is counter
        assert "sim.events_dispatched" in registry
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("db.page_reads")
        with pytest.raises(MetricError, match="already registered as counter"):
            registry.gauge("db.page_reads")

    def test_gauge_high_watermark(self):
        gauge = MetricsRegistry().gauge("storage.device.disk0.utilization")
        gauge.set(0.5)
        gauge.set(0.9)
        gauge.set(0.2)
        assert gauge.value == 0.2
        assert gauge.high_watermark == 0.9

    def test_histogram_bucketing(self):
        histogram = Histogram("stream.buffer_occupancy", DEPTH_BUCKETS)
        for value in (1, 1, 2, 3, 5, 200):
            histogram.observe(value)
        buckets = histogram.bucket_counts()
        assert buckets["<=1"] == 2     # inclusive upper edges
        assert buckets["<=2"] == 1
        assert buckets["<=4"] == 1     # the 3
        assert buckets["<=8"] == 1     # the 5
        assert buckets["+inf"] == 1    # the 200 overflows
        assert histogram.count == 6
        assert histogram.min == 1 and histogram.max == 200
        assert histogram.mean == pytest.approx(212 / 6)

    def test_histogram_percentile_estimates(self):
        histogram = Histogram("t", (1.0, 10.0, 100.0))
        for _ in range(99):
            histogram.observe(0.5)
        histogram.observe(50.0)
        assert histogram.percentile(50) == 1.0    # bucket upper edge
        assert histogram.percentile(100) == 50.0  # capped at true max

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(MetricError, match="strictly increasing"):
            Histogram("bad", (5.0, 1.0))
        with pytest.raises(MetricError, match="at least one bucket"):
            Histogram("empty", ())

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("net.bits_sent").inc(8)
        registry.gauge("net.channel.c.utilization").set(0.25)
        registry.histogram("sim.resource_wait_s").observe(0.002)
        snapshot = registry.snapshot()
        assert snapshot["net.bits_sent"] == 8
        assert snapshot["net.channel.c.utilization"]["high_watermark"] == 0.25
        assert snapshot["sim.resource_wait_s"]["count"] == 1
        json.dumps(snapshot)  # must be serializable as-is


class TestTracer:
    def test_span_carries_virtual_and_wall_time(self):
        clock = iter([2.0, 5.5])
        tracer = Tracer(clock=lambda: next(clock))
        span = tracer.begin("disk.service", "storage", track="disk0", seek=7)
        span.end(outcome="ok")
        (event,) = tracer.events
        assert event.phase == "X"
        assert event.ts == 2.0
        assert event.dur == 3.5              # virtual duration
        assert event.wall_dur >= 0.0         # wall duration, independently
        assert event.args == {"seek": 7, "outcome": "ok"}

    def test_span_nesting_with_virtual_timestamps(self):
        times = iter([0.0, 1.0, 2.0, 4.0])
        tracer = Tracer(clock=lambda: next(times))
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        inner.end()
        outer.end()
        inner_event, outer_event = tracer.events
        assert inner_event.name == "inner"
        assert (inner_event.ts, inner_event.dur) == (1.0, 1.0)
        assert (outer_event.ts, outer_event.dur) == (0.0, 4.0)
        # The inner span lies within the outer one on the virtual axis.
        assert outer_event.ts <= inner_event.ts
        assert inner_event.ts + inner_event.dur <= outer_event.ts + outer_event.dur

    def test_span_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.begin("once")
        span.end()
        span.end()
        assert len(tracer.events) == 1

    def test_bind_clock_first_wins(self):
        tracer = Tracer()
        assert not tracer.clock_bound
        tracer.bind_clock(lambda: 7.0)
        tracer.bind_clock(lambda: 99.0)  # ignored
        tracer.instant("mark")
        assert tracer.events[0].ts == 7.0

    def test_null_tracer_emits_nothing(self):
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.begin("ignored", "cat", track="t", a=1)
        span.end(b=2)
        NULL_TRACER.instant("ignored")
        NULL_TRACER.complete("ignored", "cat", 0.0, 1.0)
        assert len(NULL_TRACER.events) == 0
        assert len(NULL_TRACER) == 0


class TestScoping:
    def test_attach_precedence(self):
        explicit = Obs()
        with scoped() as ambient:
            assert attach() is ambient
            assert attach(explicit) is explicit
        # Outside any scope: a fresh default with metrics on, tracing off.
        fresh = attach()
        assert fresh is not ambient
        assert not fresh.tracing
        assert current() is None

    def test_nested_scopes(self):
        with scoped(tracing=False) as outer:
            with scoped() as inner:
                assert current() is inner
                assert inner.tracing
            assert current() is outer

    def test_disabled_scope_is_null(self):
        with disabled() as obs:
            assert obs is NULL_OBS
            sim = Simulator()
            assert sim.obs is NULL_OBS

            def noop():
                yield Delay(0.1)

            sim.spawn(noop(), name="noop")
            sim.run()
        assert "sim.events_dispatched" not in NULL_OBS.metrics.names()

    def test_simulator_binds_virtual_clock_in_scope(self):
        def proc():
            yield Delay(1.5)

        with scoped() as obs:
            sim = Simulator()
            sim.spawn(proc(), name="worker")
            sim.run()
        spans = [e for e in obs.tracer.events if e.name == "worker"]
        assert len(spans) == 1
        assert spans[0].ts == 0.0
        assert spans[0].dur == pytest.approx(1.5)  # virtual, not wall


class TestExport:
    def _traced_run(self):
        def proc():
            yield Delay(0.25)

        with scoped() as obs:
            sim = Simulator()
            sim.obs.tracer.instant("mark", "test", track="marks", detail=1)
            sim.spawn(proc(), name="p0")
            sim.run()
        return obs

    def test_chrome_trace_round_trip(self, tmp_path):
        obs = self._traced_run()
        path = tmp_path / "out.trace.json"
        write_chrome_trace(obs.tracer, path, obs.metrics)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {m["name"] for m in meta}
        spans = [e for e in events if e["ph"] == "X" and e["name"] == "p0"]
        assert len(spans) == 1
        assert spans[0]["dur"] == pytest.approx(0.25 * 1e6)  # microseconds
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)
        # Dual stamping: wall seconds ride along in args.
        assert "wall_s" in spans[0]["args"]
        assert doc["otherData"]["metrics"]["sim.processes_finished"] == 1

    def test_chrome_trace_events_use_one_lane_per_track(self):
        obs = self._traced_run()
        events = chrome_trace_events(obs.tracer)
        lanes = {e["args"]["name"]: e["tid"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert set(lanes) == {"marks", "p0"}
        assert len(set(lanes.values())) == 2

    def test_jsonl_export(self, tmp_path):
        obs = self._traced_run()
        path = tmp_path / "events.jsonl"
        write_jsonl(obs.tracer, path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(obs.tracer.events)
        assert {"phase", "name", "ts", "wall"} <= set(lines[0])

    def test_text_summary_sections(self):
        obs = self._traced_run()
        report = text_summary(obs.metrics, obs.tracer, title="unit test")
        assert "unit test" in report
        assert "[sim]" in report
        assert "sim.events_dispatched" in report
        assert "trace" in report  # trailing trace-event line

    def test_chrome_trace_without_metrics(self):
        obs = self._traced_run()
        doc = chrome_trace(obs.tracer)
        assert "metrics" not in doc.get("otherData", {})
        json.dumps(doc)


class TestSpanExceptionSafety:
    """Regression: a span must close (with the error recorded) when its
    ``with`` body raises — a span leaked open would vanish from the
    export and skew every duration under it."""

    def test_span_exit_records_error_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.begin("risky", "test"):
                raise ValueError("boom")
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event.phase == "X"  # the span did end
        assert "ValueError" in event.args["error"]

    def test_span_exit_without_exception_has_no_error(self):
        tracer = Tracer()
        with tracer.begin("calm", "test"):
            pass
        assert tracer.events[0].args is None

    def test_failing_span_still_exports(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.begin("doomed", "test"):
                raise RuntimeError("dead")
        events = chrome_trace_events(tracer)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 1
        assert "RuntimeError" in complete[0]["args"]["error"]


class TestSnapshotAggregates:
    """Histogram snapshots carry exact count/sum/min/max + percentiles."""

    def test_histogram_snapshot_fields(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", (1.0, 10.0, 100.0))
        for value in (0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = registry.snapshot()["t"]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(56.0)
        assert snap["min"] == 0.5 and snap["max"] == 50.0
        assert snap["p50"] == 1.0           # bucket-resolution estimate
        assert snap["p99"] == 50.0          # capped at the true max
        json.dumps(snap)

    def test_empty_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.histogram("empty")
        snap = registry.snapshot()["empty"]
        assert snap["count"] == 0 and snap["sum"] == 0.0
        assert snap["min"] is None and snap["p95"] is None

    def test_text_summary_has_percentile_columns(self):
        registry = MetricsRegistry()
        registry.histogram("stream.jitter_ms", (1.0, 10.0)).observe(2.0)
        report = text_summary(registry)
        assert "p50" in report and "p95" in report and "p99" in report
        assert "sum" in report


class TestDecisionLog:
    def test_emit_chain_and_subjects(self):
        log = DecisionLog()
        log.emit("admit", "s-1", actor="ctl", bps=100.0)
        log.emit("admit", "s-2", actor="ctl")
        log.emit("degrade", "s-1", actor="ctl", fraction=0.5)
        assert log.subjects() == ["s-1", "s-2"]
        chain = log.chain("s-1")
        assert [e.kind for e in chain] == ["admit", "degrade"]
        assert chain[0].args == {"bps": 100.0}
        assert [e.kind for e in log.by_kind("degrade")] == ["degrade"]
        assert len(log) == 3

    def test_to_dict_is_plain_data(self):
        log = DecisionLog()
        log.emit("shed", "bg-0", actor="ctl", reason="watermark")
        doc = log.events[0].to_dict()
        assert doc["kind"] == "shed" and doc["subject"] == "bg-0"
        json.dumps(doc)

    def test_simulator_binds_virtual_clock(self):
        with scoped():
            sim = Simulator()

            def proc():
                yield Delay(1.25)
                sim.obs.decisions.emit("deadline", "p-0", actor="test")

            sim.spawn(proc(), "p0")
            sim.run()
            events = current().decisions.events
        assert events[0].ts == pytest.approx(1.25)

    def test_scoped_can_disable_decisions(self):
        with scoped(decisions=False):
            obs = current()
            assert not obs.decisions.enabled
            obs.decisions.emit("admit", "s-1")
            assert len(obs.decisions) == 0

    def test_null_obs_has_null_decisions(self):
        assert not NULL_OBS.decisions.enabled
