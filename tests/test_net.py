"""Network channels: admission control, transfer timing, accounting."""

import pytest

from repro.errors import AdmissionError
from repro.net import Channel


class TestAdmission:
    def test_reservations_bounded_by_capacity(self, sim):
        channel = Channel(sim, capacity_bps=10_000_000)
        channel.reserve(4_000_000, "a")
        channel.reserve(4_000_000, "b")
        with pytest.raises(AdmissionError, match="cannot reserve"):
            channel.reserve(4_000_000, "c")
        assert channel.admission_failures == 1
        assert channel.available_bps == pytest.approx(2_000_000)

    def test_release_returns_bandwidth(self, sim):
        channel = Channel(sim, capacity_bps=1_000_000)
        reservation = channel.reserve(800_000)
        reservation.release()
        assert channel.available_bps == pytest.approx(1_000_000)
        channel.reserve(900_000)  # fits after release

    def test_double_release_idempotent(self, sim):
        channel = Channel(sim, capacity_bps=1_000)
        reservation = channel.reserve(500)
        reservation.release()
        reservation.release()
        assert channel.available_bps == 1_000

    def test_invalid_reservations(self, sim):
        channel = Channel(sim, capacity_bps=1_000)
        with pytest.raises(AdmissionError):
            channel.reserve(0)
        with pytest.raises(AdmissionError):
            channel.reserve(-5)

    def test_invalid_channel_parameters(self, sim):
        with pytest.raises(AdmissionError):
            Channel(sim, capacity_bps=0)
        with pytest.raises(AdmissionError):
            Channel(sim, capacity_bps=1000, latency_s=-1)


class TestTransfers:
    def test_transfer_time_is_latency_plus_serialization(self, sim):
        channel = Channel(sim, capacity_bps=1_000_000, latency_s=0.1)
        reservation = channel.reserve(500_000)

        def sender():
            yield from reservation.transmit(1_000_000)  # 2 s at 500 kb/s

        proc = sim.spawn(sender())
        sim.run_until_complete(proc)
        assert sim.now.seconds == pytest.approx(2.1)

    def test_transmit_after_release_fails(self, sim):
        channel = Channel(sim, capacity_bps=1_000)
        reservation = channel.reserve(500)
        reservation.release()

        def sender():
            yield from reservation.transmit(100)

        sim.spawn(sender())
        with pytest.raises(AdmissionError, match="released"):
            sim.run()

    def test_traffic_accounting(self, sim):
        channel = Channel(sim, capacity_bps=1_000_000)
        a = channel.reserve(100_000, "a")
        b = channel.reserve(100_000, "b")

        def sender(reservation, bits):
            yield from reservation.transmit(bits)

        sim.spawn(sender(a, 5_000))
        sim.spawn(sender(b, 3_000))
        sim.run()
        assert channel.total_bits == 8_000
        assert channel.total_bytes == 1_000
        assert a.bits_transmitted == 5_000

    def test_mean_throughput(self, sim):
        channel = Channel(sim, capacity_bps=1_000_000)
        reservation = channel.reserve(100_000)

        def sender():
            yield from reservation.transmit(50_000)  # takes 0.5 s

        proc = sim.spawn(sender())
        sim.run_until_complete(proc)
        assert channel.mean_throughput_bps() == pytest.approx(100_000)

    def test_concurrent_streams_do_not_serialize(self, sim):
        """Reserved slices transfer independently (ATM-style isolation)."""
        channel = Channel(sim, capacity_bps=2_000_000)
        a = channel.reserve(1_000_000)
        b = channel.reserve(1_000_000)
        done = []

        def sender(name, reservation):
            yield from reservation.transmit(1_000_000)  # 1 s each
            done.append((name, sim.now.seconds))

        sim.spawn(sender("a", a))
        sim.spawn(sender("b", b))
        sim.run()
        assert [t for _, t in done] == [pytest.approx(1.0), pytest.approx(1.0)]
