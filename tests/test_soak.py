"""Broadcast-day soak harness: phases, timeline, chaos, ddmin, search."""

import json

import pytest

from repro.errors import SimulationError
from repro.faults import FaultPlan
from repro.obs import scoped
from repro.soak import (
    PROFILES,
    SEARCH_DEMO_SEED,
    PhaseSpec,
    build_timeline,
    chaos_search,
    day,
    day_chaos_plan,
    ddmin,
    default_day,
    sample_chaos,
    summary_line,
    timeline_sha256,
)
from repro.soak.phases import MAX_LIVE_ELEMENTS, VOD_ELEMENTS
from repro.soak.scenarios import plan_sha256


# ---------------------------------------------------------------------------
# phases
# ---------------------------------------------------------------------------

class TestPhaseSpec:
    def test_default_day_shape(self):
        specs = default_day()
        assert [s.name for s in specs] == [
            "morning-ramp", "midday-edit", "prime-time", "overnight"]
        assert sum(s.duration_s for s in specs) == pytest.approx(10.0)
        assert specs[2].viral_share == 0.6  # prime time is the flash crowd

    def test_validation(self):
        with pytest.raises(SimulationError, match="duration must be positive"):
            PhaseSpec("bad", 0.0)
        with pytest.raises(SimulationError, match="vod_sessions must be >= 0"):
            PhaseSpec("bad", 1.0, vod_sessions=-1)
        with pytest.raises(SimulationError, match=r"viral_share must be in"):
            PhaseSpec("bad", 1.0, viral_share=1.5)

    def test_scaled_scales_counts_not_durations(self):
        spec = PhaseSpec("p", 2.0, vod_sessions=100, live_viewers=4,
                         edit_jobs=2, maintenance_bumps=0)
        half = spec.scaled(0.5)
        assert half.duration_s == 2.0
        assert half.vod_sessions == 50
        assert half.live_viewers == 2
        # Non-zero counts floor at 1; zero counts stay zero.
        tiny = spec.scaled(0.01)
        assert tiny.vod_sessions == 1
        assert tiny.edit_jobs == 1
        assert tiny.maintenance_bumps == 0
        with pytest.raises(SimulationError, match="scale factor"):
            spec.scaled(0.0)


# ---------------------------------------------------------------------------
# timeline
# ---------------------------------------------------------------------------

class TestTimeline:
    def test_same_seed_same_timeline(self):
        first = build_timeline(default_day(), seed=7)
        second = build_timeline(default_day(), seed=7)
        assert first == second
        assert timeline_sha256(first) == timeline_sha256(second)
        assert timeline_sha256(first) != timeline_sha256(
            build_timeline(default_day(), seed=8))

    def test_events_match_specs(self):
        specs = default_day()
        events = build_timeline(specs, seed=0)
        by_kind = {}
        for event in events:
            by_kind.setdefault(event.kind, []).append(event)
        assert len(by_kind["vod"]) == sum(s.vod_sessions for s in specs)
        assert len(by_kind["live"]) == sum(s.live_viewers for s in specs)
        assert len(by_kind["edit"]) == sum(s.edit_jobs for s in specs)
        assert len(by_kind["bump"]) == sum(s.maintenance_bumps for s in specs)
        assert all(e.elements == VOD_ELEMENTS for e in by_kind["vod"])
        assert all(0 < e.elements <= MAX_LIVE_ELEMENTS
                   for e in by_kind["live"])
        # Maintenance never bumps asset 0 — that's the viral asset.
        assert all(e.asset >= 1 for e in by_kind["bump"])
        assert events == sorted(events, key=lambda e: (e.at, e.kind,
                                                       e.ordinal))
        horizon = sum(s.duration_s for s in specs)
        assert all(0.0 <= e.at <= horizon for e in events)

    def test_tiny_catalog_rejected(self):
        with pytest.raises(SimulationError, match="catalog"):
            build_timeline(default_day(), seed=0, catalog_size=1)


# ---------------------------------------------------------------------------
# chaos sampling
# ---------------------------------------------------------------------------

NODES = [f"node-{i}" for i in range(4)]
EDGES = ["edge-0", "edge-1"]


class TestChaosSampling:
    def test_same_seed_same_plan(self):
        first = sample_chaos(3, 10.0, NODES, EDGES)
        second = sample_chaos(3, 10.0, NODES, EDGES)
        assert plan_sha256(first) == plan_sha256(second)
        assert plan_sha256(first) != plan_sha256(
            sample_chaos(4, 10.0, NODES, EDGES))

    @pytest.mark.parametrize("seed", range(8))
    def test_gentle_draws_are_survivable_by_construction(self, seed):
        plan = sample_chaos(seed, 10.0, NODES, EDGES)
        plan.validate()
        node_windows = sorted(
            ((f.at, f.at + f.duration) for f in plan
             if f.kind == "node-outage"))
        # Gentle serializes node outages: at R=2, one node down at a time.
        for (_, prev_end), (cur_start, _) in zip(node_windows,
                                                 node_windows[1:]):
            assert cur_start > prev_end
        for fault in plan:
            assert fault.duration > 0  # every outage is restored...
            assert fault.at + fault.duration <= 0.8 * 10.0  # ...with margin

    def test_aggressive_profile_adds_loss_and_crashes(self):
        plan = sample_chaos(0, 10.0, NODES, EDGES,
                            channels=["edge-0.nic"], processes=["edit-0"],
                            profile="aggressive")
        kinds = {f.kind for f in plan}
        assert "channel-loss" in kinds
        assert "process-crash" in kinds
        assert PROFILES["aggressive"].serialize_nodes is False

    def test_bad_arguments_rejected(self):
        with pytest.raises(SimulationError, match="unknown chaos profile"):
            sample_chaos(0, 10.0, NODES, EDGES, profile="cataclysmic")
        with pytest.raises(SimulationError, match="horizon"):
            sample_chaos(0, 0.0, NODES, EDGES)


# ---------------------------------------------------------------------------
# ddmin
# ---------------------------------------------------------------------------

class TestDdmin:
    def test_minimizes_to_the_failing_pair(self):
        items = list(range(1, 9))
        probes = []

        def failing(candidate):
            probes.append(tuple(candidate))
            return 3 in candidate and 6 in candidate

        minimal, stats = ddmin(items, failing)
        assert minimal == [3, 6]
        assert stats["probes"] == len(probes)  # cache hits never re-run
        assert stats["max_pass_probes"] < 2 * len(items)

    def test_result_and_probe_count_are_stable(self):
        items = list(range(1, 9))
        failing = lambda c: 3 in c and 6 in c  # noqa: E731
        first = ddmin(items, failing)
        second = ddmin(items, failing)
        assert first == second

    def test_single_culprit_and_order_preserved(self):
        minimal, _ = ddmin(["a", "b", "c", "d"], lambda c: "c" in c)
        assert minimal == ["c"]
        minimal, _ = ddmin(["a", "b", "c", "d"],
                           lambda c: "b" in c and "d" in c)
        assert minimal == ["b", "d"]  # input order, not discovery order

    def test_rejects_empty_and_passing_inputs(self):
        with pytest.raises(SimulationError, match="empty"):
            ddmin([], lambda c: True)
        with pytest.raises(SimulationError, match="does not fail"):
            ddmin([1, 2, 3], lambda c: False)


# ---------------------------------------------------------------------------
# the composed day
# ---------------------------------------------------------------------------

def _facts_json(facts):
    return json.dumps(facts, sort_keys=True)


class TestDaySoak:
    def test_full_day_is_clean_and_deterministic(self):
        with scoped(tracing=False):
            first = day(seed=0)
        with scoped(tracing=False):
            second = day(seed=0)
        # The acceptance gate: a gentle-chaos day survives supervised.
        assert first["invariant_breaches"] == 0
        assert first["interactive_violations"] == 0
        assert first["unhandled_failure"] == "none"
        assert first["stranded_processes"] == 0
        assert first["vod_admitted"] == first["vod_sessions"]
        assert first["faults_injected"] == first["faults_planned"] > 0
        assert first["hit_ratio"] > 0.5
        # Byte-identical facts across reruns — the determinism gate.
        assert _facts_json(first) == _facts_json(second)
        assert summary_line("day", first) == summary_line("day", second)

    def test_sliced_day_without_chaos(self):
        specs = [s for s in default_day() if s.name == "overnight"]
        with scoped(tracing=False):
            facts = day(seed=1, phases=specs, scale=0.5, chaos=False)
        assert facts["phases"] == 1
        assert facts["faults_planned"] == 0
        assert facts["invariant_breaches"] == 0
        assert facts["version_bumps"] == 1

    def test_day_chaos_plan_matches_what_day_runs(self):
        plan = day_chaos_plan(seed=0)
        with scoped(tracing=False):
            facts = day(seed=0)
        assert facts["fault_schedule_sha256"] == plan_sha256(plan)


# ---------------------------------------------------------------------------
# chaos search + minimization
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def demo_search(tmp_path_factory):
    out = tmp_path_factory.mktemp("soak-search")
    report = chaos_search(chaos_seeds=[SEARCH_DEMO_SEED], plant_leak=True,
                          out_dir=str(out))
    return report, out


class TestChaosSearch:
    def test_planted_leak_minimizes_to_two_fault_core(self, demo_search):
        report, _ = demo_search
        assert report["failing_seed"] == SEARCH_DEMO_SEED
        assert report["minimized_len"] == 2
        minimized = FaultPlan.from_dict(json.loads(
            (demo_search[1] / "minimized-plan.json").read_text()))
        assert {(f.kind, f.target) for f in minimized} == {
            ("node-outage", "node-1"), ("edge-cache-outage", "edge-0")}

    def test_minimized_schedule_replays_the_breach(self, demo_search):
        report, out = demo_search
        assert report["replay_failing"] is True
        assert report["replay_breach_invariant"] == "reservation-conservation"
        assert report["replay_bundles"] >= 1
        assert list(out.glob("postmortem-*.json"))

    def test_probe_economy_is_bounded(self, demo_search):
        report, _ = demo_search
        assert report["max_pass_probes"] < report["probe_bound"]
        assert report["ddmin_probes"] <= \
            report["ddmin_passes"] * report["probe_bound"]

    def test_artifacts_roundtrip(self, demo_search):
        report, out = demo_search
        doc = json.loads((out / "minimized-plan.json").read_text())
        assert plan_sha256(FaultPlan.from_dict(doc)) == \
            report["minimized_sha256"]
        on_disk = json.loads((out / "search-report.json").read_text())
        assert on_disk["minimized_sha256"] == report["minimized_sha256"]

    def test_search_is_deterministic(self, demo_search):
        report, _ = demo_search
        again = chaos_search(chaos_seeds=[SEARCH_DEMO_SEED], plant_leak=True)
        for key in ("minimized_sha256", "minimized_schedule", "ddmin_probes",
                    "ddmin_passes", "max_pass_probes", "schedule_sha256"):
            assert again[key] == report[key]

    def test_clean_seed_reports_none(self):
        report = chaos_search(chaos_seeds=[0])
        assert report["failing_seed"] == "none"
        assert report["minimized_len"] == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestSoakCLI:
    def test_day_command_runs_a_slice(self, capsys):
        from repro.__main__ import main

        assert main(["soak", "day", "--no-chaos", "--scale", "0.25",
                     "--phases", "overnight"]) == 0
        out = capsys.readouterr().out
        assert "soak day:" in out
        assert "invariant_breaches = 0" in out

    def test_unknown_phase_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["soak", "day", "--phases", "rush-hour"]) == 2
        assert "pick from" in capsys.readouterr().err

    def test_soak_scenarios_are_profilable(self):
        from repro.perf import available_scenarios

        assert available_scenarios()["day"] == "soak"
