"""Durability: WAL, checkpoints, crash recovery, torn-tail handling."""

import os

import pytest

from repro.db import AttributeSpec, ClassDef, Database
from repro.db.objects import DBObject, OID
from repro.db.store import OP_INSERT, ObjectStore
from repro.errors import DatabaseError, ObjectNotFoundError


def doc_class():
    return ClassDef("Doc", attributes=[
        AttributeSpec("name", str, indexed=True),
        AttributeSpec("body", str),
    ])


def reopen(path):
    db = Database(str(path))
    db.define_class(doc_class())
    db.rebuild_indexes()
    return db


class TestInMemoryStore:
    def test_basic_lifecycle(self):
        store = ObjectStore()
        oid = store.next_oid("Doc")
        store.commit_ops(1, [(OP_INSERT, DBObject(oid, {"name": "a"}))])
        assert store.get(oid).name == "a"
        assert len(store) == 1
        assert not store.durable

    def test_missing_object(self):
        store = ObjectStore()
        with pytest.raises(ObjectNotFoundError):
            store.get(OID("Doc", 99))

    def test_insert_existing_rejected(self):
        store = ObjectStore()
        oid = store.next_oid("Doc")
        obj = DBObject(oid, {})
        store.commit_ops(1, [(OP_INSERT, obj)])
        with pytest.raises(DatabaseError, match="insert of existing"):
            store.commit_ops(2, [(OP_INSERT, obj)])

    def test_checkpoint_requires_durable(self):
        with pytest.raises(DatabaseError):
            ObjectStore().checkpoint()


class TestRecovery:
    def test_wal_replay_after_close(self, tmp_path):
        db = Database(str(tmp_path))
        db.define_class(doc_class())
        oid1 = db.insert("Doc", name="one")
        oid2 = db.insert("Doc", name="two")
        db.update(oid1, body="hello")
        db.delete(oid2)
        db.close()

        recovered = reopen(tmp_path)
        assert recovered.get(oid1).body == "hello"
        assert not recovered.exists(oid2)
        assert recovered._store.recovered_records == 4

    def test_checkpoint_then_more_writes(self, tmp_path):
        db = Database(str(tmp_path))
        db.define_class(doc_class())
        oid1 = db.insert("Doc", name="before")
        db.checkpoint()
        oid2 = db.insert("Doc", name="after")
        db.close()

        recovered = reopen(tmp_path)
        assert recovered.get(oid1).name == "before"
        assert recovered.get(oid2).name == "after"
        # Only the post-checkpoint record replays from the WAL.
        assert recovered._store.recovered_records == 1

    def test_torn_tail_ignored(self, tmp_path):
        db = Database(str(tmp_path))
        db.define_class(doc_class())
        oid1 = db.insert("Doc", name="committed")
        db.insert("Doc", name="casualty")
        db.close()
        # Simulate a crash mid-append: truncate the last 7 bytes.
        wal = tmp_path / ObjectStore.WAL_NAME
        size = os.path.getsize(wal)
        with open(wal, "r+b") as f:
            f.truncate(size - 7)

        recovered = reopen(tmp_path)
        assert recovered.exists(oid1)
        assert recovered._store.recovered_records == 1
        assert len(recovered) == 1

    def test_corrupt_crc_stops_replay(self, tmp_path):
        db = Database(str(tmp_path))
        db.define_class(doc_class())
        oid1 = db.insert("Doc", name="good")
        db.insert("Doc", name="flipped")
        db.close()
        wal = tmp_path / ObjectStore.WAL_NAME
        data = bytearray(wal.read_bytes())
        data[-3] ^= 0xFF  # flip a bit inside the last record's CRC
        wal.write_bytes(bytes(data))

        recovered = reopen(tmp_path)
        assert recovered.exists(oid1)
        assert len(recovered) == 1

    def test_serials_continue_after_recovery(self, tmp_path):
        db = Database(str(tmp_path))
        db.define_class(doc_class())
        old = db.insert("Doc", name="old")
        db.close()

        recovered = reopen(tmp_path)
        new = recovered.insert("Doc", name="new")
        assert new.serial > old.serial  # no OID reuse

    def test_indexes_rebuild_after_recovery(self, tmp_path):
        from repro.db import Q
        db = Database(str(tmp_path))
        db.define_class(doc_class())
        oid = db.insert("Doc", name="findme")
        db.close()

        recovered = reopen(tmp_path)
        assert recovered.select("Doc", Q.eq("name", "findme")) == [oid]

    def test_media_values_survive_recovery(self, tmp_path):
        import numpy as np
        from repro.synth import moving_scene
        from repro.values import VideoValue
        db = Database(str(tmp_path))
        db.define_class(ClassDef("Clip", attributes=[
            AttributeSpec("video", VideoValue),
        ]))
        video = moving_scene(4, 16, 16)
        oid = db.insert("Clip", video=video)
        db.close()

        recovered = Database(str(tmp_path))
        recovered.define_class(ClassDef("Clip", attributes=[
            AttributeSpec("video", VideoValue),
        ]))
        restored = recovered.get(oid).video
        assert np.array_equal(restored.frames_array, video.frames_array)
        assert restored.mapping.rate == video.mapping.rate
