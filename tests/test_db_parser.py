"""The textual query language (the paper's select/where syntax)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import AttributeSpec, ClassDef, Database
from repro.db.parser import parse_predicate, parse_query, tokenize
from repro.errors import QueryError


@pytest.fixture
def db():
    database = Database()
    database.define_class(ClassDef("SimpleNewscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("whenBroadcast", str, indexed=True),
        AttributeSpec("year", int, indexed=True),
        AttributeSpec("keywords", list, keyword_indexed=True),
        AttributeSpec("rating", float),
        AttributeSpec("archived", bool),
    ]))
    database.insert("SimpleNewscast", title="60 Minutes",
                    whenBroadcast="1992-11-01", year=1992,
                    keywords=["politics"], rating=4.5, archived=False)
    database.insert("SimpleNewscast", title="Evening News",
                    whenBroadcast="1992-11-02", year=1992,
                    keywords=["news"], rating=3.0, archived=True)
    database.insert("SimpleNewscast", title="Late Show",
                    whenBroadcast="1993-01-05", year=1993,
                    keywords=["comedy"], rating=2.0)
    return database


class TestTokenizer:
    def test_strings_numbers_ops(self):
        tokens = tokenize('title = "60 Minutes" and year >= 1992')
        kinds = [t.kind for t in tokens]
        assert kinds == ["word", "op", "string", "keyword", "word", "op", "number"]

    def test_escaped_quotes(self):
        tokens = tokenize(r'"say \"hi\""')
        assert tokens[0].kind == "string"

    def test_bad_character(self):
        with pytest.raises(QueryError, match="unexpected character"):
            tokenize("title @ 3")


class TestPaperQuery:
    def test_the_exact_paper_query(self, db):
        """select SimpleNewscast where (title = "60 Minutes" and
        whenBroadcast = someDate)."""
        result = db.query(
            'select SimpleNewscast where (title = "60 Minutes" and '
            'whenBroadcast = "1992-11-01")'
        )
        assert len(result) == 1
        assert db.get(result[0]).title == "60 Minutes"

    def test_select_without_where(self, db):
        assert len(db.query("select SimpleNewscast")) == 3


class TestOperators:
    def test_comparisons(self, db):
        assert len(db.query("select SimpleNewscast where year > 1992")) == 1
        assert len(db.query("select SimpleNewscast where year >= 1992")) == 3
        assert len(db.query("select SimpleNewscast where rating < 3.0")) == 1
        assert len(db.query('select SimpleNewscast where title != "Late Show"')) == 2

    def test_between(self, db):
        assert len(db.query(
            "select SimpleNewscast where rating between 2.5 and 4.0"
        )) == 1

    def test_contains(self, db):
        assert len(db.query(
            'select SimpleNewscast where keywords contains "politics"'
        )) == 1

    def test_like(self, db):
        assert len(db.query('select SimpleNewscast where title like "news"')) == 1

    def test_is_null(self, db):
        assert len(db.query("select SimpleNewscast where archived is null")) == 1

    def test_booleans(self, db):
        assert len(db.query("select SimpleNewscast where archived = true")) == 1
        assert len(db.query("select SimpleNewscast where archived = false")) == 1

    def test_and_or_not_precedence(self, db):
        # or binds looser than and: (year=1993) or (year=1992 and rating>4)
        result = db.query(
            "select SimpleNewscast where year = 1993 or year = 1992 "
            "and rating > 4.0"
        )
        titles = sorted(db.get(o).title for o in result)
        assert titles == ["60 Minutes", "Late Show"]

    def test_not(self, db):
        result = db.query(
            'select SimpleNewscast where not title = "60 Minutes"'
        )
        assert len(result) == 2

    def test_parentheses_override(self, db):
        result = db.query(
            "select SimpleNewscast where (year = 1993 or year = 1992) "
            "and rating > 2.5"
        )
        assert len(result) == 2


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "select",                            # missing class
        "where title = 3",                   # missing select
        "select X where",                    # missing expression
        "select X where title",              # missing operator
        "select X where title = ",           # missing literal
        "select X where (title = 3",         # unbalanced paren
        "select X where title = 3 extra",    # trailing tokens
        "select X where title between 1",    # incomplete between
    ])
    def test_malformed_queries(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)

    def test_predicate_only_parser(self):
        predicate = parse_predicate('title = "x" and year > 1990')
        assert "title" in repr(predicate)
        with pytest.raises(QueryError):
            parse_predicate("select X")


class TestSessionIntegration:
    def test_session_accepts_strings(self, db):
        from repro.avdb import AVDatabaseSystem
        system = AVDatabaseSystem(database=db)
        session = system.open_session()
        hits = session.select("SimpleNewscast", 'title = "60 Minutes"')
        assert len(hits) == 1
        hits2 = session.query(
            'select SimpleNewscast where year = 1992'
        )
        assert len(hits2) == 2


class TestParserProperties:
    @given(st.text(alphabet="abcdefg \"'()=<>", max_size=40))
    @settings(max_examples=80)
    def test_parser_never_crashes_unexpectedly(self, text):
        """Any input either parses or raises QueryError — never another
        exception type."""
        try:
            parse_query("select C where " + text)
        except QueryError:
            pass

    @given(st.integers(-10**6, 10**6))
    def test_numbers_roundtrip(self, n):
        _, predicate = parse_query(f"select X where year = {n}")
        from repro.db.objects import DBObject, OID
        obj = DBObject(OID("X", 1), {"year": n})
        assert predicate.matches(obj)
