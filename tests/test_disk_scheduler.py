"""Disk-head scheduling: FCFS vs C-SCAN."""

import pytest

from repro.avtime import WorldTime
from repro.sim import Delay, Simulator, WaitEvent
from repro.storage.scheduler import DiskScheduler, Policy
from repro.errors import SchedulerStoppedError, StorageError


def run_workload(policy, positions, bits=100_000):
    """Submit interleaved requests from two 'streams'; return scheduler."""
    sim = Simulator()
    disk = DiskScheduler(sim, policy=policy)
    disk.start()
    completed = []

    def client():
        requests = [disk.submit(p, bits) for p in positions]
        for request in requests:
            yield WaitEvent(request.done)
            completed.append(request)

    proc = sim.spawn(client())
    sim.run_until_complete(proc)
    disk.stop()
    sim.run()
    return disk, completed


class TestPolicies:
    # Two sequential streams interleaved: the FCFS worst case.
    POSITIONS = [10, 900, 20, 910, 30, 920, 40, 930, 50, 940]

    def test_all_requests_served_under_both(self):
        for policy in (Policy.FCFS, Policy.CSCAN):
            disk, completed = run_workload(policy, self.POSITIONS)
            assert disk.requests_served == len(self.POSITIONS)
            assert len(completed) == len(self.POSITIONS)

    def test_cscan_reduces_seek_distance(self):
        fcfs, _ = run_workload(Policy.FCFS, self.POSITIONS)
        cscan, _ = run_workload(Policy.CSCAN, self.POSITIONS)
        assert cscan.total_seek_distance < fcfs.total_seek_distance / 3

    def test_fcfs_preserves_order(self):
        _, completed = run_workload(Policy.FCFS, self.POSITIONS)
        served_order = [r.position for r in completed]
        assert served_order == self.POSITIONS

    def test_cscan_serves_ascending_then_wraps(self):
        sim = Simulator()
        disk = DiskScheduler(sim, policy=Policy.CSCAN)
        requests = [disk.submit(p, 1000) for p in (500, 100, 700, 300, 900)]
        disk.start()

        def watcher():
            for request in requests:
                yield WaitEvent(request.done)

        proc = sim.spawn(watcher())
        sim.run_until_complete(proc)
        order = sorted(requests, key=lambda r: r.completed_at)
        # Head starts at 0: everything is 'ahead', so pure ascending order.
        assert [r.position for r in order] == [100, 300, 500, 700, 900]
        disk.stop()

    def test_requests_submitted_while_busy(self):
        sim = Simulator()
        disk = DiskScheduler(sim, policy=Policy.CSCAN)
        disk.start()
        done = []

        def early():
            request = disk.submit(100, 1_000_000)
            yield WaitEvent(request.done)
            done.append("early")

        def late():
            yield Delay(0.005)  # arrives while the first transfer runs
            request = disk.submit(50, 1_000_000)
            yield WaitEvent(request.done)
            done.append("late")

        sim.spawn(early())
        sim.spawn(late())
        sim.run()
        assert done == ["early", "late"]
        disk.stop()

    def test_validation(self):
        sim = Simulator()
        disk = DiskScheduler(sim)
        with pytest.raises(StorageError):
            disk.submit(-1, 100)
        with pytest.raises(StorageError):
            disk.submit(10**9, 100)
        with pytest.raises(StorageError):
            disk.submit(10, -5)
        disk.start()
        with pytest.raises(StorageError, match="already started"):
            disk.start()
        with pytest.raises(StorageError):
            DiskScheduler(sim, cylinders=0)

    def test_read_subroutine(self):
        sim = Simulator()
        disk = DiskScheduler(sim, policy=Policy.FCFS)
        disk.start()

        def client():
            request = yield disk.read(200, 480_000)
            return request

        proc = sim.spawn(client())
        request = sim.run_until_complete(proc)
        assert request.completed_at > 0
        # 200 cylinders * 20 µs + 480000/48e6 = 0.004 + 0.010
        assert request.completed_at == pytest.approx(0.014)
        disk.stop()


class TestShutdownSemantics:
    """stop() must never strand a waiter: queued requests fail with their
    done events fired (this used to deadlock run_until_complete)."""

    def _started(self, sim):
        disk = DiskScheduler(sim, policy=Policy.FCFS)
        disk.start()
        return disk

    def test_stop_with_queued_requests_does_not_deadlock(self, sim):
        disk = self._started(sim)
        outcomes = []

        def client(position):
            try:
                yield disk.read(position, 10_000_000)
            except SchedulerStoppedError:
                outcomes.append(("failed", position))
                return "failed"
            outcomes.append(("served", position))
            return "served"

        procs = [sim.spawn(client(p)) for p in (100, 200, 300)]
        sim.schedule_at(WorldTime(0.001), disk.stop)
        # The regression: this used to hang forever ("queue drained before
        # process completed") because queued done events never fired.
        results = [sim.run_until_complete(proc) for proc in procs]
        # The in-flight transfer completes; the two queued ones fail.
        assert results == ["served", "failed", "failed"]
        assert disk.requests_failed == 2
        assert sim.obs.metrics.counter(
            "storage.disk_requests_failed").value == 2

    def test_failed_request_carries_error_payload(self, sim):
        disk = self._started(sim)
        blocker = disk.submit(100, 10_000_000)
        queued = disk.submit(200, 10_000_000)
        sim.schedule_at(WorldTime(0.001), disk.stop)
        sim.run()
        assert blocker.completed and not blocker.failed
        assert queued.failed and not queued.completed
        assert isinstance(queued.error, SchedulerStoppedError)
        assert queued.done.triggered
        assert queued.done.payload is queued

    def test_submit_after_stop_raises(self, sim):
        disk = self._started(sim)
        disk.stop()
        with pytest.raises(SchedulerStoppedError):
            disk.submit(10, 1000)

    def test_drain_serves_backlog_before_exiting(self, sim):
        disk = self._started(sim)
        requests = [disk.submit(p, 10_000_000) for p in (100, 200, 300)]
        disk.drain()
        sim.run()
        assert all(r.completed and not r.failed for r in requests)
        assert disk.requests_failed == 0
        assert not disk.running
        with pytest.raises(SchedulerStoppedError):
            disk.submit(10, 1000)

    def test_restart_after_stop_serves_again(self, sim):
        disk = self._started(sim)
        disk.stop()
        disk.start()

        def client():
            return (yield disk.read(50, 480_000))

        request = sim.run_until_complete(sim.spawn(client()))
        assert request.completed
        assert disk.running

    def test_stop_is_idempotent(self, sim):
        disk = self._started(sim)
        disk.stop()
        disk.stop()     # a second stop is a no-op, not an error
        assert not disk.running


class TestDeadlineAccounting:
    """completed_at uses an explicit None sentinel: a request really can
    complete at virtual time 0.0 (this used to read ``completed_at > 0``)."""

    def test_completion_at_virtual_time_zero(self, sim):
        disk = DiskScheduler(sim, policy=Policy.FCFS)
        disk.start()
        # Head starts at 0; zero distance and zero bits = zero service time.
        request = disk.submit(0, 0, deadline=1.0)

        def wait():
            yield WaitEvent(request.done)

        sim.run_until_complete(sim.spawn(wait()))
        assert request.completed_at == 0.0
        assert request.completed          # NOT mistaken for "pending"
        assert request.wait_seconds == 0.0
        assert not request.missed_deadline
        assert disk.deadline_misses == 0
        assert disk.mean_wait([request]) == 0.0

    def test_pending_request_raises_on_wait_seconds(self, sim):
        disk = DiskScheduler(sim, policy=Policy.FCFS)
        request = disk.submit(10, 1000)
        assert not request.completed
        with pytest.raises(StorageError, match="not completed"):
            request.wait_seconds

    def test_deadline_miss_still_detected(self, sim):
        disk = DiskScheduler(sim, policy=Policy.FCFS)
        disk.start()
        # 500 cylinders * 20 us + 480000/48e6 = 0.020 s > the 0.005 deadline.
        request = disk.submit(500, 480_000, deadline=0.005)

        def wait():
            yield WaitEvent(request.done)

        sim.run_until_complete(sim.spawn(wait()))
        assert request.missed_deadline
        assert disk.deadline_misses == 1
