"""Disk-head scheduling: FCFS vs C-SCAN."""

import pytest

from repro.sim import Delay, Simulator, WaitEvent
from repro.storage.scheduler import DiskScheduler, Policy
from repro.errors import StorageError


def run_workload(policy, positions, bits=100_000):
    """Submit interleaved requests from two 'streams'; return scheduler."""
    sim = Simulator()
    disk = DiskScheduler(sim, policy=policy)
    disk.start()
    completed = []

    def client():
        requests = [disk.submit(p, bits) for p in positions]
        for request in requests:
            yield WaitEvent(request.done)
            completed.append(request)

    proc = sim.spawn(client())
    sim.run_until_complete(proc)
    disk.stop()
    sim.run()
    return disk, completed


class TestPolicies:
    # Two sequential streams interleaved: the FCFS worst case.
    POSITIONS = [10, 900, 20, 910, 30, 920, 40, 930, 50, 940]

    def test_all_requests_served_under_both(self):
        for policy in (Policy.FCFS, Policy.CSCAN):
            disk, completed = run_workload(policy, self.POSITIONS)
            assert disk.requests_served == len(self.POSITIONS)
            assert len(completed) == len(self.POSITIONS)

    def test_cscan_reduces_seek_distance(self):
        fcfs, _ = run_workload(Policy.FCFS, self.POSITIONS)
        cscan, _ = run_workload(Policy.CSCAN, self.POSITIONS)
        assert cscan.total_seek_distance < fcfs.total_seek_distance / 3

    def test_fcfs_preserves_order(self):
        _, completed = run_workload(Policy.FCFS, self.POSITIONS)
        served_order = [r.position for r in completed]
        assert served_order == self.POSITIONS

    def test_cscan_serves_ascending_then_wraps(self):
        sim = Simulator()
        disk = DiskScheduler(sim, policy=Policy.CSCAN)
        requests = [disk.submit(p, 1000) for p in (500, 100, 700, 300, 900)]
        disk.start()

        def watcher():
            for request in requests:
                yield WaitEvent(request.done)

        proc = sim.spawn(watcher())
        sim.run_until_complete(proc)
        order = sorted(requests, key=lambda r: r.completed_at)
        # Head starts at 0: everything is 'ahead', so pure ascending order.
        assert [r.position for r in order] == [100, 300, 500, 700, 900]
        disk.stop()

    def test_requests_submitted_while_busy(self):
        sim = Simulator()
        disk = DiskScheduler(sim, policy=Policy.CSCAN)
        disk.start()
        done = []

        def early():
            request = disk.submit(100, 1_000_000)
            yield WaitEvent(request.done)
            done.append("early")

        def late():
            yield Delay(0.005)  # arrives while the first transfer runs
            request = disk.submit(50, 1_000_000)
            yield WaitEvent(request.done)
            done.append("late")

        sim.spawn(early())
        sim.spawn(late())
        sim.run()
        assert done == ["early", "late"]
        disk.stop()

    def test_validation(self):
        sim = Simulator()
        disk = DiskScheduler(sim)
        with pytest.raises(StorageError):
            disk.submit(-1, 100)
        with pytest.raises(StorageError):
            disk.submit(10**9, 100)
        with pytest.raises(StorageError):
            disk.submit(10, -5)
        disk.start()
        with pytest.raises(StorageError, match="already started"):
            disk.start()
        with pytest.raises(StorageError):
            DiskScheduler(sim, cylinders=0)

    def test_read_subroutine(self):
        sim = Simulator()
        disk = DiskScheduler(sim, policy=Policy.FCFS)
        disk.start()

        def client():
            request = yield disk.read(200, 480_000)
            return request

        proc = sim.spawn(client())
        request = sim.run_until_complete(proc)
        assert request.completed_at > 0
        # 200 cylinders * 20 µs + 480000/48e6 = 0.004 + 0.010
        assert request.completed_at == pytest.approx(0.014)
        disk.stop()
