"""Temporal composition: tcomp specs, timelines (Fig. 1), composites."""

import pytest

from repro.avtime import AllenRelation, WorldTime
from repro.errors import SchemaError, TemporalError
from repro.synth import NEWSCAST_CLIP_SPEC, fig1_timeline, newscast_clip, moving_scene, tone
from repro.temporal import TCompSpec, TemporalComposite, Timeline, TrackSpec
from repro.values.mediatype import standard_type


class TestTrackSpec:
    def test_accepts_by_media_type(self):
        spec = TrackSpec("videoTrack", standard_type("video/*"))
        assert spec.accepts_value(moving_scene(2))
        assert not spec.accepts_value(tone(0.1))

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            TrackSpec("bad name", standard_type("video/*"))


class TestTCompSpec:
    def test_newscast_spec_shape(self):
        """The paper's Newscast tcomp: 4 tracks."""
        assert NEWSCAST_CLIP_SPEC.name == "clip"
        assert NEWSCAST_CLIP_SPEC.track_names == (
            "videoTrack", "englishTrack", "frenchTrack", "subtitleTrack",
        )

    def test_duplicate_tracks_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TCompSpec("t", (
                TrackSpec("a", standard_type("video/*")),
                TrackSpec("a", standard_type("audio/*")),
            ))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError, match="no tracks"):
            TCompSpec("t", ())

    def test_validate_values_full_checks(self):
        video, audio = moving_scene(2), tone(0.1)
        spec = TCompSpec("t", (
            TrackSpec("v", standard_type("video/*")),
            TrackSpec("a", standard_type("audio/*")),
        ))
        spec.validate_values({"v": video, "a": audio})
        with pytest.raises(TemporalError, match="missing"):
            spec.validate_values({"v": video})
        with pytest.raises(SchemaError, match="unknown"):
            spec.validate_values({"v": video, "a": audio, "x": audio})
        with pytest.raises(SchemaError, match="requires"):
            spec.validate_values({"v": audio, "a": video})


class TestTimeline:
    def test_fig1_shape(self):
        """Fig. 1: videoTrack spans [t0,t1); the other tracks [t1,t2)."""
        timeline = fig1_timeline(t0=0.0, t1=1.0, t2=3.0)
        assert timeline.relation("videoTrack", "englishTrack") is AllenRelation.MEETS
        assert timeline.relation("englishTrack", "frenchTrack") is AllenRelation.EQUALS
        assert timeline.duration == WorldTime(3.0)
        assert not timeline.simultaneous("videoTrack", "subtitleTrack")

    def test_render_ascii_reproduces_fig1(self):
        art = fig1_timeline().render_ascii(width=30)
        lines = art.splitlines()
        assert len(lines) == 5  # 4 tracks + axis
        video_bar = lines[0]
        english_bar = lines[1]
        # Video bar starts at the left; english bar starts later.
        assert video_bar.index("=") < english_bar.index("=")

    def test_duplicate_track_rejected(self):
        timeline = Timeline()
        timeline.place("a", WorldTime(0.0), WorldTime(1.0))
        with pytest.raises(TemporalError, match="already placed"):
            timeline.place("a", WorldTime(1.0), WorldTime(1.0))

    def test_active_at(self):
        timeline = fig1_timeline(0.0, 1.0, 3.0)
        assert [e.track for e in timeline.active_at(WorldTime(0.5))] == ["videoTrack"]
        active_late = {e.track for e in timeline.active_at(WorldTime(2.0))}
        assert active_late == {"englishTrack", "frenchTrack", "subtitleTrack"}

    def test_shift_and_scale(self):
        timeline = fig1_timeline(0.0, 1.0, 3.0)
        shifted = timeline.shifted(WorldTime(10.0))
        assert shifted.entry("videoTrack").start == WorldTime(10.0)
        scaled = timeline.scaled(2.0)
        assert scaled.duration == WorldTime(6.0)
        assert scaled.entry("englishTrack").start == WorldTime(2.0)

    def test_empty_timeline_has_no_span(self):
        with pytest.raises(TemporalError):
            Timeline().span()

    def test_unknown_track(self):
        with pytest.raises(TemporalError):
            fig1_timeline().entry("audioTrack")


class TestTemporalComposite:
    def test_default_timeline_from_value_intervals(self, clip):
        assert set(clip.timeline.tracks) == set(clip.track_names)
        assert clip.duration.seconds > 0

    def test_attribute_style_track_access(self, clip):
        assert clip.videoTrack is clip.value("videoTrack")
        with pytest.raises(AttributeError):
            clip.nonexistentTrack

    def test_active_tracks(self):
        clip = newscast_clip(video_frames=30, audio_seconds=2.0,
                             video_delay_s=2.0)
        # Video delayed 2s: at t=0.5 only audio/subtitles play.
        active = set(clip.active_tracks(WorldTime(0.5)))
        assert "videoTrack" not in active
        assert "englishTrack" in active
        assert "videoTrack" in clip.active_tracks(WorldTime(2.5))

    def test_translate_preserves_correlation(self, clip):
        moved = clip.translate(WorldTime(5.0))
        for track in clip.track_names:
            delta = moved.value(track).start - clip.value(track).start
            assert delta == WorldTime(5.0)
        assert moved.duration.seconds == pytest.approx(clip.duration.seconds)

    def test_scale_stretches_everything(self, clip):
        slow = clip.scale(2.0)
        assert slow.duration.seconds == pytest.approx(clip.duration.seconds * 2)
        for track in clip.track_names:
            assert slow.value(track).duration.seconds == pytest.approx(
                clip.value(track).duration.seconds * 2
            )

    def test_validate_alignment_detects_mismatch(self, clip):
        clip.validate_alignment()  # default timeline always aligns
        from repro.temporal import Timeline, TimelineEntry
        from repro.avtime import Interval
        bad_timeline = Timeline([
            TimelineEntry(t, Interval(WorldTime(9.0), WorldTime(1.0)))
            for t in clip.track_names
        ])
        bad = TemporalComposite(clip.spec, dict(clip), bad_timeline)
        with pytest.raises(TemporalError, match="does not match"):
            bad.validate_alignment()

    def test_timeline_track_mismatch_rejected(self, clip):
        partial = Timeline()
        partial.place("videoTrack", WorldTime(0.0), WorldTime(1.0))
        with pytest.raises(TemporalError, match="does not place"):
            TemporalComposite(clip.spec, dict(clip), partial)


class TestRelativePlacement:
    def anchor_timeline(self):
        timeline = Timeline()
        timeline.place("video", WorldTime(2.0), WorldTime(4.0))  # [2, 6)
        return timeline

    @pytest.mark.parametrize("relation", [
        AllenRelation.BEFORE, AllenRelation.AFTER, AllenRelation.MEETS,
        AllenRelation.MET_BY, AllenRelation.STARTS, AllenRelation.FINISHES,
        AllenRelation.DURING, AllenRelation.OVERLAPS,
        AllenRelation.OVERLAPPED_BY,
    ])
    def test_achieved_relation_matches_request(self, relation):
        timeline = self.anchor_timeline()
        timeline.place_relative("other", relation, "video", WorldTime(1.0))
        assert timeline.relation("other", "video") is relation

    def test_equals_and_contains(self):
        timeline = self.anchor_timeline()
        timeline.place_relative("same", AllenRelation.EQUALS, "video",
                                WorldTime(4.0))
        assert timeline.relation("same", "video") is AllenRelation.EQUALS
        timeline.place_relative("outer", AllenRelation.CONTAINS, "video",
                                WorldTime(6.0))
        assert timeline.relation("outer", "video") is AllenRelation.CONTAINS

    def test_met_by_concrete_position(self):
        """'Subtitles start when the video ends' — the Fig. 1 shape."""
        timeline = self.anchor_timeline()
        entry = timeline.place_relative("subtitles", AllenRelation.MET_BY,
                                        "video", WorldTime(2.0))
        assert entry.start == WorldTime(6.0)
        assert entry.end == WorldTime(8.0)

    def test_impossible_placement_rejected(self):
        timeline = self.anchor_timeline()
        # DURING with a duration longer than the anchor cannot hold.
        with pytest.raises(TemporalError, match="cannot place"):
            timeline.place_relative("too_long", AllenRelation.DURING,
                                    "video", WorldTime(10.0))

    def test_contains_needs_longer_duration(self):
        timeline = self.anchor_timeline()
        with pytest.raises(TemporalError, match="cannot place"):
            timeline.place_relative("too_short", AllenRelation.CONTAINS,
                                    "video", WorldTime(1.0))

    def test_reference_must_exist(self):
        timeline = Timeline()
        with pytest.raises(TemporalError, match="no track"):
            timeline.place_relative("x", AllenRelation.MEETS, "ghost",
                                    WorldTime(1.0))

    def test_offset_controls_overlap_amount(self):
        timeline = self.anchor_timeline()
        entry = timeline.place_relative(
            "lead_in", AllenRelation.OVERLAPS, "video",
            WorldTime(2.0), offset=WorldTime(0.5),
        )
        # Starts 0.5 s before the anchor, overlapping its first 1.5 s.
        assert entry.start == WorldTime(1.5)
        assert timeline.relation("lead_in", "video") is AllenRelation.OVERLAPS
