"""The activity model: ports, typed connections, events, lifecycle,
graph validation — paper §4.2's contracts."""

import pytest

from repro.activities import (
    ActivityGraph,
    ActivityKind,
    ActivityState,
    Connection,
    Direction,
    EVENT_EACH_FRAME,
    EVENT_FINISHED,
    EVENT_LAST_FRAME,
    EVENT_STARTED,
)
from repro.activities.library import (
    VideoDecoder,
    VideoMixer,
    VideoReader,
    VideoTee,
    VideoWindow,
    VideoWriter,
)
from repro.avtime import WorldTime
from repro.codecs import JPEGCodec
from repro.errors import (
    ActivityError,
    ActivityStateError,
    ConnectionError_,
    GraphError,
    PortError,
)
from repro.values.mediatype import standard_type


class TestPortsAndConnections:
    def test_port_direction_rules(self, sim, small_video):
        reader = VideoReader(sim)
        window = VideoWindow(sim)
        out_port = reader.port("video_out")
        in_port = window.port("video_in")
        assert out_port.direction is Direction.OUT
        assert in_port.direction is Direction.IN
        with pytest.raises(ConnectionError_, match="must be an 'out' port"):
            Connection(sim, in_port, in_port)
        with pytest.raises(ConnectionError_, match="must be an 'in' port"):
            Connection(sim, out_port, out_port)

    def test_same_data_type_rule(self, sim, small_video):
        """'An in port can be connected to an out port provided they are
        of the same data type.'"""
        codec = JPEGCodec(75)
        reader = VideoReader(sim)
        reader.bind(codec.encode_value(small_video))  # port narrows to jpeg
        window = VideoWindow(sim)  # accepts raw only
        with pytest.raises(ConnectionError_, match="type mismatch"):
            Connection(sim, reader.port("video_out"), window.port("video_in"))

    def test_double_connection_rejected(self, sim, small_video):
        reader = VideoReader(sim)
        reader.bind(small_video)
        w1, w2 = VideoWindow(sim), VideoWindow(sim)
        Connection(sim, reader.port("video_out"), w1.port("video_in"))
        with pytest.raises(ConnectionError_, match="use a tee"):
            Connection(sim, reader.port("video_out"), w2.port("video_in"))

    def test_port_narrowing(self, sim, small_video):
        reader = VideoReader(sim)
        assert reader.port("video_out").media_type.is_abstract
        reader.bind(small_video)
        assert reader.port("video_out").media_type.name == "video/raw"

    def test_narrow_incompatible_rejected(self, sim):
        reader = VideoReader(sim, media_type=standard_type("video/jpeg"))
        with pytest.raises(PortError):
            reader.port("video_out").narrow(standard_type("audio/pcm"))

    def test_unknown_port_name(self, sim):
        reader = VideoReader(sim)
        with pytest.raises(PortError, match="no port"):
            reader.port("audio_out")

    def test_duplicate_port_name_rejected(self, sim):
        reader = VideoReader(sim)
        with pytest.raises(PortError, match="already has a port"):
            reader.add_port("video_out", Direction.OUT, standard_type("video/raw"))

    def test_send_on_unconnected_port_fails(self, sim, small_video):
        reader = VideoReader(sim)
        reader.bind(small_video)
        reader.start()
        with pytest.raises(PortError, match="not connected"):
            sim.run()


class TestKindClassification:
    def test_source_sink_transformer(self, sim):
        assert VideoReader(sim).kind is ActivityKind.SOURCE
        assert VideoWindow(sim).kind is ActivityKind.SINK
        codec = JPEGCodec(75)
        assert VideoDecoder(sim, codec, 16, 16, 8).kind is ActivityKind.TRANSFORMER
        assert VideoMixer(sim).kind is ActivityKind.TRANSFORMER
        assert VideoTee(sim).kind is ActivityKind.TRANSFORMER
        assert VideoWriter(sim).kind is ActivityKind.SINK


class TestLifecycle:
    def build_pipeline(self, sim, video):
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim, name="r"))
        reader.bind(video)
        window = graph.add(VideoWindow(sim, name="w"))
        graph.connect(reader.port("video_out"), window.port("video_in"))
        return graph, reader, window

    def test_states_progress(self, sim, small_video):
        graph, reader, window = self.build_pipeline(sim, small_video)
        assert reader.state is ActivityState.CREATED
        graph.start_all()
        assert reader.state is ActivityState.RUNNING
        graph.run()
        assert reader.state is ActivityState.FINISHED
        assert window.state is ActivityState.FINISHED

    def test_double_start_rejected(self, sim, small_video):
        graph, reader, _ = self.build_pipeline(sim, small_video)
        reader.start()
        with pytest.raises(ActivityStateError, match="already running"):
            reader.start()

    def test_unbound_source_fails_at_start(self, sim):
        reader = VideoReader(sim)
        with pytest.raises(ActivityError, match="no bound value"):
            reader.start()

    def test_bind_while_running_rejected(self, sim, small_video):
        graph, reader, _ = self.build_pipeline(sim, small_video)
        reader.start()
        with pytest.raises(ActivityStateError):
            reader.bind(small_video)

    def test_stop_mid_stream(self, sim, small_video):
        graph, reader, window = self.build_pipeline(sim, small_video)
        graph.start_all()

        def stopper():
            from repro.sim import Delay
            yield Delay(0.15)  # ~4 frames at 30 fps
            reader.stop()

        sim.spawn(stopper())
        graph.run()
        assert reader.state is ActivityState.STOPPED
        assert 2 <= len(window.presented) < 10

    def test_stop_when_not_running_rejected(self, sim):
        reader = VideoReader(sim)
        with pytest.raises(ActivityStateError):
            reader.stop()

    def test_cue_positions_source(self, sim, small_video):
        """'Cueing a VideoSource activity to world time 0 would position it
        at the first frame' — and later cues skip frames."""
        graph, reader, window = self.build_pipeline(sim, small_video)
        reader.cue(WorldTime(0.2))  # skip first 6 frames at 30 fps
        graph.run_to_completion()
        assert len(window.presented) == small_video.num_frames - 6


class TestEvents:
    def test_each_and_last_frame(self, sim, small_video):
        """The paper's EACH-FRAME / LAST-FRAME notification example."""
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim))
        reader.bind(small_video)
        window = graph.add(VideoWindow(sim))
        graph.connect(reader.port("video_out"), window.port("video_in"))
        each, last = [], []
        reader.catch(EVENT_EACH_FRAME, lambda a, e, p: each.append(p))
        reader.catch(EVENT_LAST_FRAME, lambda a, e, p: last.append(p))
        graph.run_to_completion()
        assert each == list(range(small_video.num_frames))
        assert last == [small_video.num_frames - 1]

    def test_started_finished_events(self, sim, small_video):
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim))
        reader.bind(small_video)
        window = graph.add(VideoWindow(sim))
        graph.connect(reader.port("video_out"), window.port("video_in"))
        seen = []
        for name in (EVENT_STARTED, EVENT_FINISHED):
            reader.catch(name, lambda a, e, p: seen.append(e))
        graph.run_to_completion()
        assert seen == [EVENT_STARTED, EVENT_FINISHED]

    def test_catch_unknown_event_rejected(self, sim):
        reader = VideoReader(sim)
        with pytest.raises(ActivityError, match="unknown event"):
            reader.catch("EACH_SAMPLE", lambda a, e, p: None)


class TestGraphValidation:
    def test_dangling_port_detected(self, sim, small_video):
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim))
        reader.bind(small_video)
        with pytest.raises(GraphError, match="not connected"):
            graph.validate()

    def test_cycle_detected(self, sim):
        graph = ActivityGraph(sim)
        m1 = graph.add(VideoMixer(sim, name="m1"))
        t1 = graph.add(VideoTee(sim, name="t1"))
        graph.connect(m1.port("video_out"), t1.port("video_in"))
        graph.connect(t1.port("video_out_0"), m1.port("video_in_0"))
        graph.connect(t1.port("video_out_1"), m1.port("video_in_1"))
        with pytest.raises(GraphError, match="cycle"):
            graph.validate()

    def test_duplicate_activity_rejected(self, sim):
        graph = ActivityGraph(sim)
        reader = VideoReader(sim, name="x")
        graph.add(reader)
        with pytest.raises(GraphError, match="already in graph"):
            graph.add(reader)

    def test_foreign_port_rejected(self, sim):
        graph = ActivityGraph(sim)
        reader = VideoReader(sim)  # never added
        window = graph.add(VideoWindow(sim))
        with pytest.raises(GraphError, match="does not belong"):
            graph.connect(reader.port("video_out"), window.port("video_in"))


class TestGraphRendering:
    def test_render_ascii_shows_nodes_and_arcs(self, sim, small_video):
        """The paper's §4.2 graphical notation: nodes + directed arcs."""
        from repro.codecs import JPEGCodec
        codec = JPEGCodec(80)
        encoded = codec.encode_value(small_video)
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim, name="read"))
        reader.bind(encoded)
        decoder = graph.add(VideoDecoder(sim, codec, 32, 24, 8, name="decode"))
        window = graph.add(VideoWindow(sim, name="display"))
        graph.connect(reader.port("video_out"), decoder.port("video_in"))
        graph.connect(decoder.port("video_out"), window.port("video_in"))
        art = graph.render_ascii()
        assert "[read]  (source)" in art
        assert "[decode]  (transformer)" in art
        assert "[display]  (sink)" in art
        assert "[read] --video/jpeg--> [decode]" in art
        assert "[decode] --video/raw--> [display]" in art

    def test_render_ascii_composites_bracketed(self, sim, small_video):
        from repro.activities import CompositeActivity
        from repro.activities.ports import Connection
        from repro.codecs import JPEGCodec
        codec = JPEGCodec(80)
        encoded = codec.encode_value(small_video)
        graph = ActivityGraph(sim)
        source = CompositeActivity(sim, name="source")
        reader = VideoReader(sim, name="read")
        reader.bind(encoded)
        decoder = VideoDecoder(sim, codec, 32, 24, 8, name="decode")
        source.install(reader)
        source.install(decoder)
        Connection(sim, reader.port("video_out"), decoder.port("video_in"))
        source.export(decoder.port("video_out"), "out")
        graph.add(source)
        art = graph.render_ascii()
        assert "[source: [read] [decode]]" in art
