"""Cache tier: policies, block cache, edge streams, hot boost, scenarios."""

import pytest

from repro.cache import (
    BlockCache,
    CacheTier,
    CostAwarePolicy,
    LRUPolicy,
    content_stamp,
    make_policy,
    span_blocks,
)
from repro.cache.scenarios import churn, zipf_crowd
from repro.cluster import ClusterPlacementManager, StorageNode
from repro.cluster.scenarios import Blob
from repro.errors import CacheError
from repro.obs import scoped
from repro.sim import Delay
from repro.watch.invariants import InvariantMonitor


def make_cluster(sim, nodes=3, replication=2):
    cluster = ClusterPlacementManager(sim, replication=replication)
    for i in range(nodes):
        cluster.add_node(StorageNode(sim, f"node-{i}"))
    return cluster


def make_tier(sim, cluster, **kwargs):
    kwargs.setdefault("edges", 2)
    kwargs.setdefault("hot_threshold", 10_000)  # hot path off by default
    return CacheTier(sim, cluster, **kwargs)


def read_all(sim, stream, chunk_bits=240_000):
    """Drive a stream to the end of its value; return the digest."""
    total = stream.placement.nbytes * 8

    def client():
        while stream.bits_read < total:
            yield from stream.read(min(chunk_bits, total - stream.bits_read))

    sim.run_until_complete(sim.spawn(client(), name=f"read:{stream.label}"))
    return stream.digest


class TestEvictionPolicies:
    def test_lru_evicts_least_recently_touched(self):
        policy = LRUPolicy()
        for key in ("a", "b", "c"):
            policy.admitted(key, 1.0)
        policy.touched("a")  # b is now the coldest
        assert policy.victim() == "b"
        assert policy.victim() == "c"
        assert policy.victim() == "a"

    def test_cost_aware_keeps_frequent_blocks(self):
        policy = CostAwarePolicy()
        policy.admitted("hot", 1.0)
        policy.admitted("cold", 1.0)
        for _ in range(5):
            policy.touched("hot")
        assert policy.victim() == "cold"

    def test_cost_aware_aging_lets_new_blocks_win(self):
        # GDSF: the clock advances with each eviction, so a once-popular
        # block cannot pin the cache forever against fresh admissions.
        policy = CostAwarePolicy()
        policy.admitted("old", 1.0)
        for _ in range(3):
            policy.touched("old")
        for i in range(10):
            policy.admitted(f"n{i}", 1.0)
            policy.victim()
        assert "old" not in policy._blocks

    def test_make_policy(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("cost-aware"), CostAwarePolicy)
        with pytest.raises(CacheError, match="unknown eviction policy"):
            make_policy("clairvoyant")


class TestBlockCache:
    def test_fill_then_hit_and_span_geometry(self, sim):
        cache = BlockCache(sim, "c", capacity_bytes=300_000,
                           block_bytes=30_000)
        assert not cache.get("k", 0, 60_000, version=0)
        assert cache.put("k", 0, 60_000, version=0) == 2
        assert cache.get("k", 0, 60_000, version=0)
        assert cache.get("k", 30_000, 30_000, version=0)
        # A span partially resident is a miss (all-or-nothing).
        assert not cache.get("k", 30_000, 60_000, version=0)
        assert list(span_blocks(30_000, 45_000, 30_000)) == [1, 2]

    def test_version_mismatch_is_a_miss(self, sim):
        cache = BlockCache(sim, "c", 300_000, 30_000)
        cache.put("k", 0, 30_000, version=0)
        assert not cache.get("k", 0, 30_000, version=1)
        assert cache.versions_of("k") == [0]

    def test_invalidate_drops_stale_and_blocks_late_fills(self, sim):
        cache = BlockCache(sim, "c", 300_000, 30_000)
        cache.put("k", 0, 90_000, version=0)
        assert cache.invalidate("k", min_version=1) == 3
        assert cache.resident_blocks == 0
        # A fill that raced the bump arrives late: refused by the floor.
        assert cache.put("k", 0, 30_000, version=0) == 0
        assert cache.put("k", 0, 30_000, version=1) == 1

    def test_capacity_evicts_but_never_overflows(self, sim):
        cache = BlockCache(sim, "c", capacity_bytes=90_000,
                           block_bytes=30_000)
        for i in range(10):
            cache.put("k", i * 30_000, 30_000, version=0)
        assert cache.resident_blocks == 3
        assert cache.bytes_used <= cache.capacity_bytes
        assert sim.obs.metrics.counter("cache.evictions").value == 7

    def test_capacity_below_one_block_rejected(self, sim):
        with pytest.raises(CacheError, match="below one"):
            BlockCache(sim, "c", capacity_bytes=10, block_bytes=30_000)

    def test_content_stamp_is_version_sensitive(self):
        assert content_stamp("k", 0, 0) != content_stamp("k", 1, 0)
        assert content_stamp("k", 0, 0) == content_stamp("k", 0, 0)


class TestEdgeStreams:
    def test_cold_warm_evicted_reads_are_byte_identical(self, sim):
        cluster = make_cluster(sim)
        tier = make_tier(sim, cluster)
        value = Blob(300_000, 6e6)
        cluster.place(value, key="v")

        cold = tier.open_read(value, 6e6, label="cold")
        warm = tier.open_read(value, 6e6, label="warm")
        cold_digest = read_all(sim, cold)
        warm_digest = read_all(sim, warm)
        assert cold.misses > 0 and warm.hits > 0  # distinct paths...
        assert cold_digest == warm_digest  # ...same bytes

        # A cache too small for the value forces evictions mid-read and
        # still serves identical content.
        tiny_cluster_sim = sim  # same kernel, fresh tier over new nodes
        evicted = CacheTier(tiny_cluster_sim, cluster, edges=1,
                            edge_capacity_bytes=60_000,
                            hot_threshold=10_000).open_read(
                                value, 6e6, label="evicted")
        assert read_all(sim, evicted) == cold_digest
        for stream in (cold, warm, evicted):
            stream.close()

    def test_coherence_after_version_bump(self, sim):
        cluster = make_cluster(sim)
        tier = make_tier(sim, cluster)
        value = Blob(120_000, 6e6)
        cluster.place(value, key="v")
        before = read_all(sim, tier.open_read(value, 6e6, label="r0"))
        cluster.bump_version(value)
        # Eager invalidation: nothing stale is resident anywhere.
        for cache in tier.all_caches:
            assert all(tag >= 1 for key in ("v", "v#0")
                       for tag in cache.versions_of(key))
        after = tier.open_read(value, 6e6, label="r1")
        after_digest = read_all(sim, after)
        assert after_digest != before  # new version, new bytes
        assert read_all(sim, tier.open_read(value, 6e6,
                                            label="r2")) == after_digest

    def test_all_edges_dead_degrades_to_passthrough(self, sim):
        cluster = make_cluster(sim)
        tier = make_tier(sim, cluster)
        value = Blob(120_000, 6e6)
        cluster.place(value, key="v")
        for edge in tier.edges:
            edge.kill()
            assert edge.cache.resident_blocks == 0  # RAM died with it
        stream = tier.open_read(value, 6e6, label="orphan")
        digest = read_all(sim, stream)
        assert stream.passthroughs > 0 and stream.hits == 0
        assert stream.serving_edge is None
        # Pass-through serves the same bytes the cached path would.
        tier.edge("edge-0").restore()
        assert read_all(sim, tier.open_read(value, 6e6,
                                            label="back")) == digest

    def test_mid_stream_edge_kill_switches_or_passes_through(self, sim):
        cluster = make_cluster(sim)
        tier = make_tier(sim, cluster)
        value = Blob(600_000, 6e6)
        cluster.place(value, key="v")
        stream = tier.open_read(value, 6e6, label="viewer")
        total = stream.placement.nbytes * 8

        def client():
            while stream.bits_read < total:
                yield from stream.read(240_000)

        def killer():
            yield Delay(0.05)
            for edge in tier.edges:
                edge.kill()

        sim.spawn(client(), name="client")
        sim.spawn(killer(), name="killer")
        sim.run()
        assert stream.bits_read == total
        assert stream.passthroughs > 0


class TestHotBoostLifecycle:
    def test_crowd_boosts_then_restores_replication(self, sim):
        cluster = make_cluster(sim, nodes=3, replication=1)
        cluster.repair.start()
        tier = make_tier(sim, cluster, hot_threshold=4, hot_window_s=0.2)
        value = Blob(120_000, 6e6)
        placement = cluster.place(value, key="viral")
        monitor = InvariantMonitor(sim).arm(cluster=cluster, tier=tier)
        seen = {}

        def crowd():
            streams = [tier.open_read(value, 6e6, label=f"fan-{i}")
                       for i in range(6)]
            # Chunked reads: each is one detector note, so the window
            # sees a burst well past hot_threshold.
            for stream in streams:
                for _ in range(4):
                    yield from stream.read(240_000)
            seen["mid"] = placement.replication
            for stream in streams:
                stream.close()

        sim.spawn(crowd(), name="crowd")
        sim.run()
        assert seen["mid"] == 2  # boosted past declared R while hot
        assert placement.declared_replication == 1
        tier.shutdown()
        cluster.shutdown()
        sim.run()
        # The crowd passed: R restored, no inflated replicas, no leaked
        # extents — exactly what the teardown probe asserts.
        assert placement.replication == 1
        assert [b.invariant for b in monitor.check_teardown()] == []
        metrics = sim.obs.metrics
        assert (metrics.counter("cluster.replica_boosts").value
                == metrics.counter("cluster.replica_unboosts").value >= 1)

    def test_leaked_boost_is_a_teardown_breach(self, sim):
        cluster = make_cluster(sim, nodes=3, replication=1)
        tier = make_tier(sim, cluster)
        value = Blob(60_000, 6e6)
        placement = cluster.place(value, key="v")
        monitor = InvariantMonitor(sim).arm(cluster=cluster, tier=tier)
        cluster.repair.boost(placement)
        breaches = monitor.check_teardown()
        assert any("leaked boost" in b.detail for b in breaches)
        cluster.repair.unboost(placement)

    def test_stale_cache_is_a_coherence_breach(self, sim):
        cluster = make_cluster(sim)
        tier = make_tier(sim, cluster)
        value = Blob(60_000, 6e6)
        cluster.place(value, key="v")
        read_all(sim, tier.open_read(value, 6e6, label="r"))
        monitor = InvariantMonitor(sim).arm(cluster=cluster, tier=tier)
        assert monitor.check_now() == []
        # Bump the version behind the tier's back (no listener fired):
        # resident blocks now carry stale tags the probe must catch.
        cluster.placement_of(value).version += 1
        breaches = monitor.check_now()
        assert [b.invariant for b in breaches] == ["cache-coherence"]


class TestCacheScenarios:
    def test_zipf_crowd_caching_wins_and_is_deterministic(self):
        with scoped(tracing=False):
            cached = zipf_crowd(seed=3, sessions=300)
        with scoped(tracing=False):
            again = zipf_crowd(seed=3, sessions=300)
        with scoped(tracing=False):
            bare = zipf_crowd(seed=3, sessions=300, cached=False)
        assert cached == again  # same seed, same facts, same digest
        assert cached["goodput_mbps"] > bare["goodput_mbps"]
        assert cached["interactive_violations"] == 0
        assert cached["hit_ratio"] > 0.5
        assert cached["stranded_processes"] == 0
        assert cached["boosted_at_end"] == 0

    def test_churn_serves_no_stale_bytes(self):
        with scoped(tracing=False):
            facts = churn(seed=0)
        with scoped(tracing=False):
            again = churn(seed=0)
        assert facts == again
        assert facts["stale_tags"] == 0
        assert facts["wave_agreement"] is True
        assert facts["a_changed_after_bump"] is True
        assert facts["b_stable"] is True
        assert facts["edge_deaths"] == 1
        assert facts["stranded_processes"] == 0

    def test_policies_differ_but_stay_correct(self):
        with scoped(tracing=False):
            lru = zipf_crowd(seed=1, sessions=200, policy="lru")
        with scoped(tracing=False):
            gdsf = zipf_crowd(seed=1, sessions=200, policy="cost-aware")
        # Same workload, same content digests — policy changes *when*
        # blocks die, never what bytes a reader sees.
        assert lru["digest"] == gdsf["digest"]
        assert lru["interactive_violations"] == 0
        assert gdsf["interactive_violations"] == 0
