"""Composite activities: export rules, Fig. 2 equivalence, MultiSource /
MultiSink pairing, synchronization maintenance."""

import numpy as np
import pytest

from repro.activities import (
    ActivityGraph,
    ActivityState,
    CompositeActivity,
    MultiSink,
    MultiSource,
)
from repro.activities.library import (
    Speaker,
    SubtitleWindow,
    VideoDecoder,
    VideoReader,
    VideoWindow,
)
from repro.activities.ports import Connection
from repro.codecs import JPEGCodec
from repro.errors import ActivityError, PortError
from repro.sim import Simulator
from repro.streams.sync import RandomWalkJitter


def fig2_simple_chain(sim, encoded, codec):
    """Fig. 2 top: read -> decode -> display as three graph activities."""
    graph = ActivityGraph(sim)
    reader = graph.add(VideoReader(sim, name="read"))
    reader.bind(encoded)
    decoder = graph.add(VideoDecoder(sim, codec, encoded.width, encoded.height,
                                     encoded.depth, name="decode"))
    window = graph.add(VideoWindow(sim, name="display"))
    graph.connect(reader.port("video_out"), decoder.port("video_in"))
    graph.connect(decoder.port("video_out"), window.port("video_in"))
    return graph, window


def fig2_composite(sim, encoded, codec):
    """Fig. 2 bottom: source = {read, decode}; source -> display."""
    graph = ActivityGraph(sim)
    source = CompositeActivity(sim, name="source")
    reader = VideoReader(sim, name="read2")
    reader.bind(encoded)
    decoder = VideoDecoder(sim, codec, encoded.width, encoded.height,
                           encoded.depth, name="decode2")
    source.install(reader)
    source.install(decoder)
    Connection(sim, reader.port("video_out"), decoder.port("video_in"))
    out = source.export(decoder.port("video_out"), "out")
    graph.add(source)
    window = graph.add(VideoWindow(sim, name="display2"))
    graph.connect(out, window.port("video_in"))
    return graph, window


class TestFig2:
    def test_composite_equivalent_to_chain(self, small_video):
        codec = JPEGCodec(85)
        encoded = codec.encode_value(small_video)
        sim1, sim2 = Simulator(), Simulator()
        g1, w1 = fig2_simple_chain(sim1, encoded, codec)
        g2, w2 = fig2_composite(sim2, JPEGCodec(85).encode_value(small_video),
                                JPEGCodec(85))
        g1.run_to_completion()
        g2.run_to_completion()
        assert len(w1.presented) == len(w2.presented)
        assert all(np.array_equal(a, b)
                   for a, b in zip(w1.presented, w2.presented))
        assert sim1.now.seconds == pytest.approx(sim2.now.seconds)


class TestExportRules:
    def test_export_requires_installed_component(self, sim):
        composite = CompositeActivity(sim)
        stranger = VideoReader(sim)
        with pytest.raises(PortError, match="not a port of an installed"):
            composite.export(stranger.port("video_out"))

    def test_export_preserves_direction_and_type(self, sim, small_video):
        composite = CompositeActivity(sim)
        reader = VideoReader(sim)
        reader.bind(small_video)
        composite.install(reader)
        proxy = composite.export(reader.port("video_out"), "out")
        assert proxy.direction is reader.port("video_out").direction
        assert proxy.media_type == reader.port("video_out").media_type
        assert proxy.resolve() is reader.port("video_out")

    def test_self_containment_rejected(self, sim):
        composite = CompositeActivity(sim)
        with pytest.raises(ActivityError, match="cannot contain itself"):
            composite.install(composite)

    def test_duplicate_component_rejected(self, sim):
        composite = CompositeActivity(sim)
        reader = VideoReader(sim, name="r")
        composite.install(reader)
        with pytest.raises(ActivityError, match="already installed"):
            composite.install(reader)

    def test_empty_composite_cannot_start(self, sim):
        with pytest.raises(ActivityError, match="no components"):
            CompositeActivity(sim).start()

    def test_simple_flag(self, sim):
        assert CompositeActivity(sim).simple() is False


class TestMultiSourceSink:
    def build(self, sim, clip, resync_interval=None, jitter_factory=None):
        source = MultiSource(sim, name="dbSource", resync_interval=resync_interval)
        for track in clip.track_names:
            value = clip.value(track)
            jitter = jitter_factory(track) if jitter_factory else None
            if track == "videoTrack":
                component = VideoReader(sim, name=f"src.{track}", jitter=jitter)
            elif track == "subtitleTrack":
                from repro.activities.library import TextReader
                component = TextReader(sim, name=f"src.{track}", jitter=jitter)
            else:
                from repro.activities.library import AudioReader
                component = AudioReader(sim, name=f"src.{track}", jitter=jitter)
            component.bind(value)
            source.install(component, track=track)
        sink = MultiSink(sim, name="appSink")
        window = VideoWindow(sim, name="win")
        english = Speaker(sim, name="en")
        french = Speaker(sim, name="fr")
        subs = SubtitleWindow(sim, name="subs")
        sink.install(window, track="videoTrack")
        sink.install(english, track="englishTrack")
        sink.install(french, track="frenchTrack")
        sink.install(subs, track="subtitleTrack")
        graph = ActivityGraph(sim)
        graph.add(source)
        graph.add(sink)
        graph.connect_composites(source, sink)
        return graph, source, sink, window, english, french, subs

    def test_port_pairing_by_track_name(self, sim, clip):
        graph, source, sink, *_ = self.build(sim, clip)
        pairs = {(c.source.owner.name, c.sink.owner.name)
                 for c in graph.connections}
        assert ("src.videoTrack", "win") in pairs
        assert ("src.englishTrack", "en") in pairs
        assert ("src.frenchTrack", "fr") in pairs
        assert ("src.subtitleTrack", "subs") in pairs

    def test_full_presentation(self, sim, clip):
        graph, source, sink, window, english, french, subs = self.build(sim, clip)
        graph.run_to_completion()
        assert len(window.presented) == clip.value("videoTrack").num_frames
        assert english.elements_consumed > 0
        assert french.elements_consumed > 0
        assert subs.texts()
        assert source.state is ActivityState.FINISHED

    def test_stop_propagates_to_components(self, sim, clip):
        graph, source, sink, window, *_ = self.build(sim, clip)
        graph.start_all()

        def stopper():
            from repro.sim import Delay
            yield Delay(0.1)
            source.stop()

        sim.spawn(stopper())
        graph.run()
        assert source.state is ActivityState.STOPPED
        assert all(c.finished for c in source.components.values())

    def test_sync_group_measures_jitter_spread(self, sim, clip):
        jitters = {
            "videoTrack": RandomWalkJitter(step=0.004, bias=2.0, seed=1),
            "englishTrack": RandomWalkJitter(step=0.0, seed=2),  # on time
        }
        graph, source, *_ = self.build(
            sim, clip,
            jitter_factory=lambda t: jitters.get(t),
        )
        graph.run_to_completion()
        assert source.max_skew() > 0.0

    def test_resync_bounds_skew(self, clip):
        def run(resync):
            sim = Simulator()
            graph, source, *_ = self.build(
                sim, clip, resync_interval=resync,
                jitter_factory=lambda t: RandomWalkJitter(
                    step=0.004, bias=2.5, seed=sum(map(ord, t))
                ),
            )
            graph.run_to_completion()
            return source.max_skew()

        assert run(resync=5) < run(resync=None)

    def test_multisource_requires_out_ports(self, sim):
        source = MultiSource(sim)
        window = VideoWindow(sim)  # a sink: no out ports
        with pytest.raises(ActivityError, match="no out ports"):
            source.install(window, track="videoTrack")

    def test_multisink_requires_in_ports(self, sim, small_video):
        sink = MultiSink(sim)
        reader = VideoReader(sim)
        with pytest.raises(ActivityError, match="no in ports"):
            sink.install(reader, track="videoTrack")


class TestCompositeBinding:
    def test_bind_composite_distributes_tracks(self, sim, clip):
        source = MultiSource(sim)
        readers = {}
        for track in ("videoTrack",):
            reader = VideoReader(sim, name=track)
            readers[track] = reader
            source.install(reader, track=track)
        from repro.activities.library import AudioReader, TextReader
        for track in ("englishTrack", "frenchTrack"):
            reader = AudioReader(sim, name=track)
            readers[track] = reader
            source.install(reader, track=track)
        text_reader = TextReader(sim, name="subtitleTrack")
        readers["subtitleTrack"] = text_reader
        source.install(text_reader, track="subtitleTrack")
        source.bind(clip)
        for track, reader in readers.items():
            assert reader.bound_value is clip.value(track)

    def test_bind_single_value_to_single_component(self, sim, small_video):
        composite = CompositeActivity(sim)
        reader = VideoReader(sim)
        composite.install(reader)
        composite.bind(small_video)
        assert reader.bound_value is small_video

    def test_bind_single_value_to_multi_component_rejected(self, sim, small_video):
        composite = CompositeActivity(sim)
        composite.install(VideoReader(sim, name="a"))
        composite.install(VideoReader(sim, name="b"))
        with pytest.raises(ActivityError, match="cannot bind a single value"):
            composite.bind(small_video)
