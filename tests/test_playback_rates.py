"""Playback-rate manipulation: Scale/Translate driving real playback.

The paper's MediaValue methods aren't just metadata — a scaled value
plays back slower/faster through the same activities, and a translated
value starts later on the shared timeline."""

import numpy as np
import pytest

from repro.activities import ActivityGraph
from repro.activities.library import VideoReader, VideoWindow
from repro.avtime import WorldTime


def play(sim, value):
    graph = ActivityGraph(sim)
    reader = graph.add(VideoReader(sim))
    reader.bind(value)
    window = graph.add(VideoWindow(sim))
    graph.connect(reader.port("video_out"), window.port("video_in"))
    graph.run_to_completion()
    return window


class TestScaledPlayback:
    def test_slow_motion_takes_twice_as_long(self, sim, small_video):
        window = play(sim, small_video.scale(2.0))
        # 10 frames at effective 15 fps: last frame at 9/15 s.
        assert sim.now.seconds == pytest.approx(9 / 15.0)
        assert len(window.presented) == small_video.num_frames

    def test_fast_forward(self, sim, small_video):
        window = play(sim, small_video.scale(0.5))
        assert sim.now.seconds == pytest.approx(9 / 60.0)
        assert len(window.presented) == small_video.num_frames

    def test_same_frames_any_speed(self, small_video):
        from repro.sim import Simulator
        s1, s2 = Simulator(), Simulator()
        normal = play(s1, small_video)
        slow = play(s2, small_video.scale(3.0))
        assert all(np.array_equal(a, b)
                   for a, b in zip(normal.presented, slow.presented))

    def test_translated_value_starts_late(self, sim, small_video):
        window = play(sim, small_video.translate(WorldTime(2.0)))
        first = window.log.records[0].actual.seconds
        assert first == pytest.approx(2.0)

    def test_scale_then_translate_composes(self, sim, small_video):
        value = small_video.scale(2.0).translate(WorldTime(1.0))
        window = play(sim, value)
        first = window.log.records[0].actual.seconds
        last = window.log.records[-1].actual.seconds
        assert first == pytest.approx(1.0)
        assert last == pytest.approx(1.0 + 9 / 15.0)

    def test_cue_respects_scaled_timebase(self, sim, small_video):
        """Cueing a half-speed value to 0.4 s lands on frame 6, not 12."""
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim))
        reader.bind(small_video.scale(2.0))  # 15 fps effective
        reader.cue(WorldTime(0.4))
        window = graph.add(VideoWindow(sim))
        graph.connect(reader.port("video_out"), window.port("video_in"))
        graph.run_to_completion()
        assert len(window.presented) == small_video.num_frames - 6
        assert np.array_equal(window.presented[0], small_video.frame(6))
