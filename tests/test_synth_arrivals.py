"""Regression guards for the shared arrival samplers (repro.synth.arrivals).

The Zipf/Poisson/mixture sampling helpers replaced inline copies in the
overload workload, the cache flash-crowd scenario and the soak
timeline.  The digests below were captured from those inline copies
*before* the extraction; if a helper ever consumes its rng stream in a
different order or arity, a pre-existing seeded timeline changes bytes
and these tests fail.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np
import pytest

from repro.admission.workload import OverloadWorkload
from repro.errors import SimulationError
from repro.soak.phases import build_timeline, default_day, timeline_sha256
from repro.synth.arrivals import (
    mixture_pick,
    poisson_step,
    uniform_arrival,
    zipf_pick,
    zipf_pmf,
    zipf_weights,
)

#: sha256 fingerprints captured from the pre-extraction inline code.
SOAK_TIMELINE_SHA = {
    0: "99396e10b8a3428a3c44190ba3b9611a1abc1693c597559f7ef2c7cf3d7586e8",
    7: "6ec13202781250de839a05a3d73fbfcaa495c9d495e83617ef931717879ac6f2",
}
OVERLOAD_SPECS_SHA = {
    0: "5401db285f1ca9af262b7e9b5181d8bf5ae90bca329ad8d74613bd941f1dee57",
    7: "6bd4b2cad1bf858e6ce9ffa2637707aa935acfe51376a9ad49465643fa2b6b6f",
}
CACHE_PLAN_SHA = {
    0: "fb4146acb25dcaabd7682e925233bd80612a7bbad76c50bcbf3f7bde370829c3",
    7: "4c240322b8a8aaa357938a795d4508727f945fb6280f9b8c558cc30791871ad7",
}


class TestByteIdentity:
    """Existing seeded workloads must be unchanged by the extraction."""

    @pytest.mark.parametrize("seed", sorted(SOAK_TIMELINE_SHA))
    def test_soak_timeline_unchanged(self, seed):
        digest = timeline_sha256(build_timeline(default_day(), seed))
        assert digest == SOAK_TIMELINE_SHA[seed]

    @pytest.mark.parametrize("seed", sorted(OVERLOAD_SPECS_SHA))
    def test_overload_specs_unchanged(self, seed):
        specs = OverloadWorkload(seed=seed).specs
        digest = hashlib.sha256(
            "\n".join(repr(s) for s in specs).encode()).hexdigest()
        assert digest == OVERLOAD_SPECS_SHA[seed]

    @pytest.mark.parametrize("seed", sorted(CACHE_PLAN_SHA))
    def test_cache_crowd_plans_unchanged(self, seed):
        # The exact draw sequence of cache.scenarios.zipf_crowd's plan
        # loop, expressed through the shared helpers.
        rng = random.Random(seed)
        weights = zipf_weights(12)
        plans = []
        for _ in range(2000):
            arrival = uniform_arrival(rng, 2.0)
            asset = zipf_pick(rng, 12, 0.6, weights)
            interactive = rng.random() < 0.15
            plans.append((arrival, asset, interactive))
        digest = hashlib.sha256(repr(plans).encode()).hexdigest()
        assert digest == CACHE_PLAN_SHA[seed]


class TestSamplers:
    def test_zipf_pick_matches_inline_draws(self):
        # Helper and the inline idiom it replaced, fed the same seed,
        # must produce the same value stream.
        a, b = random.Random(42), random.Random(42)
        weights = zipf_weights(10)
        for _ in range(500):
            picked = zipf_pick(a, 10, 0.3, weights)
            if b.random() < 0.3:
                expected = 0
            else:
                expected = b.choices(range(1, 10), weights=weights)[0]
            assert picked == expected

    def test_poisson_step_matches_expovariate(self):
        a, b = random.Random(9), random.Random(9)
        for _ in range(100):
            assert poisson_step(a, 3.5) == b.expovariate(3.5)

    def test_mixture_pick_thresholds(self):
        mix = ((0.25, "a"), (0.75, "b"), (1.0, "c"))
        rng = random.Random(1)
        picks = {mixture_pick(rng, mix) for _ in range(200)}
        assert picks == {"a", "b", "c"}

    def test_zipf_pmf_matches_scalar_law(self):
        pmf = zipf_pmf(8, 0.4)
        assert pmf.shape == (8,)
        assert pmf[0] == pytest.approx(0.4)
        assert pmf.sum() == pytest.approx(1.0)
        weights = np.asarray(zipf_weights(8))
        np.testing.assert_allclose(pmf[1:], 0.6 * weights / weights.sum())

    def test_validation(self):
        with pytest.raises(SimulationError):
            zipf_weights(1)
        with pytest.raises(SimulationError):
            poisson_step(random.Random(0), 0.0)
        with pytest.raises(SimulationError):
            zipf_pmf(5, 1.5)
