"""Multiple concurrent clients (the paper's Fig. 4 extension: "adding
multiple clients"): independent sessions, shared storage devices, shared
device pools, per-session channels with independent admission."""

from repro.avdb import AVDatabaseSystem
from repro.db import AttributeSpec, ClassDef, Q
from repro.errors import AdmissionError
from repro.storage import MagneticDisk
from repro.synth import moving_scene
from repro.values import VideoValue


def build_system(disk_bandwidth=None):
    system = AVDatabaseSystem()
    video = moving_scene(15, 64, 48)
    bandwidth = disk_bandwidth or video.data_rate_bps() * 10
    system.add_storage(MagneticDisk(system.simulator, "disk0",
                                    bandwidth_bps=bandwidth))
    system.db.define_class(ClassDef("Clip", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))
    system.store_value(video, "disk0")
    system.db.insert("Clip", title="shared", video=video)
    return system, video


class TestConcurrentSessions:
    def test_two_clients_stream_the_same_value(self):
        system, video = build_system()
        windows = []
        for name in ("client-a", "client-b"):
            session = system.open_session(name)
            ref = session.select_one("Clip", Q.eq("title", "shared"))
            source = session.new_db_source((ref, "video"))
            window = session.new_video_window(name=f"{name}.win")
            session.connect(source, window).start()
            windows.append(window)
        system.run()
        assert all(len(w.presented) == 15 for w in windows)

    def test_sessions_have_independent_channels(self):
        system, video = build_system()
        s1 = system.open_session("a", channel_bps=50_000_000)
        s2 = system.open_session("b", channel_bps=50_000_000)
        assert s1.channel is not s2.channel
        ref = s1.select_one("Clip", Q.eq("title", "shared"))
        src1 = s1.new_db_source((ref, "video"))
        src2 = s2.new_db_source((ref, "video"))
        s1.connect(src1, s1.new_video_window()).start()
        s2.connect(src2, s2.new_video_window()).start()
        system.run()
        # Traffic accounted per channel, equal streams.
        assert s1.channel.total_bits == s2.channel.total_bits > 0

    def test_device_bandwidth_gates_client_count(self):
        """The disk admits only as many concurrent streams as its
        bandwidth allows — later clients fail at source creation."""
        system, video = build_system(
            disk_bandwidth=video_rate(3.5)
        )
        admitted = 0
        refused = 0
        for i in range(4):
            session = system.open_session(f"c{i}")
            ref = session.select_one("Clip", Q.eq("title", "shared"))
            try:
                source = session.new_db_source((ref, "video"))
                window = session.new_video_window()
                session.connect(source, window).start()
                admitted += 1
            except AdmissionError:
                refused += 1
        system.run()
        # At 2x read-ahead per stream and 3.5x total, streams 1..N fit
        # until the device saturates; at least one client must be refused.
        assert admitted >= 1
        assert refused >= 1
        assert admitted + refused == 4

    def test_closing_a_session_frees_its_activities(self):
        system, video = build_system()
        session = system.open_session("short-lived")
        ref = session.select_one("Clip", Q.eq("title", "shared"))
        source = session.new_db_source((ref, "video"))
        window = session.new_video_window()
        stream = session.connect(source, window)
        stream.start()
        session.close()  # stops its running activities
        system.run()
        assert len(window.presented) < 15


def video_rate(factor):
    video = moving_scene(15, 64, 48)
    return video.data_rate_bps() * factor
