"""Striped placement: aggregating device bandwidth for hot values."""

import pytest

from repro.activities import ActivityGraph
from repro.activities.library import VideoReader, VideoWindow
from repro.errors import AdmissionError, OutOfSpaceError, PlacementError
from repro.storage import MagneticDisk, PlacementManager
from repro.storage.striping import StripingManager
from repro.synth import moving_scene


def make_pool(sim, bandwidth_factor=0.75, devices=2):
    """Devices each too slow for one full stream, jointly fast enough."""
    video = moving_scene(15, 64, 48)
    rate = video.data_rate_bps()
    placement = PlacementManager(sim)
    for i in range(devices):
        placement.add_device(MagneticDisk(
            sim, f"d{i}", bandwidth_bps=rate * bandwidth_factor
        ))
    return placement, StripingManager(placement), video


class TestPlacement:
    def test_place_allocates_on_every_member(self, sim):
        placement, striping, video = make_pool(sim)
        stripe = striping.place_striped(video, ["d0", "d1"])
        assert stripe.stripe_count == 2
        for name in ("d0", "d1"):
            assert placement.device(name).allocator.used_bytes > 0

    def test_requires_two_distinct_devices(self, sim):
        placement, striping, video = make_pool(sim)
        with pytest.raises(PlacementError, match=">= 2 devices"):
            striping.place_striped(video, ["d0"])
        with pytest.raises(PlacementError, match="distinct"):
            striping.place_striped(video, ["d0", "d0"])

    def test_double_placement_rejected(self, sim):
        placement, striping, video = make_pool(sim)
        striping.place_striped(video, ["d0", "d1"])
        with pytest.raises(PlacementError, match="already placed"):
            striping.place_striped(video, ["d0", "d1"])

    def test_allocation_failure_rolls_back(self, sim):
        placement, striping, video = make_pool(sim)
        # Fill d1 completely so its allocation fails.
        d1 = placement.device("d1")
        d1.allocate(d1.allocator.free_bytes)
        with pytest.raises(OutOfSpaceError):
            striping.place_striped(video, ["d0", "d1"])
        # d0's share was rolled back.
        assert placement.device("d0").allocator.used_bytes == 0

    def test_remove_frees_all_extents(self, sim):
        placement, striping, video = make_pool(sim)
        striping.place_striped(video, ["d0", "d1"])
        striping.remove(video)
        assert not striping.is_striped(video)
        for name in ("d0", "d1"):
            assert placement.device(name).allocator.used_bytes == 0


class TestAdmission:
    def test_single_device_cannot_sustain_but_stripe_can(self, sim):
        """The point of striping: 0.75x devices jointly serve a 1x stream."""
        placement, striping, video = make_pool(sim, bandwidth_factor=0.75)
        # A single device would refuse the full rate...
        assert not placement.device("d0").can_admit(video.data_rate_bps())
        # ...but the stripe admits it.
        striping.place_striped(video, ["d0", "d1"])
        assert striping.can_stream(video)
        reservation = striping.reserve(video, readahead=1.0)
        assert reservation.bps >= video.data_rate_bps() * 0.99

    def test_saturated_member_fails_all_or_nothing(self, sim):
        placement, striping, video = make_pool(sim, bandwidth_factor=0.75)
        striping.place_striped(video, ["d0", "d1"])
        # Saturate d1 with a foreign stream.
        d1 = placement.device("d1")
        d1.reserve(d1.available_bps)
        with pytest.raises(AdmissionError, match="stripe member"):
            striping.reserve(video)
        # No leaked reservation on d0.
        assert placement.device("d0").reserved_bps == 0

    def test_released_reservation_frees_members(self, sim):
        placement, striping, video = make_pool(sim)
        striping.place_striped(video, ["d0", "d1"])
        reservation = striping.reserve(video, readahead=1.0)
        reservation.release()
        for name in ("d0", "d1"):
            assert placement.device(name).reserved_bps == 0


class TestStripedPlayback:
    def test_real_time_playback_from_stripe(self, sim):
        """End to end: a stream no single device could sustain plays in
        real time from the stripe."""
        placement, striping, video = make_pool(sim, bandwidth_factor=0.75)
        striping.place_striped(video, ["d0", "d1"])
        reservation = striping.reserve(video, readahead=1.4)
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim))
        reader.bind(video)
        reader.io_stream = reservation
        window = graph.add(VideoWindow(sim, keep_payloads=False))
        graph.connect(reader.port("video_out"), window.port("video_in"))
        graph.run_to_completion()
        assert window.elements_consumed == 15
        # The 1.4x read-ahead drains the seek+first-read warmup within a
        # few frames; from then on latency is zero (sustainable stream).
        latencies = [r.latency.seconds for r in window.log.records]
        assert latencies == sorted(latencies, reverse=True)  # monotone catch-up
        steady = latencies[6:]
        assert max(steady) - min(steady) < 0.001
        # Both devices really served bits.
        for name in ("d0", "d1"):
            assert placement.device(name).total_bits_read > 0
