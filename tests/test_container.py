"""The track-based container format (the paper's future-work [5])."""

import numpy as np
import pytest

from repro.avtime import WorldTime
from repro.codecs import JPEGCodec, MPEGCodec, MuLawCodec
from repro.container import read_composite, write_composite
from repro.container.format import _ATOM, _SAMPLE, MAGIC
from repro.errors import DataModelError
from repro.synth import NEWSCAST_CLIP_SPEC, newscast_clip, moving_scene, tone
from repro.temporal import TemporalComposite
from repro.values import MPEGVideoValue


class TestRoundtrip:
    def test_newscast_composite_roundtrips(self, clip):
        data = write_composite(clip)
        restored = read_composite(data)
        assert set(restored.track_names) == set(clip.track_names)
        # Video frames identical.
        original = clip.value("videoTrack")
        rebuilt = restored.value("videoTrack")
        assert rebuilt.num_frames == original.num_frames
        assert np.array_equal(rebuilt.frames_array, original.frames_array)
        # Audio samples identical.
        assert np.array_equal(restored.value("englishTrack").samples(),
                              clip.value("englishTrack").samples())
        # Subtitles identical.
        assert restored.value("subtitleTrack").texts() == \
            clip.value("subtitleTrack").texts()

    def test_encoded_video_track_roundtrips_with_codec(self):
        from repro.synth import subtitle_track
        codec = MPEGCodec(80, gop=4)
        encoded = codec.encode_value(moving_scene(8, 32, 24))
        composite = TemporalComposite(
            NEWSCAST_CLIP_SPEC,
            {
                "videoTrack": encoded,
                "englishTrack": tone(0.2, 440.0),
                "frenchTrack": tone(0.2, 330.0),
                "subtitleTrack": subtitle_track(["x"]),
            },
        )
        restored = read_composite(write_composite(composite))
        rebuilt = restored.value("videoTrack")
        assert isinstance(rebuilt, MPEGVideoValue)
        assert rebuilt.codec.gop == 4
        assert rebuilt.chunks == encoded.chunks  # exact chunk bytes
        # And it decodes.
        assert rebuilt.frame(5).shape == (24, 32)

    def test_encoded_audio_track_roundtrips(self):
        voice = MuLawCodec().encode_value(tone(0.3, 440.0, 8000.0))
        from repro.synth import subtitle_track
        composite = TemporalComposite(
            NEWSCAST_CLIP_SPEC,
            {
                "videoTrack": moving_scene(6, 32, 24),
                "englishTrack": voice,
                "frenchTrack": tone(0.2, 330.0),
                "subtitleTrack": subtitle_track(["a"]),
            },
        )
        restored = read_composite(write_composite(composite))
        rebuilt = restored.value("englishTrack")
        assert rebuilt.media_type.name == "audio/mulaw"
        assert np.array_equal(rebuilt.samples(), voice.samples())

    def test_timeline_placement_survives(self):
        clip = newscast_clip(video_frames=8, audio_seconds=0.3,
                             video_delay_s=0.5)
        restored = read_composite(write_composite(clip))
        entry = restored.timeline.entry("videoTrack")
        assert entry.start == WorldTime(0.5)
        assert restored.value("videoTrack").start == WorldTime(0.5)

    def test_time_mapping_scale_survives(self):
        from repro.synth import subtitle_track
        slow = moving_scene(6, 32, 24).scale(2.0)
        composite = TemporalComposite(NEWSCAST_CLIP_SPEC, {
            "videoTrack": slow,
            "englishTrack": tone(0.4, 440.0),
            "frenchTrack": tone(0.4, 330.0),
            "subtitleTrack": subtitle_track(["a"]),
        })
        restored = read_composite(write_composite(composite))
        assert restored.value("videoTrack").mapping.scale == 2.0
        assert restored.value("videoTrack").duration.seconds == pytest.approx(
            slow.duration.seconds
        )


class TestInterleaving:
    def test_mdat_samples_ordered_by_time(self, clip):
        data = write_composite(clip)
        # Walk atoms to MDAT, then scan sample records.
        offset = 0
        mdat = None
        while offset < len(data):
            size, kind = _ATOM.unpack_from(data, offset)
            body = data[offset + _ATOM.size: offset + _ATOM.size + size]
            if kind == b"MDAT":
                mdat = body
            offset += _ATOM.size + size
        assert mdat is not None
        # Reconstruct per-record times from track metadata.
        restored = read_composite(data)
        mappings = {i: restored.value(t).mapping
                    for i, t in enumerate(restored.track_names)}
        times = []
        position = 0
        while position < len(mdat):
            track, index, size = _SAMPLE.unpack_from(mdat, position)
            position += _SAMPLE.size + size
            mapping = mappings[track]
            # Audio tracks chunk multiple samples per record.
            from repro.container.format import AUDIO_BLOCK
            per_record = AUDIO_BLOCK if mapping.rate > 1000 else 1
            times.append(mapping.start.seconds
                         + index * per_record * mapping.scale / mapping.rate)
        assert times == sorted(times)


class TestErrors:
    def test_bad_magic_rejected(self, clip):
        data = bytearray(write_composite(clip))
        data[8:12] = b"XXXX"  # clobber the FTYP magic
        with pytest.raises(DataModelError, match="magic"):
            read_composite(bytes(data))

    def test_truncated_container_rejected(self, clip):
        data = write_composite(clip)
        with pytest.raises(DataModelError, match="truncated"):
            read_composite(data[: len(data) // 2])

    def test_not_a_container(self):
        with pytest.raises(DataModelError):
            read_composite(b"\x00" * 64)

    def test_magic_constant(self, clip):
        data = write_composite(clip)
        assert MAGIC in data[:16]


class TestDemuxer:
    def test_single_pass_streaming_playback(self, sim, clip):
        """One sequential scan drives a synchronized 4-track playback."""
        from repro.activities import ActivityGraph
        from repro.activities.library import Speaker, SubtitleWindow, VideoWindow
        from repro.container import ContainerDemuxer
        data = write_composite(clip)
        demuxer = ContainerDemuxer(sim, data, name="demux")
        graph = ActivityGraph(sim)
        graph.add(demuxer)
        window = graph.add(VideoWindow(sim, name="w"))
        english = graph.add(Speaker(sim, name="en", keep_payloads=False))
        french = graph.add(Speaker(sim, name="fr", keep_payloads=False))
        subs = graph.add(SubtitleWindow(sim, name="subs"))
        graph.connect(demuxer.port("videoTrack"), window.port("video_in"))
        graph.connect(demuxer.port("englishTrack"), english.port("audio_in"))
        graph.connect(demuxer.port("frenchTrack"), french.port("audio_in"))
        graph.connect(demuxer.port("subtitleTrack"), subs.port("text_in"))
        graph.run_to_completion()
        original = clip.value("videoTrack")
        assert len(window.presented) == original.num_frames
        assert np.array_equal(window.presented[4], original.frame(4))
        assert english.elements_consumed > 0
        assert subs.texts() == clip.value("subtitleTrack").texts()
        # Pacing: playback took about the clip duration.
        assert sim.now.seconds == pytest.approx(clip.duration.seconds, abs=0.2)

    def test_encoded_track_flows_as_chunks(self, sim):
        from repro.activities import ActivityGraph
        from repro.activities.library import Speaker, SubtitleWindow, VideoDecoder, VideoWindow
        from repro.container import ContainerDemuxer
        from repro.synth import subtitle_track
        codec = JPEGCodec(80)
        encoded = codec.encode_value(moving_scene(6, 32, 24))
        composite = TemporalComposite(NEWSCAST_CLIP_SPEC, {
            "videoTrack": encoded,
            "englishTrack": tone(0.2, 440.0),
            "frenchTrack": tone(0.2, 330.0),
            "subtitleTrack": subtitle_track(["a"]),
        })
        demuxer = ContainerDemuxer(sim, write_composite(composite))
        assert demuxer.port("videoTrack").media_type.name == "video/jpeg"
        graph = ActivityGraph(sim)
        graph.add(demuxer)
        decoder = graph.add(VideoDecoder(sim, codec, 32, 24, 8))
        window = graph.add(VideoWindow(sim, name="w"))
        graph.connect(demuxer.port("videoTrack"), decoder.port("video_in"))
        graph.connect(decoder.port("video_out"), window.port("video_in"))
        graph.connect(demuxer.port("englishTrack"),
                      graph.add(Speaker(sim, name="en")).port("audio_in"))
        graph.connect(demuxer.port("frenchTrack"),
                      graph.add(Speaker(sim, name="fr")).port("audio_in"))
        graph.connect(demuxer.port("subtitleTrack"),
                      graph.add(SubtitleWindow(sim, name="s")).port("text_in"))
        graph.run_to_completion()
        assert len(window.presented) == 6
        assert window.presented[0].shape == (24, 32)

    def test_encoded_audio_decoded_inline(self, sim):
        from repro.activities import ActivityGraph
        from repro.activities.library import Speaker, SubtitleWindow, VideoWindow
        from repro.container import ContainerDemuxer
        from repro.synth import subtitle_track
        voice = MuLawCodec().encode_value(tone(0.3, 440.0, 8000.0))
        composite = TemporalComposite(NEWSCAST_CLIP_SPEC, {
            "videoTrack": moving_scene(6, 32, 24),
            "englishTrack": voice,
            "frenchTrack": tone(0.2, 330.0),
            "subtitleTrack": subtitle_track(["a"]),
        })
        demuxer = ContainerDemuxer(sim, write_composite(composite))
        assert demuxer.port("englishTrack").media_type.name == "audio/pcm"
        graph = ActivityGraph(sim)
        graph.add(demuxer)
        english = graph.add(Speaker(sim, name="en"))
        graph.connect(demuxer.port("videoTrack"),
                      graph.add(VideoWindow(sim, name="w")).port("video_in"))
        graph.connect(demuxer.port("englishTrack"), english.port("audio_in"))
        graph.connect(demuxer.port("frenchTrack"),
                      graph.add(Speaker(sim, name="fr")).port("audio_in"))
        graph.connect(demuxer.port("subtitleTrack"),
                      graph.add(SubtitleWindow(sim, name="s")).port("text_in"))
        graph.run_to_completion()
        pcm = english.pcm()
        assert np.abs(pcm.astype(int) - voice.samples().astype(int)).mean() < 200
