"""Transactions: isolation, strict 2PL, wait-die, abort semantics."""

import pytest

from repro.db import AttributeSpec, ClassDef, Database
from repro.db.locks import LockMode
from repro.errors import LockTimeoutError, ObjectNotFoundError, TransactionError


@pytest.fixture
def db():
    database = Database()
    database.define_class(ClassDef("Doc", attributes=[
        AttributeSpec("name", str, indexed=True),
        AttributeSpec("count", int),
    ]))
    return database


class TestBasics:
    def test_commit_applies_buffered_writes(self, db):
        tx = db.begin()
        oid = tx.insert("Doc", name="a", count=1)
        assert not db.exists(oid)  # not visible before commit
        tx.commit()
        assert db.get(oid).count == 1

    def test_abort_discards_writes(self, db):
        tx = db.begin()
        oid = tx.insert("Doc", name="a")
        tx.abort()
        assert not db.exists(oid)

    def test_own_writes_visible(self, db):
        tx = db.begin()
        oid = tx.insert("Doc", name="a", count=1)
        tx.update(oid, count=2)
        assert tx.read(oid).count == 2
        tx.commit()
        assert db.get(oid).count == 2

    def test_insert_then_delete_nets_nothing(self, db):
        tx = db.begin()
        oid = tx.insert("Doc", name="ghost")
        tx.delete(oid)
        tx.commit()
        assert not db.exists(oid)

    def test_used_after_commit_rejected(self, db):
        tx = db.begin()
        tx.insert("Doc", name="a")
        tx.commit()
        with pytest.raises(TransactionError, match="committed"):
            tx.insert("Doc", name="b")

    def test_context_manager_commits_or_aborts(self, db):
        with db.begin() as tx:
            oid = tx.insert("Doc", name="a")
        assert db.exists(oid)
        with pytest.raises(RuntimeError):
            with db.begin() as tx:
                doomed = tx.insert("Doc", name="b")
                raise RuntimeError("boom")
        assert not db.exists(doomed)

    def test_version_bumps_on_update(self, db):
        oid = db.insert("Doc", name="a")
        assert db.get(oid).version == 1
        db.update(oid, count=1)
        db.update(oid, count=2)
        assert db.get(oid).version == 3

    def test_update_missing_object(self, db):
        tx = db.begin()
        from repro.db.objects import OID
        with pytest.raises(ObjectNotFoundError):
            tx.update(OID("Doc", 404), name="x")

    def test_read_own_deleted_object_fails(self, db):
        oid = db.insert("Doc", name="a")
        tx = db.begin()
        tx.delete(oid)
        with pytest.raises(ObjectNotFoundError, match="deleted in this"):
            tx.read(oid)


class TestIsolation:
    def test_no_dirty_reads(self, db):
        oid = db.insert("Doc", name="clean", count=0)
        writer = db.begin()
        writer.update(oid, count=99)
        # Another client's non-transactional read sees the old snapshot.
        assert db.get(oid).count == 0
        writer.commit()
        assert db.get(oid).count == 99

    def test_write_write_conflict(self, db):
        oid = db.insert("Doc", name="contested")
        t1, t2 = db.begin(), db.begin()
        t1.update(oid, count=1)
        with pytest.raises(LockTimeoutError):
            t2.update(oid, count=2)

    def test_read_write_conflict(self, db):
        oid = db.insert("Doc", name="contested")
        t1, t2 = db.begin(), db.begin()
        t1.read(oid)  # shared lock
        with pytest.raises(LockTimeoutError):
            t2.update(oid, count=1)  # needs exclusive

    def test_shared_reads_coexist(self, db):
        oid = db.insert("Doc", name="shared")
        t1, t2 = db.begin(), db.begin()
        assert t1.read(oid).name == "shared"
        assert t2.read(oid).name == "shared"
        t1.commit()
        t2.commit()

    def test_lock_upgrade_when_sole_holder(self, db):
        oid = db.insert("Doc", name="x")
        tx = db.begin()
        tx.read(oid)
        tx.update(oid, count=5)  # upgrade S -> X succeeds
        tx.commit()
        assert db.get(oid).count == 5

    def test_lock_upgrade_blocked_by_other_reader(self, db):
        oid = db.insert("Doc", name="x")
        t1, t2 = db.begin(), db.begin()
        t1.read(oid)
        t2.read(oid)
        with pytest.raises(LockTimeoutError):
            t1.update(oid, count=1)

    def test_locks_released_at_commit(self, db):
        oid = db.insert("Doc", name="x")
        t1 = db.begin()
        t1.update(oid, count=1)
        t1.commit()
        t2 = db.begin()
        t2.update(oid, count=2)  # no conflict now
        t2.commit()
        assert db.get(oid).count == 2

    def test_locks_released_at_abort(self, db):
        oid = db.insert("Doc", name="x")
        t1 = db.begin()
        t1.update(oid, count=1)
        t1.abort()
        t2 = db.begin()
        t2.update(oid, count=2)
        t2.commit()
        assert db.get(oid).count == 2


class TestWaitDie:
    def test_younger_dies(self, db):
        oid = db.insert("Doc", name="x")
        older = db.begin()   # smaller tx_id = older
        younger = db.begin()
        older.update(oid, count=1)
        try:
            younger.update(oid, count=2)
            pytest.fail("expected a conflict")
        except LockTimeoutError as error:
            assert error.should_retry is False  # younger dies

    def test_older_waits(self, db):
        oid = db.insert("Doc", name="x")
        older = db.begin()
        younger = db.begin()
        younger.update(oid, count=2)
        try:
            older.update(oid, count=1)
            pytest.fail("expected a conflict")
        except LockTimeoutError as error:
            assert error.should_retry is True  # older may wait and retry

    def test_retry_after_younger_commits(self, db):
        oid = db.insert("Doc", name="x")
        older = db.begin()
        younger = db.begin()
        younger.update(oid, count=2)
        with pytest.raises(LockTimeoutError):
            older.update(oid, count=1)
        younger.commit()
        older.update(oid, count=1)  # retry succeeds
        older.commit()
        assert db.get(oid).count == 1


class TestLockManager:
    def test_mode_tracking(self, db):
        oid = db.insert("Doc", name="x")
        tx = db.begin()
        tx.read(oid)
        assert db._locks.mode_of(oid) is LockMode.SHARED
        tx.update(oid, count=1)
        assert db._locks.mode_of(oid) is LockMode.EXCLUSIVE
        tx.commit()
        assert db._locks.mode_of(oid) is None

    def test_held_by(self, db):
        oid = db.insert("Doc", name="x")
        tx = db.begin()
        tx.read(oid)
        assert oid in db._locks.held_by(tx.tx_id)


class TestWaitDieProperties:
    def test_random_interleavings_never_deadlock_and_stay_serializable(self, db):
        """Wait-die under random workloads: every transaction either
        commits or dies; retried-to-completion counters match a serial
        execution's total."""
        import random

        rng = random.Random(42)
        oids = [db.insert("Doc", name=f"d{i}", count=0) for i in range(4)]

        total_increments = 0
        pending = []
        for round_number in range(60):
            # A few transactions interleaved at random.
            tx = db.begin()
            targets = rng.sample(oids, k=rng.randint(1, 3))
            try:
                for oid in targets:
                    current = tx.read(oid)
                    tx.update(oid, count=current.count + 1)
                pending.append((tx, len(targets)))
            except LockTimeoutError:
                tx.abort()  # died or must wait: give up this attempt
            # Randomly complete some pending transactions.
            while pending and rng.random() < 0.7:
                done, increments = pending.pop(rng.randrange(len(pending)))
                done.commit()
                total_increments += increments
        for tx, increments in pending:
            tx.commit()
            total_increments += increments

        final_total = sum(db.get(oid).count for oid in oids)
        assert final_total == total_increments

    def test_no_locks_leak_after_storm(self, db):
        import random
        rng = random.Random(7)
        oids = [db.insert("Doc", name=f"x{i}") for i in range(3)]
        for _ in range(40):
            tx = db.begin()
            try:
                for oid in rng.sample(oids, k=rng.randint(1, 3)):
                    if rng.random() < 0.5:
                        tx.read(oid)
                    else:
                        tx.update(oid, count=rng.randint(0, 9))
                if rng.random() < 0.5:
                    tx.commit()
                else:
                    tx.abort()
            except LockTimeoutError:
                tx.abort()
        assert db._locks._locks == {}
