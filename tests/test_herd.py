"""Vectorized client-herd simulation (PR 9).

Covers the :mod:`repro.herd` hybrid mode end to end:

* ``admit_batch`` must mirror N back-to-back ``try_admit`` calls
  *exactly* — including the Background watermark re-check that
  sequential arrivals get per client — because the herd↔discrete
  equivalence proof leans on it.
* The herd coupler and the discrete per-client reference must agree on
  every verdict count, the goodput and trunk bit totals, and the
  epoch-sampled occupancy curve for the same seeded population.
* Populations and scenario summaries must be byte-identical across
  reruns (the determinism contract the rest of the repo holds).
* The satellite pieces: :func:`repro.herd.coupler.apportion`,
  :class:`repro.cache.aggregate.AggregateHitModel`, and the kernel's
  :meth:`Simulator.schedule_every` epoch ticker.
"""

import numpy as np
import pytest

from repro.admission import (
    AdmissionController,
    BatchVerdict,
    Priority,
    QoSContract,
)
from repro.cache.aggregate import AggregateHitModel
from repro.errors import AdmissionError, SimulationError
from repro.herd import (
    HerdPhase,
    HerdPopulation,
    PRIORITY_ORDER,
    apportion,
    equivalence_report,
)
from repro.herd.scenarios import SCENARIOS, summary_line, surge
from repro.net.channel import Channel
from repro.obs import scoped
from repro.sim import Simulator

MBPS = 1_000_000.0


def make_controller(capacity_mbps=2.0, **kwargs):
    sim = Simulator()
    trunk = Channel(sim, capacity_mbps * MBPS, name="trunk")
    return sim, trunk, AdmissionController(sim, trunk, **kwargs)


def phases(rate=40.0):
    return (
        HerdPhase("ramp", 1.0, rate, viral_share=0.35,
                  interactive_share=0.2),
        HerdPhase("peak", 1.5, 4.0 * rate, viral_share=0.6,
                  interactive_share=0.25, background_share=0.1),
        HerdPhase("cool", 1.0, 0.8 * rate, viral_share=0.3),
    )


# ---------------------------------------------------------------------------
# admit_batch == N sequential try_admit calls
# ---------------------------------------------------------------------------

class TestAdmitBatchEquivalence:
    """The batched API must be indistinguishable from a loop."""

    @staticmethod
    def _sequential(controller, contract, count, label):
        """What N separate arrivals would get, as a BatchVerdict-alike."""
        full = degraded = shed = 0
        reservations = []
        for index in range(count):
            try:
                r = controller.try_admit(contract, label=f"{label}-{index}")
            except AdmissionError:
                shed += 1
                continue
            reservations.append(r)
            if r.bps + 1e-9 >= contract.bps:
                full += 1
            else:
                degraded += 1
        return full, degraded, shed, reservations

    def _both(self, capacity_mbps, contract, count, **kwargs):
        _, trunk_a, ctrl_a = make_controller(capacity_mbps, **kwargs)
        _, trunk_b, ctrl_b = make_controller(capacity_mbps, **kwargs)
        verdict = ctrl_a.admit_batch(contract, count, label="batch")
        seq = self._sequential(ctrl_b, contract, count, "seq")
        return verdict, seq, trunk_a, trunk_b

    @pytest.mark.parametrize("capacity_mbps,count", [
        (10.0, 4),     # everything fits
        (10.0, 25),    # saturates mid-batch
        (10.5, 25),    # fractional leftover -> one degraded client
        (7.3, 40),     # odd capacity
        (1.0, 3),      # tiny trunk
    ])
    def test_standard_matches_sequential(self, capacity_mbps, count):
        contract = QoSContract(1.0 * MBPS, Priority.STANDARD,
                               min_fraction=0.5, queue_timeout_s=1.5)
        verdict, seq, trunk_a, trunk_b = self._both(
            capacity_mbps, contract, count)
        assert (verdict.admitted_full, verdict.admitted_degraded, verdict.shed) == seq[:3]
        assert trunk_a.reserved_bps == pytest.approx(trunk_b.reserved_bps)

    @pytest.mark.parametrize("capacity_mbps,count", [
        (10.0, 12),    # watermark trips mid-batch
        (10.0, 8),     # lands exactly on the watermark
        (4.0, 30),     # watermark trips almost immediately
    ])
    def test_background_watermark_recheck(self, capacity_mbps, count):
        """Sequential Background arrivals re-check the watermark per
        grant; the batch must cap itself the same way, not admit the
        whole cohort against the check it passed on entry."""
        contract = QoSContract(1.0 * MBPS, Priority.BACKGROUND,
                               min_fraction=0.25, queue_timeout_s=3.0)
        verdict, seq, trunk_a, trunk_b = self._both(
            capacity_mbps, contract, count, high_watermark=0.85)
        assert (verdict.admitted_full, verdict.admitted_degraded, verdict.shed) == seq[:3]
        assert trunk_a.reserved_bps == pytest.approx(trunk_b.reserved_bps)

    def test_full_interactive_never_degrades(self):
        contract = QoSContract(1.0 * MBPS, Priority.INTERACTIVE,
                               min_fraction=1.0, queue_timeout_s=0.5)
        verdict, seq, _, _ = self._both(2.5, contract, 6)
        assert verdict.admitted_degraded == 0
        assert (verdict.admitted_full, verdict.admitted_degraded, verdict.shed) == seq[:3]

    def test_cohort_reservation_aggregates(self):
        _, trunk, ctrl = make_controller(10.0)
        contract = QoSContract(1.0 * MBPS, Priority.STANDARD,
                               min_fraction=0.5, queue_timeout_s=1.5)
        verdict = ctrl.admit_batch(contract, 5, label="cohort")
        assert isinstance(verdict, BatchVerdict)
        assert len(verdict.reservations) == 1
        cohort = verdict.reservations[0]
        assert cohort.cohort_clients == 5
        assert cohort.bps == pytest.approx(5 * MBPS)
        cohort.release()
        assert trunk.reserved_bps == pytest.approx(0.0)

    def test_zero_count_is_a_noop(self):
        _, trunk, ctrl = make_controller(10.0)
        contract = QoSContract(1.0 * MBPS, Priority.STANDARD,
                               min_fraction=0.5, queue_timeout_s=1.5)
        verdict = ctrl.admit_batch(contract, 0, label="empty")
        assert (verdict.admitted_full, verdict.admitted_degraded, verdict.shed) == (0, 0, 0)
        assert verdict.reservations == ()
        assert trunk.reserved_bps == 0.0


# ---------------------------------------------------------------------------
# herd == discrete, same seed
# ---------------------------------------------------------------------------

class TestHerdDiscreteEquivalence:
    """The fluid mode must reproduce the kernel's answers exactly."""

    @pytest.mark.parametrize("capacity_mbps", [4.0, 7.3, 10.5])
    def test_same_seed_same_answers(self, capacity_mbps):
        population = HerdPopulation(phases(), seed=3, catalog_size=16,
                                    epoch_s=0.05)
        report = equivalence_report(population,
                                    capacity_bps=capacity_mbps * MBPS,
                                    stream_bps=1.0 * MBPS,
                                    session_epochs=4)
        assert report["equivalent"], report["mismatches"]
        assert report["herd"]["clients"] == report["discrete"]["clients"]
        assert report["herd"]["trunk_bits"] == report["discrete"][
            "trunk_bits"]

    def test_occupancy_curves_length_match_even_when_all_shed(self):
        # A trunk too small for anyone: the coupler must still tick out
        # its fixed horizon so the curves stay comparable.
        population = HerdPopulation(phases(10.0), seed=1, catalog_size=8,
                                    epoch_s=0.05)
        report = equivalence_report(population, capacity_bps=0.4 * MBPS,
                                    stream_bps=1.0 * MBPS, session_epochs=4)
        assert report["equivalent"], report["mismatches"]
        n = population.n_epochs + 4
        assert len(report["herd"]["occupancy"]) == n
        assert len(report["discrete"]["occupancy"]) == n

    def test_scenario_probe_agrees(self):
        facts = surge(seed=0, clients=1_500, compare_discrete=True)
        assert facts["probe_equivalent"]
        assert facts["probe_mismatches"] == 0


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

class TestHerdDeterminism:
    """Same seed -> byte-identical populations and summaries."""

    def test_population_rerun_is_identical(self):
        a = HerdPopulation(phases(), seed=5, catalog_size=16, epoch_s=0.05)
        b = HerdPopulation(phases(), seed=5, catalog_size=16, epoch_s=0.05)
        assert a.sha256() == b.sha256()
        np.testing.assert_array_equal(a.arrivals, b.arrivals)
        np.testing.assert_array_equal(a.demand, b.demand)

    def test_population_seed_sensitivity(self):
        a = HerdPopulation(phases(), seed=5, catalog_size=16, epoch_s=0.05)
        b = HerdPopulation(phases(), seed=6, catalog_size=16, epoch_s=0.05)
        assert a.sha256() != b.sha256()

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_summary_rerun_is_identical(self, name):
        def run():
            with scoped(tracing=False):
                return summary_line(name, SCENARIOS[name](
                    seed=0, clients=2_000))
        assert run() == run()

    def test_population_invariants(self):
        pop = HerdPopulation(phases(), seed=2, catalog_size=16,
                             epoch_s=0.05)
        assert pop.demand.shape == (pop.n_epochs, 16)
        # Per epoch: arrivals == sum over priorities == sum over assets.
        for epoch in range(pop.n_epochs):
            counts = pop.counts_at(epoch)
            assert sum(counts.values()) == pop.arrivals[epoch]
            assert pop.demand[epoch].sum() == pop.arrivals[epoch]
        assert pop.total_clients == int(pop.arrivals.sum())
        assert set(counts) == set(PRIORITY_ORDER)

    def test_phase_validation(self):
        with pytest.raises(SimulationError):
            HerdPhase("bad", -1.0, 10.0)
        with pytest.raises(SimulationError):
            HerdPhase("bad", 1.0, 10.0, viral_share=1.5)
        with pytest.raises(SimulationError):
            HerdPhase("bad", 1.0, 10.0, interactive_share=0.8,
                      background_share=0.4)

    def test_phase_scaling(self):
        phase = HerdPhase("p", 2.0, 10.0, viral_share=0.4)
        half = phase.scaled(0.5)
        assert half.arrivals_per_s == pytest.approx(5.0)
        assert half.duration_s == phase.duration_s
        assert half.viral_share == phase.viral_share


# ---------------------------------------------------------------------------
# apportion
# ---------------------------------------------------------------------------

class TestApportion:
    def test_preserves_total_and_proportion(self):
        out = apportion(10, [5, 3, 2])
        assert out == [5, 3, 2]

    def test_largest_remainder_rounding(self):
        out = apportion(7, [5, 3, 2])
        assert sum(out) == 7
        assert out == [4, 2, 1]

    def test_ties_break_by_index(self):
        out = apportion(1, [1, 1])
        assert out == [1, 0]

    def test_zero_everywhere(self):
        assert apportion(0, [3, 4]) == [0, 0]
        assert apportion(0, [0, 0]) == [0, 0]

    def test_overallocation_raises(self):
        with pytest.raises(SimulationError):
            apportion(5, [2, 1])


# ---------------------------------------------------------------------------
# AggregateHitModel
# ---------------------------------------------------------------------------

class TestAggregateHitModel:
    def _model(self, catalog=8, cached=3):
        sim = Simulator()
        return AggregateHitModel(sim.obs.metrics, catalog, cached)

    def test_cold_epoch_is_all_misses_then_resident(self):
        model = self._model()
        hist = np.zeros(8, dtype=np.int64)
        hist[0] = 10
        hits, misses = model.account(hist)
        assert (hits, misses) == (0, 10)       # read-through fill
        hits, misses = model.account(hist)
        assert (hits, misses) == (10, 0)       # resident now
        assert model.resident_assets == 1

    def test_uncacheable_tail_never_fills(self):
        model = self._model(catalog=8, cached=3)
        hist = np.zeros(8, dtype=np.int64)
        hist[7] = 5                            # rank 7 > top-3
        for _ in range(3):
            hits, misses = model.account(hist)
            assert (hits, misses) == (0, 5)
        assert model.resident_assets == 0

    def test_explicit_pmf_ranks_cacheability(self):
        sim = Simulator()
        pmf = np.array([0.1, 0.6, 0.1, 0.2])
        model = AggregateHitModel(sim.obs.metrics, 4, 1, pmf=pmf)
        hist = np.array([0, 3, 0, 2], dtype=np.int64)
        model.account(hist)
        hits, misses = model.account(hist)
        assert (hits, misses) == (3, 2)        # only asset 1 is cacheable
        assert model.resident_assets == 1

    def test_hit_ratio_and_counters(self):
        model = self._model()
        hist = np.zeros(8, dtype=np.int64)
        hist[1] = 4
        model.account(hist)
        model.account(hist)
        assert model.hit_ratio == pytest.approx(0.5)

    def test_rejects_bad_histograms(self):
        model = self._model()
        with pytest.raises(SimulationError):
            model.account(np.zeros(7, dtype=np.int64))
        with pytest.raises(SimulationError):
            model.account(np.array([-1] + [0] * 7, dtype=np.int64))


# ---------------------------------------------------------------------------
# schedule_every / EpochTicker
# ---------------------------------------------------------------------------

class TestScheduleEvery:
    def test_ticks_with_indices_until_horizon(self):
        from repro.avtime import WorldTime

        sim = Simulator()
        seen = []
        sim.schedule_every(0.5, seen.append, until=WorldTime(2.0))
        sim.run()
        # until is inclusive: ticks at 0.0, 0.5, 1.0, 1.5, 2.0.
        assert seen == [0, 1, 2, 3, 4]

    def test_start_at_offsets_the_grid(self):
        from repro.avtime import WorldTime

        sim = Simulator()
        stamps = []
        sim.schedule_every(1.0, lambda t: stamps.append(sim.now.seconds),
                           until=WorldTime(3.5), start_at=WorldTime(0.5))
        sim.run()
        assert stamps == pytest.approx([0.5, 1.5, 2.5, 3.5])

    def test_stop_iteration_cancels(self):
        sim = Simulator()
        seen = []

        def action(tick):
            seen.append(tick)
            if tick == 2:
                raise StopIteration

        sim.schedule_every(0.25, action)
        sim.run()
        assert seen == [0, 1, 2]


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

class TestHerdScenarios:
    def test_surge_facts_are_consistent(self):
        with scoped(tracing=False):
            facts = surge(seed=0, clients=2_000)
        handled = (facts["edge_served"] + facts["admitted_full"]
                   + facts["admitted_degraded"] + facts["shed"])
        assert handled == facts["clients"]
        assert facts["completed"] + facts["preempted"] <= (
            facts["admitted_full"] + facts["admitted_degraded"])
        assert 0.0 <= facts["cache_hit_ratio"] <= 1.0
        # Edge-served clients earn goodput without touching the trunk,
        # so goodput can exceed trunk bits; both must be positive here.
        assert facts["goodput_bits"] > 0
        assert facts["trunk_bits"] > 0
        assert facts["population_sha"]

    def test_summary_line_is_stable_format(self):
        with scoped(tracing=False):
            line = summary_line("surge", surge(seed=0, clients=2_000))
        assert line.startswith("herd surge: seed=0 clients_expected=2000")
        assert "peak_utilization=" in line
