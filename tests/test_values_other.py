"""TextStreamValue, ImageValue, MIDIValue and the MIDI synthesizer."""

import numpy as np
import pytest

from repro.avtime import WorldTime
from repro.codecs import MIDISynthesizer
from repro.errors import CodecError, DataModelError
from repro.values import ImageValue, MIDIEvent, MIDIValue, TextStreamValue
from repro.values.text import TextItem


class TestTextStream:
    def test_basic_items(self):
        value = TextStreamValue(["a", "b", "c"], rate=2.0)
        assert value.element_count == 3
        assert value.texts() == ["a", "b", "c"]
        assert value.duration == WorldTime(1.5)

    def test_text_items_with_span(self):
        value = TextStreamValue([TextItem("hold", span=3.0)], rate=1.0)
        assert value.item(0).span == 3.0
        with pytest.raises(DataModelError):
            TextItem("bad", span=0.0)

    def test_empty_rejected(self):
        with pytest.raises(DataModelError):
            TextStreamValue([], rate=1.0)

    def test_element_size_utf8(self):
        value = TextStreamValue(["héllo"], rate=1.0)
        assert value.element_size_bits(0) == len("héllo".encode()) * 8

    def test_translate_shares_items(self):
        value = TextStreamValue(["x", "y"], rate=1.0)
        moved = value.translate(WorldTime(4.0))
        assert moved.start == WorldTime(4.0)
        assert moved.texts() == ["x", "y"]


class TestImageValue:
    def test_grayscale_and_color(self):
        gray = ImageValue(np.zeros((8, 10), dtype=np.uint8))
        assert (gray.width, gray.height, gray.depth) == (10, 8, 8)
        rgb = ImageValue(np.zeros((8, 10, 3), dtype=np.uint8))
        assert rgb.depth == 24

    def test_single_element_sequence(self):
        image = ImageValue(np.zeros((4, 4), dtype=np.uint8), display_seconds=2.0)
        assert image.element_count == 1
        assert image.duration == WorldTime(2.0)

    def test_bad_shape_rejected(self):
        with pytest.raises(DataModelError):
            ImageValue(np.zeros((4, 4, 4), dtype=np.uint8))
        with pytest.raises(DataModelError):
            ImageValue(np.zeros((4, 4), dtype=np.uint8), display_seconds=0.0)


class TestMIDIValue:
    def test_events_sorted_and_validated(self):
        value = MIDIValue([
            MIDIEvent(480, 72, 90, 240),
            MIDIEvent(0, 60, 100, 480),
        ])
        assert value.events[0].note == 60  # sorted by tick
        assert value.element_count == 720  # last event end

    def test_event_validation(self):
        with pytest.raises(DataModelError):
            MIDIEvent(-1, 60, 100, 10)
        with pytest.raises(DataModelError):
            MIDIEvent(0, 128, 100, 10)
        with pytest.raises(DataModelError):
            MIDIEvent(0, 60, 0, 10)
        with pytest.raises(DataModelError):
            MIDIEvent(0, 60, 100, 0)

    def test_frequency_equal_temperament(self):
        assert MIDIEvent(0, 69, 100, 10).frequency_hz == pytest.approx(440.0)
        assert MIDIEvent(0, 81, 100, 10).frequency_hz == pytest.approx(880.0)

    def test_active_at_tick(self):
        value = MIDIValue([MIDIEvent(10, 60, 100, 20)])
        assert not value.active_at_tick(9)
        assert value.active_at_tick(10)
        assert value.active_at_tick(29)
        assert not value.active_at_tick(30)

    def test_element_payload_events_starting_at_tick(self):
        value = MIDIValue([MIDIEvent(5, 60, 100, 10), MIDIEvent(5, 64, 100, 10)])
        assert len(value.element_payload(5)) == 2
        assert value.element_payload(6) == ()


class TestMIDISynthesizer:
    def test_renders_audible_pcm(self):
        value = MIDIValue([MIDIEvent(0, 69, 100, 480)], ticks_per_second=480.0)
        audio = MIDISynthesizer(sample_rate=8000.0).render(value)
        pcm = audio.samples()[0]
        assert np.abs(pcm).max() > 1000  # clearly audible
        assert audio.sample_rate == 8000.0
        # Duration covers the note plus release tail.
        assert audio.duration.seconds >= 1.0

    def test_velocity_scales_amplitude(self):
        loud = MIDIValue([MIDIEvent(0, 69, 120, 480)])
        quiet = MIDIValue([MIDIEvent(0, 69, 20, 480)])
        synth = MIDISynthesizer(sample_rate=8000.0)
        assert np.abs(synth.render(loud).samples()).max() > \
            np.abs(synth.render(quiet).samples()).max() * 2

    def test_fundamental_frequency_present(self):
        """The rendered A4 note has its spectral peak near 440 Hz."""
        value = MIDIValue([MIDIEvent(0, 69, 100, 960)], ticks_per_second=480.0)
        audio = MIDISynthesizer(sample_rate=8000.0).render(value)
        pcm = audio.samples()[0][:16000].astype(np.float64)
        spectrum = np.abs(np.fft.rfft(pcm))
        peak_hz = np.argmax(spectrum) * 8000.0 / len(pcm)
        assert abs(peak_hz - 440.0) < 15.0

    def test_chord_does_not_wrap(self):
        chord = MIDIValue([MIDIEvent(0, n, 127, 480) for n in (60, 64, 67, 72)])
        audio = MIDISynthesizer(sample_rate=8000.0, amplitude=0.9).render(chord)
        assert np.abs(audio.samples()).max() <= 32767

    def test_invalid_parameters(self):
        with pytest.raises(CodecError):
            MIDISynthesizer(sample_rate=0.0)
        with pytest.raises(CodecError):
            MIDISynthesizer(amplitude=1.5)
