"""Fault injection and failure recovery: seeded plans, injectors,
retry/backoff, deadline guards, supervision, and graceful degradation."""

import pytest

from repro.avtime import WorldTime
from repro.errors import (
    AdmissionError,
    ChannelFaultError,
    DeadlineExceeded,
    DeviceFaultError,
    FaultError,
    Interrupted,
    SchedulerStoppedError,
    SimulationError,
)
from repro.faults import (
    ChannelFaults,
    Fault,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    supervised,
    with_deadline,
    with_retries,
)
from repro.net.channel import Channel
from repro.sim import Delay, Simulator, Timeout, WaitProcess
from repro.storage.scheduler import DiskScheduler, Policy


class TestFaultPlan:
    def test_builders_and_iteration(self):
        plan = (FaultPlan(seed=3)
                .device_outage("disk0", at=1.0, duration=0.5)
                .scheduler_outage("disk", at=2.0, duration=0.1)
                .channel_loss("net", rate=0.1, jitter_s=0.001)
                .process_crash("worker", at=0.5)
                .process_hang("worker", at=0.7))
        assert len(plan) == 5
        assert {f.kind for f in plan} == {
            "device-outage", "scheduler-outage", "channel-loss",
            "process-crash", "process-hang",
        }
        assert len(plan.for_target("worker")) == 2
        assert "seed 3" in plan.describe()

    def test_validation(self):
        with pytest.raises(SimulationError, match="unknown fault kind"):
            Fault("meteor-strike", "disk0")
        with pytest.raises(SimulationError, match="must be >= 0"):
            Fault("device-outage", "disk0", at=-1.0)
        with pytest.raises(SimulationError, match="loss rate"):
            Fault("channel-loss", "net", rate=0.99)
        with pytest.raises(SimulationError, match="slowdown factor"):
            Fault("device-slowdown", "disk0", factor=0.5)
        with pytest.raises(SimulationError, match="retransmit"):
            FaultPlan().channel_loss("net", rate=0.1, mode="explode")

    def test_randomized_plans_are_seed_deterministic(self):
        kwargs = dict(horizon_s=10.0, devices=["d0", "d1"],
                      schedulers=["s"], channels=["c"], processes=["p"])
        assert (FaultPlan.randomized(42, **kwargs).faults
                == FaultPlan.randomized(42, **kwargs).faults)
        assert (FaultPlan.randomized(42, **kwargs).faults
                != FaultPlan.randomized(43, **kwargs).faults)

    def test_scaled_stretches_times(self):
        plan = FaultPlan(seed=1).device_outage("d", at=2.0, duration=1.0)
        scaled = plan.scaled(3.0)
        assert scaled.faults[0].at == pytest.approx(6.0)
        assert scaled.faults[0].duration == pytest.approx(3.0)
        # The original is untouched (plans are value-like).
        assert plan.faults[0].at == pytest.approx(2.0)


class TestInjectorArming:
    def test_unmatched_target_raises(self, sim):
        plan = FaultPlan().device_outage("ghost", at=1.0, duration=0.1)
        with pytest.raises(SimulationError, match="ghost"):
            FaultInjector(sim, plan).arm(devices={})

    def test_double_arm_raises(self, sim):
        injector = FaultInjector(sim, FaultPlan())
        injector.arm()
        with pytest.raises(SimulationError, match="already armed"):
            injector.arm()

    def test_channel_cannot_carry_two_loss_models(self, sim):
        channel = Channel(sim, capacity_bps=1e6, name="net")
        plan = (FaultPlan()
                .channel_loss("net", rate=0.1)
                .channel_loss("net", rate=0.2))
        with pytest.raises(SimulationError, match="already has a loss model"):
            FaultInjector(sim, plan).arm(channels=[channel])


class TestDeviceFaults:
    def _timed_read(self, plan):
        """One 48 Mb/s device read of 480 kbit under ``plan``; returns the
        (start, end) virtual times of the transfer."""
        from repro.storage import MagneticDisk

        sim = Simulator()
        disk = MagneticDisk(sim, "disk0")
        FaultInjector(sim, plan).arm(devices=[disk])
        reservation = disk.reserve(48_000_000.0)
        window = {}

        def reader():
            yield Delay(0.5)  # transfer starts inside any [0.4, ...) window
            window["start"] = sim.now.seconds
            yield from reservation.read(480_000)
            window["end"] = sim.now.seconds

        sim.spawn(reader())
        sim.run()
        return window["start"], window["end"]

    # Timing: the read starts at 0.5, pays the 15 ms positioning seek,
    # then transfers 480 kbit at 48 Mb/s (10 ms).  Nominal end: 0.525.

    def test_outage_wait_mode_blocks_until_window_ends(self):
        start, end = self._timed_read(FaultPlan())
        assert (start, end) == (pytest.approx(0.5), pytest.approx(0.525))
        start, end = self._timed_read(
            FaultPlan().device_outage("disk0", at=0.4, duration=0.3))
        # The transfer (post-seek, t=0.515) blocks until the window ends
        # at 0.7, then takes its nominal 10 ms.
        assert end == pytest.approx(0.71)

    def test_slowdown_multiplies_transfer_time(self):
        start, end = self._timed_read(
            FaultPlan().device_slowdown("disk0", at=0.4, duration=1.0, factor=3.0))
        # seek (unchanged) + 3 x the 10 ms transfer.
        assert (end - start) == pytest.approx(0.015 + 0.030)

    def test_outage_error_mode_raises(self):
        from repro.storage import MagneticDisk

        sim = Simulator()
        disk = MagneticDisk(sim, "disk0")
        FaultInjector(sim, FaultPlan().device_outage(
            "disk0", at=0.4, duration=0.3, mode="error")).arm(devices=[disk])
        reservation = disk.reserve(48_000_000.0)

        def reader():
            yield Delay(0.5)
            yield from reservation.read(480_000)

        proc = sim.spawn(reader())
        sim.run()  # a DeviceFaultError death is a fault, not a run() abort
        assert isinstance(proc.error, DeviceFaultError)
        assert "disk0" in str(proc.error)


class TestChannelFaults:
    def _send(self, seed, mode, elements=40):
        sim = Simulator()
        channel = Channel(sim, capacity_bps=1e6, latency_s=0.001, name="net")
        reservation = channel.reserve(1e6)
        plan = FaultPlan(seed=seed).channel_loss("net", rate=0.3,
                                                 jitter_s=0.002, mode=mode)
        injector = FaultInjector(sim, plan).arm(channels=[channel])
        delivered = []

        def sender():
            for i in range(elements):
                try:
                    yield from reservation.transmit(1000)
                except ChannelFaultError:
                    continue
                delivered.append((i, sim.now.seconds))

        sim.spawn(sender())
        sim.run()
        return channel, delivered, injector.log

    def test_retransmit_mode_delivers_everything_late(self):
        channel, delivered, log = self._send(seed=5, mode="retransmit")
        assert len(delivered) == 40            # nothing lost end-to-end
        assert channel.retransmits > 0
        # Retransmitted bits are charged to the channel's accounting.
        assert channel.total_bits == (40 + channel.retransmits) * 1000
        assert len(log) == channel.retransmits

    def test_error_mode_surfaces_drops(self):
        channel, delivered, log = self._send(seed=5, mode="error")
        assert 0 < len(delivered) < 40
        assert channel.retransmits == 0
        assert len(log) == 40 - len(delivered)

    def test_same_seed_same_drop_schedule(self):
        _, delivered_a, log_a = self._send(seed=9, mode="error")
        _, delivered_b, log_b = self._send(seed=9, mode="error")
        assert delivered_a == delivered_b
        assert log_a == log_b
        _, delivered_c, _ = self._send(seed=10, mode="error")
        assert delivered_a != delivered_c

    def test_jitter_rng_untouched_when_disabled(self, sim):
        fault = Fault("channel-loss", "net", rate=0.5)
        model = ChannelFaults(fault, seed=1, record=lambda *a: None)
        drops = [model.sample_drop("net") for _ in range(20)]
        model2 = ChannelFaults(fault, seed=1, record=lambda *a: None)
        interleaved = []
        for _ in range(20):
            assert model2.sample_jitter() == 0.0  # must not consume the rng
            interleaved.append(model2.sample_drop("net"))
        assert drops == interleaved


class TestSchedulerFaults:
    def test_outage_fails_pending_and_restarts(self, sim):
        disk = DiskScheduler(sim, policy=Policy.FCFS)
        disk.start()
        plan = FaultPlan().scheduler_outage("disk", at=0.005, duration=0.05)
        FaultInjector(sim, plan).arm(schedulers={"disk": disk})
        outcomes = []

        # Four concurrent clients: the queue is non-empty when the outage
        # hits, so stop() really fails pending requests.
        def client(position):
            def attempt():
                return disk.read(position, 2_000_000)
            try:
                yield from with_retries(
                    sim, attempt,
                    RetryPolicy(max_attempts=6, base_delay_s=0.02))
            except FaultError:
                outcomes.append("lost")
            else:
                outcomes.append("ok")

        for i in range(4):
            sim.spawn(client((i * 100) % disk.cylinders))
        sim.run()
        assert outcomes == ["ok"] * 4           # retries rode out the outage
        assert disk.requests_failed >= 1        # the outage really bit
        assert disk.running                     # and the restart really fired

    def test_slowdown_scales_service_time(self, sim):
        disk = DiskScheduler(sim, policy=Policy.FCFS)
        disk.start()
        plan = FaultPlan().scheduler_slowdown("disk", at=0.0, duration=10.0,
                                              factor=2.0)
        FaultInjector(sim, plan).arm(schedulers={"disk": disk})

        def client():
            return (yield disk.read(200, 480_000))

        request = sim.run_until_complete(sim.spawn(client()))
        # 2 x (200 cylinders * 20 us + 480000/48e6) = 2 x 0.014
        assert request.completed_at == pytest.approx(0.028)


class TestProcessFaults:
    def test_crash_counts_as_fault_not_failure(self, sim):
        def worker():
            yield Delay(10.0)

        proc = sim.spawn(worker(), name="worker")
        plan = FaultPlan().process_crash("worker", at=1.0)
        FaultInjector(sim, plan).arm(processes={"worker": proc})
        sim.run()                                # must NOT raise
        assert proc.done
        assert isinstance(proc.error, FaultError)
        metrics = sim.obs.metrics
        assert metrics.counter("sim.process_faults").value == 1
        assert metrics.counter("sim.process_failures").value == 0

    def test_hang_wedges_until_timeout(self, sim):
        def worker():
            yield Delay(10.0)
            return "never"

        proc = sim.spawn(worker(), name="worker")
        plan = FaultPlan().process_hang("worker", at=1.0)
        FaultInjector(sim, plan).arm(processes={"worker": proc})
        seen = []

        def watcher():
            try:
                yield Timeout(proc, 5.0)
            except DeadlineExceeded:
                seen.append(sim.now.seconds)

        sim.spawn(watcher())
        sim.run()
        assert seen == [pytest.approx(5.0)]     # bounded, not deadlocked
        assert proc.abandoned and not proc.done

    def test_injection_log_is_deterministic(self, sim):
        def run_once():
            simulator = Simulator()
            disk = DiskScheduler(simulator, policy=Policy.CSCAN)
            disk.start()
            plan = (FaultPlan(seed=2)
                    .scheduler_outage("disk", at=0.01, duration=0.02)
                    .scheduler_outage("disk", at=0.08, duration=0.01))
            injector = FaultInjector(simulator, plan).arm(
                schedulers={"disk": disk})

            def client():
                for i in range(10):
                    try:
                        yield from with_retries(
                            simulator,
                            lambda p=i * 37: disk.read(p, 1_000_000),
                            RetryPolicy(max_attempts=4, base_delay_s=0.01))
                    except FaultError:
                        pass

            simulator.spawn(client())
            simulator.run()
            return injector.log

        log_a, log_b = run_once(), run_once()
        assert log_a == log_b
        assert log_a  # the plan actually fired


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(base_delay_s=0.1, factor=3.0, max_delay_s=0.5)
        assert [policy.delay_for(i) for i in range(4)] == \
            pytest.approx([0.1, 0.3, 0.5, 0.5])

    def test_retry_timing_in_virtual_time(self, sim):
        calls = []

        def attempt():
            calls.append(sim.now.seconds)
            yield Delay(0.1)
            if len(calls) < 3:
                raise FaultError("transient")
            return "ok"

        def client():
            result = yield from with_retries(
                sim, attempt,
                RetryPolicy(max_attempts=4, base_delay_s=0.25, factor=2.0))
            return result

        result = sim.run_until_complete(sim.spawn(client()))
        assert result == "ok"
        # fail@0.1 + 0.25 backoff -> 0.35; fail@0.45 + 0.5 -> 0.95
        assert calls == pytest.approx([0.0, 0.35, 0.95])
        assert sim.obs.metrics.counter("faults.retries").value == 2

    def test_exhaustion_reraises(self, sim):
        def attempt():
            yield Delay(0.01)
            raise FaultError("always")

        def client():
            yield from with_retries(sim, attempt,
                                    RetryPolicy(max_attempts=2,
                                                base_delay_s=0.01))

        proc = sim.spawn(client())
        sim.run()  # FaultError deaths do not abort the run
        assert isinstance(proc.error, FaultError)
        assert sim.obs.metrics.counter("faults.retries").value == 1

    def test_non_transient_errors_pass_through(self, sim):
        def attempt():
            yield Delay(0.01)
            raise ValueError("logic bug")

        def client():
            yield from with_retries(sim, attempt)

        sim.spawn(client())
        with pytest.raises(ValueError, match="logic bug"):
            sim.run()
        assert sim.obs.metrics.counter("faults.retries").value == 0


class TestDeadlinesAndSupervision:
    def test_with_deadline_passes_result_through(self, sim):
        def quick():
            yield Delay(0.5)
            return 42

        def client():
            return (yield from with_deadline(sim, quick(), seconds=1.0))

        assert sim.run_until_complete(sim.spawn(client())) == 42

    def test_with_deadline_interrupts_slow_child(self, sim):
        def slow():
            yield Delay(10.0)

        outcome = {}

        def client():
            try:
                yield from with_deadline(sim, slow(), seconds=1.0,
                                         name="slowpoke")
            except DeadlineExceeded:
                outcome["at"] = sim.now.seconds

        sim.spawn(client())
        sim.run()
        assert outcome["at"] == pytest.approx(1.0)
        assert sim.live_processes == 0          # the child was interrupted

    def test_timeout_loses_tie_at_exact_deadline(self, sim):
        event = sim.event("exact")
        sim.schedule_at(WorldTime(1.0), event.trigger)
        outcome = []

        def client():
            try:
                yield Timeout(event, 1.0)
            except DeadlineExceeded:
                outcome.append("timeout")
            else:
                outcome.append("payload")

        sim.spawn(client())
        sim.run()
        assert outcome == ["timeout"]           # timer scheduled first wins

    def test_supervised_restarts_crashed_worker(self, sim):
        attempts = []

        def make_worker():
            def worker():
                attempts.append(sim.now.seconds)
                yield Delay(0.1)
                if len(attempts) < 3:
                    raise FaultError("crash")
                return "done"
            return worker()

        def guardian():
            return (yield from supervised(sim, make_worker, max_restarts=3,
                                          backoff=RetryPolicy(base_delay_s=0.05,
                                                              factor=1.0)))

        assert sim.run_until_complete(sim.spawn(guardian())) == "done"
        assert len(attempts) == 3
        assert sim.obs.metrics.counter("faults.restarts").value == 2

    def test_supervised_gives_up_after_max_restarts(self, sim):
        def make_worker():
            def worker():
                yield Delay(0.1)
                raise FaultError("crash")
            return worker()

        def guardian():
            yield from supervised(sim, make_worker, max_restarts=1)

        proc = sim.spawn(guardian())
        sim.run()
        assert isinstance(proc.error, FaultError)
        assert sim.obs.metrics.counter("faults.restarts").value == 1

    def test_supervised_adopts_prespawned_process(self, sim):
        def worker():
            yield Delay(0.1)
            return "first"

        first = sim.spawn(worker(), name="adopted")

        def guardian():
            return (yield from supervised(
                sim, lambda: worker(), first_process=first))

        assert sim.run_until_complete(sim.spawn(guardian())) == "first"
        assert sim.obs.metrics.counter("faults.restarts").value == 0


class TestSessionDegradation:
    def _system_with_video(self, channel_factor):
        from repro.avdb import AVDatabaseSystem
        from repro.storage import MagneticDisk
        from repro.synth import moving_scene

        system = AVDatabaseSystem()
        system.add_storage(MagneticDisk(system.simulator, "disk0"))
        video_a = moving_scene(6, 32, 24, seed=1)
        video_b = moving_scene(6, 32, 24, seed=2)
        for video in (video_a, video_b):
            system.store_value(video, "disk0")
        rate = video_a.data_rate_bps()
        session = system.open_session("s", channel_bps=rate * channel_factor)
        return system, session, video_a, video_b

    def test_second_stream_degrades_instead_of_failing(self):
        system, session, video_a, video_b = self._system_with_video(1.5)
        with session:
            session.connect(session.new_db_source(video_a),
                            session.new_video_window(name="a")).start()
            window_b = session.new_video_window(name="b")
            stream = session.connect(session.new_db_source(video_b), window_b,
                                     degrade=True)
            stream.start()
            session.run()
            assert len(window_b.presented) == 6  # delivered, just slower
        assert session.degraded_streams == 1
        assert system.metrics.counter("faults.degraded_sessions").value == 1

    def test_without_degrade_admission_still_fails(self):
        _, session, video_a, video_b = self._system_with_video(1.5)
        with session:
            session.connect(session.new_db_source(video_a),
                            session.new_video_window(name="a")).start()
            with pytest.raises(AdmissionError):
                session.connect(session.new_db_source(video_b),
                                session.new_video_window(name="b"))
        assert session.degraded_streams == 0

    def test_degradation_respects_minimum_floor(self):
        _, session, video_a, video_b = self._system_with_video(1.1)
        with session:
            session.connect(session.new_db_source(video_a),
                            session.new_video_window(name="a")).start()
            # Only 10% of the rate is left — below the 25% floor.
            with pytest.raises(AdmissionError, match="degraded floor"):
                session.connect(session.new_db_source(video_b),
                                session.new_video_window(name="b"),
                                degrade=True)
        assert session.degraded_streams == 0


class TestScenarios:
    """The CLI scenarios: deterministic, and recovery must help."""

    @pytest.mark.parametrize("name", ["disk-outage", "crash-recovery"])
    def test_scenarios_are_deterministic(self, name):
        from repro.faults import SCENARIOS
        from repro.obs import scoped

        def run():
            with scoped():
                return SCENARIOS[name](seed=11, recover=True)

        assert run() == run()

    def test_recovery_beats_no_recovery(self):
        from repro.faults import SCENARIOS
        from repro.obs import scoped

        for name, scenario in SCENARIOS.items():
            with scoped():
                with_rec = scenario(seed=4, recover=True)["delivered_qos"]
            with scoped():
                without = scenario(seed=4, recover=False)["delivered_qos"]
            assert with_rec > without, name


class TestFaultPlanComposition:
    """merge()/validate(): deterministic combination, loud contradiction."""

    def test_merge_dedupes_sorts_and_keeps_first_seed(self):
        a = (FaultPlan(seed=5)
             .node_outage("node-0", at=2.0, duration=0.5)
             .channel_loss("net", rate=0.1))
        b = (FaultPlan(seed=9)
             .node_outage("node-0", at=2.0, duration=0.5)   # exact duplicate
             .edge_cache_outage("edge-0", at=1.0, duration=0.3))
        merged = FaultPlan.merge(a, b)
        assert merged.seed == 5
        assert len(merged) == 3                              # duplicate collapsed
        assert [f.at for f in merged] == sorted(f.at for f in merged)
        assert FaultPlan.merge(a, b, seed=42).seed == 42
        with pytest.raises(SimulationError, match="at least one plan"):
            FaultPlan.merge()

    def test_merge_rejects_conflicting_outage_windows(self):
        a = FaultPlan(seed=0).node_outage("node-0", at=1.0, duration=1.0)
        b = FaultPlan(seed=0).node_outage("node-0", at=1.5, duration=2.0)
        with pytest.raises(SimulationError, match="conflicting restore"):
            FaultPlan.merge(a, b)
        # duration=0 means "never restored": conflicts with any later window.
        c = FaultPlan(seed=0).edge_cache_outage("edge-0", at=1.0)
        d = FaultPlan(seed=0).edge_cache_outage("edge-0", at=5.0, duration=0.1)
        with pytest.raises(SimulationError, match="conflicting restore"):
            FaultPlan.merge(c, d)

    def test_merge_rejects_two_loss_models_on_one_channel(self):
        a = FaultPlan(seed=0).channel_loss("net", rate=0.1)
        b = FaultPlan(seed=0).channel_loss("net", rate=0.2)
        with pytest.raises(SimulationError, match="two different loss models"):
            FaultPlan.merge(a, b)

    def test_disjoint_windows_on_one_target_are_coherent(self):
        plan = (FaultPlan(seed=0)
                .node_outage("node-0", at=1.0, duration=0.5)
                .node_outage("node-0", at=2.0, duration=0.5))
        assert plan.validate() is plan

    def test_to_dict_roundtrip(self):
        plan = (FaultPlan(seed=3)
                .edge_cache_outage("edge-1", at=0.5, duration=0.25)
                .channel_loss("edge-1.nic", rate=0.05, jitter_s=0.001))
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.seed == plan.seed
        assert rebuilt.faults == plan.faults


class TestEdgeCacheFaults:
    """The edge-cache-outage kind against a live cache tier."""

    def _tier(self, sim, edges=2):
        from repro.cache import CacheTier
        from repro.cluster import ClusterPlacementManager, StorageNode

        cluster = ClusterPlacementManager(sim, replication=2)
        for i in range(3):
            cluster.add_node(StorageNode(sim, f"node-{i}"))
        tier = CacheTier(sim, cluster, edges=edges, hot_threshold=10_000)
        return cluster, tier

    def _read_all(self, sim, tier, blob, done):
        stream = tier.open_read(blob, 6_000_000.0, label="viewer",
                                queue_timeout_s=1.0)
        total = blob.data_size_bits()
        with stream:
            while stream.bits_read < total:
                yield from stream.read(min(240_000, total - stream.bits_read))
        done.append(stream.digest)

    def test_outage_kills_and_restores_the_edge(self):
        from repro.cluster.scenarios import Blob
        from repro.obs import scoped

        with scoped():
            sim = Simulator()
            cluster, tier = self._tier(sim)
            blob = Blob(90_000, 6_000_000.0)
            cluster.place(blob)
            plan = FaultPlan(seed=0).edge_cache_outage("edge-0", at=0.01,
                                                       duration=0.3)
            injector = FaultInjector(sim, plan).arm(edges=tier.edges)
            done = []

            def client():
                yield Delay(0.05)            # arrive mid-outage
                yield from self._read_all(sim, tier, blob, done)

            sim.spawn(client(), "client")
            sim.run()
            edge = tier.edge("edge-0")
            assert edge.deaths == 1
            assert edge.live                 # restored at t=0.31
            assert injector.injected == 1
            assert injector.log[0][1:] == ("edge-cache-outage", "edge-0")
            assert done                      # the read survived the outage

    def test_single_edge_outage_degrades_to_passthrough(self):
        from repro.cluster.scenarios import Blob
        from repro.obs import scoped

        with scoped():
            sim = Simulator()
            cluster, tier = self._tier(sim, edges=1)
            blob = Blob(90_000, 6_000_000.0)
            cluster.place(blob)
            plan = FaultPlan(seed=0).edge_cache_outage("edge-0", at=0.01,
                                                       duration=5.0)
            FaultInjector(sim, plan).arm(edges=tier.edges)
            done = []

            def client():
                yield Delay(0.05)            # no live edge left
                yield from self._read_all(sim, tier, blob, done)

            sim.spawn(client(), "client")
            sim.run()
            metrics = sim.obs.metrics
            metrics.flush()
            assert done
            assert metrics.get("cache.passthrough").value > 0
            assert tier.edge("edge-0").deaths == 1

    def test_unknown_edge_target_raises_at_arm_time(self, sim):
        from repro.obs import scoped

        with scoped():
            _, tier = self._tier(sim)
            plan = FaultPlan(seed=0).edge_cache_outage("edge-9", at=0.1,
                                                       duration=0.1)
            with pytest.raises(SimulationError, match="names edge 'edge-9'"):
                FaultInjector(sim, plan).arm(edges=tier.edges)

    def test_edge_and_node_namespaces_stay_separate(self, sim):
        from repro.obs import scoped

        with scoped():
            _, tier = self._tier(sim)
            # A plan naming a *node* cannot quietly hit an edge.
            plan = FaultPlan(seed=0).node_outage("node-0", at=0.1,
                                                 duration=0.1)
            with pytest.raises(SimulationError, match="names node"):
                FaultInjector(sim, plan).arm(edges=tier.edges)
