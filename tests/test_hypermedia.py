"""Hypermedia links over the object database (Scenario I)."""

import pytest

from repro.avtime import WorldTime
from repro.db import AttributeSpec, ClassDef, Database
from repro.errors import DatabaseError
from repro.hypermedia import Anchor, HypermediaBase


@pytest.fixture
def db():
    database = Database()
    database.define_class(ClassDef("Document", attributes=[
        AttributeSpec("name", str, indexed=True),
    ]))
    database.define_class(ClassDef("Video", attributes=[
        AttributeSpec("title", str, indexed=True),
    ]))
    return database


@pytest.fixture
def hm(db):
    return HypermediaBase(db)


class TestLinking:
    def test_document_to_video_link(self, db, hm):
        """'links ... the documents describing a project to the video of a
        presentation by the project leader'."""
        doc = db.insert("Document", name="project plan")
        video = db.insert("Video", title="project presentation")
        link = hm.link(doc, Anchor("watch the presentation"), video,
                       media_path="clip.videoTrack", cue=WorldTime(30.0))
        assert link.source == doc
        assert link.target == video
        assert link.media_path == "clip.videoTrack"
        assert link.cue == WorldTime(30.0)

    def test_follow_by_anchor(self, db, hm):
        doc = db.insert("Document", name="d")
        video = db.insert("Video", title="v")
        hm.link(doc, "demo", video)
        followed = hm.follow(doc, "demo")
        assert followed.target == video
        with pytest.raises(DatabaseError, match="no link"):
            hm.follow(doc, "nonexistent anchor")

    def test_links_from_and_backlinks(self, db, hm):
        doc_a = db.insert("Document", name="a")
        doc_b = db.insert("Document", name="b")
        video = db.insert("Video", title="v")
        hm.link(doc_a, "x", video)
        hm.link(doc_b, "y", video)
        assert len(hm.links_from(doc_a)) == 1
        assert {l.source for l in hm.links_to(video)} == {doc_a, doc_b}

    def test_dangling_endpoints_rejected(self, db, hm):
        from repro.db.objects import OID
        doc = db.insert("Document", name="d")
        with pytest.raises(DatabaseError, match="does not exist"):
            hm.link(doc, "x", OID("Video", 404))
        with pytest.raises(DatabaseError, match="does not exist"):
            hm.link(OID("Document", 404), "x", doc)

    def test_unlink(self, db, hm):
        doc = db.insert("Document", name="d")
        video = db.insert("Video", title="v")
        link = hm.link(doc, "x", video)
        hm.unlink(link)
        assert hm.links_from(doc) == []

    def test_negative_cue_rejected(self, db, hm):
        doc = db.insert("Document", name="d")
        video = db.insert("Video", title="v")
        with pytest.raises(DatabaseError, match="cue"):
            hm.link(doc, "x", video, cue=-1.0)

    def test_empty_anchor_rejected(self):
        with pytest.raises(DatabaseError):
            Anchor("   ")

    def test_links_are_transactional_objects(self, db, hm):
        """Links live in the database: they survive via the same WAL path
        and show up in class queries."""
        doc = db.insert("Document", name="d")
        video = db.insert("Video", title="v")
        hm.link(doc, "x", video)
        from repro.hypermedia.links import LINK_CLASS
        assert len(db.select(LINK_CLASS)) == 1

    def test_link_cue_drives_playback_position(self, db, hm):
        """Following a link yields a cue usable with MediaActivity.cue."""
        from repro.activities import ActivityGraph
        from repro.activities.library import VideoReader, VideoWindow
        from repro.sim import Simulator
        from repro.synth import moving_scene
        doc = db.insert("Document", name="d")
        video_obj = db.insert("Video", title="v")
        hm.link(doc, "jump", video_obj, cue=WorldTime(0.2))
        followed = hm.follow(doc, "jump")

        sim = Simulator()
        video = moving_scene(12, 32, 24)  # 0.4 s at 30 fps
        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim))
        reader.bind(video)
        reader.cue(followed.cue)
        window = graph.add(VideoWindow(sim))
        graph.connect(reader.port("video_out"), window.port("video_in"))
        graph.run_to_completion()
        assert len(window.presented) == 6  # frames 6..11
