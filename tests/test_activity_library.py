"""Behavioural tests for every Table 1 activity and the audio/text/MIDI
equivalents."""

import numpy as np
import pytest

from repro.activities import ActivityGraph
from repro.activities.library import (
    ActivityCatalog,
    AudioDecoder,
    AudioEncoder,
    AudioMixer,
    AudioReader,
    AudioWriter,
    MIDISource,
    Speaker,
    SubtitleWindow,
    TextReader,
    VideoDecoder,
    VideoDigitizer,
    VideoEncoder,
    VideoMixer,
    VideoReader,
    VideoTee,
    VideoWindow,
    VideoWriter,
)
from repro.codecs import ADPCMCodec, JPEGCodec, MPEGCodec, MuLawCodec
from repro.errors import ActivityError, MediaTypeError
from repro.quality import parse_quality
from repro.synth import analog_master, jingle, moving_scene, subtitle_track, tone
from repro.values import MPEGVideoValue, RawVideoValue


def run_chain(sim, *stages):
    """Wire stages linearly (single in/out ports) and run to completion."""
    graph = ActivityGraph(sim)
    for stage in stages:
        graph.add(stage)
    for upstream, downstream in zip(stages, stages[1:]):
        graph.connect(upstream.out_ports()[0], downstream.in_ports()[0])
    graph.run_to_completion()
    return graph


class TestVideoDigitizer:
    def test_digitizes_analog_value(self, sim):
        master = analog_master(8, 32, 24)
        digitizer = VideoDigitizer(sim)
        digitizer.bind(master)
        window = VideoWindow(sim)
        run_chain(sim, digitizer, window)
        assert len(window.presented) == 8
        assert np.array_equal(window.presented[3], master.frame(3))

    def test_rejects_digital_values(self, sim, small_video):
        digitizer = VideoDigitizer(sim)
        with pytest.raises(MediaTypeError, match="analog"):
            digitizer.bind(small_video)


class TestVideoReader:
    def test_streams_raw_value(self, sim, small_video):
        reader = VideoReader(sim)
        reader.bind(small_video)
        window = VideoWindow(sim)
        run_chain(sim, reader, window)
        assert len(window.presented) == small_video.num_frames

    def test_streams_stored_representation(self, sim, small_video):
        """The reader emits chunks for encoded values (Table 1:
        compressed output); a decoder is a separate activity."""
        codec = JPEGCodec(80)
        encoded = codec.encode_value(small_video)
        reader = VideoReader(sim)
        reader.bind(encoded)
        decoder = VideoDecoder(sim, codec, 32, 24, 8)
        window = VideoWindow(sim)
        run_chain(sim, reader, decoder, window)
        assert len(window.presented) == small_video.num_frames
        error = np.abs(window.presented[5].astype(int)
                       - small_video.frame(5).astype(int)).mean()
        assert error < 10.0

    def test_rejects_analog(self, sim):
        reader = VideoReader(sim)
        with pytest.raises(MediaTypeError, match="digitizer"):
            reader.bind(analog_master(4))

    def test_rejects_non_video(self, sim, small_audio):
        with pytest.raises(MediaTypeError):
            VideoReader(sim).bind(small_audio)

    def test_pacing_matches_rate(self, sim, small_video):
        reader = VideoReader(sim)
        reader.bind(small_video)  # 10 frames at 30 fps
        window = VideoWindow(sim)
        run_chain(sim, reader, window)
        assert sim.now.seconds == pytest.approx(9 / 30.0, abs=1e-6)
        assert window.log.mean_latency() == pytest.approx(0.0, abs=1e-9)

    def test_free_run_mode_ignores_rate(self, sim, small_video):
        reader = VideoReader(sim)
        reader.bind(small_video)
        reader.paced = False
        window = VideoWindow(sim)
        window.paced = False
        run_chain(sim, reader, window)
        assert sim.now.seconds == 0.0  # no virtual time consumed
        assert len(window.presented) == small_video.num_frames


class TestEncoderDecoder:
    @pytest.mark.parametrize("codec_factory", [
        lambda: JPEGCodec(80),
        lambda: MPEGCodec(80, gop=4),
    ])
    def test_encode_decode_roundtrip_through_pipeline(self, sim, small_video,
                                                      codec_factory):
        codec = codec_factory()
        reader = VideoReader(sim)
        reader.bind(small_video)
        encoder = VideoEncoder(sim, codec)
        decoder = VideoDecoder(sim, codec, 32, 24, 8)
        window = VideoWindow(sim)
        run_chain(sim, reader, encoder, decoder, window)
        assert len(window.presented) == small_video.num_frames
        error = np.abs(window.presented[-1].astype(int)
                       - small_video.frame(-1 % small_video.num_frames).astype(int))
        assert error.mean() < 12.0

    def test_encoder_shrinks_elements(self, sim, small_video):
        reader = VideoReader(sim)
        reader.bind(small_video)
        encoder = VideoEncoder(sim, JPEGCodec(60))
        writer = VideoWriter(sim, codec=JPEGCodec(60), geometry=(32, 24, 8))
        graph = run_chain(sim, reader, encoder, writer)
        raw_bits = small_video.data_size_bits()
        compressed_bits = graph.connections[-1].bits_sent
        assert compressed_bits < raw_bits / 2

    def test_processing_cost_delays_stream(self, sim, small_video):
        reader = VideoReader(sim)
        reader.bind(small_video)
        decoder_cost = 0.01
        encoder = VideoEncoder(sim, JPEGCodec(80), process_seconds=decoder_cost)
        writer = VideoWriter(sim, codec=JPEGCodec(80), geometry=(32, 24, 8))
        run_chain(sim, reader, encoder, writer)
        # 10 frames * 10 ms of encode keeps the pipeline busy past the
        # nominal 0.3 s presentation span.
        assert sim.now.seconds >= 0.3 + decoder_cost


class TestMixerAndTee:
    def test_mixer_blends_weighted(self, sim):
        a = RawVideoValue(np.full((5, 8, 8), 100, dtype=np.uint8))
        b = RawVideoValue(np.full((5, 8, 8), 200, dtype=np.uint8))
        r1, r2 = VideoReader(sim, name="r1"), VideoReader(sim, name="r2")
        r1.bind(a)
        r2.bind(b)
        mixer = VideoMixer(sim, inputs=2, weights=[0.25, 0.75])
        window = VideoWindow(sim)
        graph = ActivityGraph(sim)
        for activity in (r1, r2, mixer, window):
            graph.add(activity)
        graph.connect(r1.port("video_out"), mixer.port("video_in_0"))
        graph.connect(r2.port("video_out"), mixer.port("video_in_1"))
        graph.connect(mixer.port("video_out"), window.port("video_in"))
        graph.run_to_completion()
        assert len(window.presented) == 5
        assert int(window.presented[0][0, 0]) == 175  # 0.25*100 + 0.75*200

    def test_mixer_stops_at_shortest_input(self, sim):
        a = RawVideoValue(np.zeros((3, 8, 8), dtype=np.uint8))
        b = RawVideoValue(np.zeros((7, 8, 8), dtype=np.uint8))
        r1, r2 = VideoReader(sim, name="r1"), VideoReader(sim, name="r2")
        r1.bind(a)
        r2.bind(b)
        mixer = VideoMixer(sim)
        window = VideoWindow(sim)
        graph = ActivityGraph(sim)
        for activity in (r1, r2, mixer, window):
            graph.add(activity)
        graph.connect(r1.port("video_out"), mixer.port("video_in_0"))
        graph.connect(r2.port("video_out"), mixer.port("video_in_1"))
        graph.connect(mixer.port("video_out"), window.port("video_in"))
        graph.start_all()
        graph.run()
        assert len(window.presented) == 3

    def test_mixer_weight_validation(self, sim):
        with pytest.raises(ActivityError):
            VideoMixer(sim, inputs=1)
        with pytest.raises(ActivityError):
            VideoMixer(sim, inputs=2, weights=[1.0])

    def test_tee_duplicates_stream(self, sim, small_video):
        reader = VideoReader(sim)
        reader.bind(small_video)
        tee = VideoTee(sim, outputs=2)
        w1, w2 = VideoWindow(sim, name="w1"), VideoWindow(sim, name="w2")
        graph = ActivityGraph(sim)
        for activity in (reader, tee, w1, w2):
            graph.add(activity)
        graph.connect(reader.port("video_out"), tee.port("video_in"))
        graph.connect(tee.port("video_out_0"), w1.port("video_in"))
        graph.connect(tee.port("video_out_1"), w2.port("video_in"))
        graph.run_to_completion()
        assert len(w1.presented) == len(w2.presented) == small_video.num_frames
        assert all(np.array_equal(x, y) for x, y in zip(w1.presented, w2.presented))


class TestWindowAndWriter:
    def test_window_quality_subsamples(self, sim):
        video = moving_scene(5, 64, 48)
        reader = VideoReader(sim)
        reader.bind(video)
        window = VideoWindow(sim, quality=parse_quality("32x24x8@30"))
        run_chain(sim, reader, window)
        assert window.presented[0].shape == (24, 32)

    def test_writer_rebuilds_raw_value(self, sim, small_video):
        reader = VideoReader(sim)
        reader.bind(small_video)
        writer = VideoWriter(sim, rate=30.0)
        run_chain(sim, reader, writer)
        result = writer.result()
        assert isinstance(result, RawVideoValue)
        assert np.array_equal(result.frames_array, small_video.frames_array)

    def test_writer_rebuilds_encoded_value(self, sim, small_video):
        codec = MPEGCodec(80, gop=5)
        encoded = codec.encode_value(small_video)
        reader = VideoReader(sim)
        reader.bind(encoded)
        writer = VideoWriter(sim, rate=30.0, codec=codec, geometry=(32, 24, 8))
        run_chain(sim, reader, writer)
        result = writer.result()
        assert isinstance(result, MPEGVideoValue)
        assert result.num_frames == small_video.num_frames

    def test_writer_encoded_without_codec_fails(self, sim, small_video):
        encoded = JPEGCodec(75).encode_value(small_video)
        reader = VideoReader(sim)
        reader.bind(encoded)
        writer = VideoWriter(sim)
        run_chain(sim, reader, writer)
        with pytest.raises(ActivityError, match="codec="):
            writer.result()

    def test_empty_writer_result_fails(self, sim):
        with pytest.raises(ActivityError, match="no elements"):
            VideoWriter(sim).result()


class TestAudioActivities:
    def test_reader_speaker_roundtrip(self, sim, small_audio):
        reader = AudioReader(sim, block_samples=512)
        reader.bind(small_audio)
        speaker = Speaker(sim)
        run_chain(sim, reader, speaker)
        assert np.array_equal(speaker.pcm(), small_audio.samples())
        assert sim.now.seconds == pytest.approx(
            (small_audio.num_samples - 512) / small_audio.sample_rate, abs=0.07
        )

    @pytest.mark.parametrize("codec_factory", [MuLawCodec, ADPCMCodec])
    def test_encode_decode_pipeline(self, sim, small_audio, codec_factory):
        codec = codec_factory()
        reader = AudioReader(sim, block_samples=512)
        reader.bind(small_audio)
        encoder = AudioEncoder(sim, codec)
        decoder = AudioDecoder(sim, codec)
        speaker = Speaker(sim)
        run_chain(sim, reader, encoder, decoder, speaker)
        out = speaker.pcm()
        assert out.shape == small_audio.samples().shape
        error = np.abs(out.astype(int) - small_audio.samples().astype(int))
        assert error.mean() < 500

    def test_audio_mixer_saturates(self, sim):
        loud = tone(0.2, 440.0, 8000.0, amplitude=0.95)
        r1, r2 = AudioReader(sim, name="a1"), AudioReader(sim, name="a2")
        r1.bind(loud)
        r2.bind(loud)
        mixer = AudioMixer(sim)
        speaker = Speaker(sim)
        graph = ActivityGraph(sim)
        for activity in (r1, r2, mixer, speaker):
            graph.add(activity)
        graph.connect(r1.port("audio_out"), mixer.port("audio_in_0"))
        graph.connect(r2.port("audio_out"), mixer.port("audio_in_1"))
        graph.connect(mixer.port("audio_out"), speaker.port("audio_in"))
        graph.run_to_completion()
        pcm = speaker.pcm()
        assert pcm.max() == 32767  # clipped, not wrapped
        assert pcm.min() >= -32768

    def test_audio_writer_result(self, sim, small_audio):
        reader = AudioReader(sim)
        reader.bind(small_audio)
        writer = AudioWriter(sim, sample_rate=small_audio.sample_rate)
        run_chain(sim, reader, writer)
        assert np.array_equal(writer.result().samples(), small_audio.samples())


class TestTextAndMIDI:
    def test_subtitles_presented_in_order(self, sim):
        track = subtitle_track(["one", "two", "three"], rate=2.0)
        reader = TextReader(sim)
        reader.bind(track)
        window = SubtitleWindow(sim)
        run_chain(sim, reader, window)
        assert window.texts() == ["one", "two", "three"]
        assert sim.now.seconds == pytest.approx(1.0)  # 3 items at 2/s

    def test_midi_source_streams_synthesized_pcm(self, sim):
        source = MIDISource(sim, block_samples=2048)
        source.bind(jingle())
        speaker = Speaker(sim)
        run_chain(sim, source, speaker)
        pcm = speaker.pcm()
        assert np.abs(pcm).max() > 1000
        assert pcm.shape[0] == 1

    def test_midi_source_rejects_audio(self, sim, small_audio):
        with pytest.raises(MediaTypeError):
            MIDISource(sim).bind(small_audio)


class TestCatalog:
    def test_table1_rows_match_paper(self):
        rows = {r.activity: r for r in ActivityCatalog.rows()}
        assert len(rows) == 8
        assert rows["video digitizer"].kind == "source"
        assert rows["video encoder"].input_type == "raw"
        assert rows["video encoder"].output_type == "compressed"
        assert rows["video decoder"].input_type == "compressed"
        assert rows["video mixer"].input_type == "raw x n"
        assert rows["video tee"].output_type == "raw x n"
        assert rows["video window"].kind == "sink"
        assert rows["video writer"].kind == "sink"

    def test_table_renders(self):
        table = ActivityCatalog.table(include_audio=True)
        assert "video mixer" in table
        assert "audio mixer" in table
        assert "midi source" in table


class TestAudioResampler:
    def test_upsample_preserves_duration_and_tone(self, sim):
        from repro.activities.library import AudioResampler
        source = tone(0.5, 440.0, sample_rate=8000.0)
        reader = AudioReader(sim, block_samples=512)
        reader.bind(source)
        resampler = AudioResampler(sim, source_rate=8000.0, target_rate=16000.0)
        speaker = Speaker(sim)
        run_chain(sim, reader, resampler, speaker)
        pcm = speaker.pcm()
        # Twice the samples over the same span.
        assert pcm.shape[1] == pytest.approx(source.num_samples * 2, rel=0.01)
        # The dominant frequency is still ~440 Hz at the new rate.
        spectrum = np.abs(np.fft.rfft(pcm[0].astype(np.float64)))
        peak_hz = np.argmax(spectrum) * 16000.0 / pcm.shape[1]
        assert abs(peak_hz - 440.0) < 20.0

    def test_downsample(self, sim):
        from repro.activities.library import AudioResampler
        source = tone(0.25, 200.0, sample_rate=16000.0)
        reader = AudioReader(sim, block_samples=1024)
        reader.bind(source)
        resampler = AudioResampler(sim, source_rate=16000.0, target_rate=8000.0)
        speaker = Speaker(sim)
        run_chain(sim, reader, resampler, speaker)
        assert speaker.pcm().shape[1] == pytest.approx(
            source.num_samples / 2, rel=0.02
        )

    def test_mixing_different_rates_through_resampler(self, sim):
        """The use case: a voice track joins a CD-rate mix."""
        from repro.activities.library import AudioResampler
        from repro.activities import ActivityGraph
        voice = tone(0.25, 300.0, sample_rate=8000.0)
        music = tone(0.25, 500.0, sample_rate=16000.0)
        r_voice = AudioReader(sim, name="v", block_samples=250)
        r_voice.bind(voice)
        r_music = AudioReader(sim, name="m", block_samples=500)
        r_music.bind(music)
        up = AudioResampler(sim, 8000.0, 16000.0, name="up")
        mixer = AudioMixer(sim)
        speaker = Speaker(sim)
        graph = ActivityGraph(sim)
        for activity in (r_voice, r_music, up, mixer, speaker):
            graph.add(activity)
        graph.connect(r_voice.port("audio_out"), up.port("audio_in"))
        graph.connect(up.port("audio_out"), mixer.port("audio_in_0"))
        graph.connect(r_music.port("audio_out"), mixer.port("audio_in_1"))
        graph.connect(mixer.port("audio_out"), speaker.port("audio_in"))
        graph.run_to_completion()
        pcm = speaker.pcm()[0].astype(np.float64)
        spectrum = np.abs(np.fft.rfft(pcm))
        hz = np.arange(len(spectrum)) * 16000.0 / len(pcm)
        # Both tones present in the mix.
        assert spectrum[(np.abs(hz - 300)).argmin()] > spectrum.mean() * 5
        assert spectrum[(np.abs(hz - 500)).argmin()] > spectrum.mean() * 5

    def test_invalid_rates(self, sim):
        from repro.activities.library import AudioResampler
        with pytest.raises(ActivityError):
            AudioResampler(sim, 0.0, 8000.0)
        with pytest.raises(ActivityError):
            AudioResampler(sim, 8000.0, -1.0)
