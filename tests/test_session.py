"""The client session: the §4.3 pseudo-code end to end, resource-failure
semantics, asynchronous notification."""

import pytest

from repro.activities import EVENT_EACH_FRAME, EVENT_LAST_FRAME
from repro.avdb import AVDatabaseSystem
from repro.codecs import MPEGCodec
from repro.db import AttributeSpec, ClassDef, Q
from repro.errors import AdmissionError, DeviceBusyError, SessionError
from repro.storage import MagneticDisk
from repro.synth import NEWSCAST_CLIP_SPEC, moving_scene, newscast_clip
from repro.values import VideoValue


def build_system(channel_bps=200_000_000.0):
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.db.define_class(ClassDef("SimpleNewscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("broadcastSource", str),
        AttributeSpec("whenBroadcast", str, indexed=True),
        AttributeSpec("videoTrack", VideoValue),
    ]))
    system.db.define_class(ClassDef("Newscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("whenBroadcast", str, indexed=True),
    ], tcomps=[NEWSCAST_CLIP_SPEC]))
    return system


def populate_simple(system, title="60 Minutes", when="1992-11-01"):
    video = moving_scene(12, 64, 48)
    system.store_value(video, "disk0")
    return system.db.insert("SimpleNewscast", title=title,
                            whenBroadcast=when, videoTrack=video)


class TestSimpleNewscastExample:
    """The paper's six-statement example, statement for statement."""

    def test_full_pseudo_code_flow(self):
        system = build_system()
        populate_simple(system)
        session = system.open_session("app")

        my_news = session.select_one(                      # statement 4
            "SimpleNewscast",
            Q.eq("title", "60 Minutes") & Q.eq("whenBroadcast", "1992-11-01"),
        )
        db_source = session.new_db_source((my_news, "videoTrack"))  # 1 + 5
        app_sink = session.new_video_window("320x240x8@30")         # 2
        stream = session.connect(db_source, app_sink)                # 3
        stream.start()                                               # 6
        session.run()

        assert len(app_sink.presented) == 12
        assert stream.finished()
        assert stream.bits_transferred > 0

    def test_query_returns_references_not_values(self):
        system = build_system()
        oid = populate_simple(system)
        session = system.open_session()
        result = session.select("SimpleNewscast", Q.eq("title", "60 Minutes"))
        assert result == [oid]  # OIDs, not media data
        obj = session.fetch(oid)
        assert obj.title == "60 Minutes"

    def test_bind_after_connect(self):
        """The paper binds (statement 5) after connecting (statement 3)."""
        system = build_system()
        video = moving_scene(6, 32, 24)
        system.store_value(video, "disk0")
        session = system.open_session()
        # Create an unbound reader at the database...
        from repro.activities.library import VideoReader
        from repro.activities import Location
        source = session.new_activity(
            VideoReader(system.simulator, location=Location.DATABASE)
        )
        sink = session.new_video_window()
        stream = session.connect(source, sink)
        session.bind(video, source)  # late binding
        stream.start()
        session.run()
        assert len(sink.presented) == 6

    def test_stop_mid_transfer(self):
        system = build_system()
        my_news = populate_simple(system)
        session = system.open_session()
        source = session.new_db_source((my_news, "videoTrack"))
        sink = session.new_video_window()
        stream = session.connect(source, sink)
        stream.start()

        def stopper():
            from repro.sim import Delay
            yield Delay(0.15)
            stream.stop()

        system.simulator.spawn(stopper())
        session.run()
        assert 0 < len(sink.presented) < 12


class TestResourceFailures:
    def test_connection_fails_on_insufficient_bandwidth(self):
        """§4.3: 'This statement would fail if insufficient network
        bandwidth were available.'"""
        system = build_system(channel_bps=1_000.0)  # 1 kb/s channel
        my_news = populate_simple(system)
        session = system.open_session("starved", channel_bps=1_000.0)
        source = session.new_db_source((my_news, "videoTrack"))
        sink = session.new_video_window()
        with pytest.raises(AdmissionError, match="cannot reserve"):
            session.connect(source, sink)

    def test_activity_creation_fails_without_device(self):
        """§4.3: 'If insufficient resources were available this statement
        would fail.'"""
        system = build_system()
        system.resources.add_pool("mixer", 1)
        session = system.open_session()
        from repro.activities.library import VideoMixer
        session.new_activity(VideoMixer(system.simulator, name="m1"),
                             device_kind="mixer")
        with pytest.raises(DeviceBusyError):
            session.new_activity(VideoMixer(system.simulator, name="m2"),
                                 device_kind="mixer")

    def test_session_close_releases_leases(self):
        system = build_system()
        pool = system.resources.add_pool("mixer", 1)
        session = system.open_session()
        from repro.activities.library import VideoMixer
        session.new_activity(VideoMixer(system.simulator, name="m1"),
                             device_kind="mixer")
        session.close()
        assert pool.available == 1
        with pytest.raises(SessionError, match="closed"):
            session.select("SimpleNewscast")


class TestCompositeExample:
    def test_newscast_multisource_multisink(self, clip=None):
        """The paper's second example: MultiSource / MultiSink with
        synchronized video + English audio (+ the other tracks)."""
        system = build_system()
        clip = newscast_clip(video_frames=10, audio_seconds=0.4)
        for track in clip.track_names:
            system.store_value(clip.value(track), "disk0")
        oid = system.db.insert("Newscast", title="60 Minutes",
                               whenBroadcast="1992-11-01", clip=clip)
        session = system.open_session()
        my_news = session.select_one("Newscast", Q.eq("title", "60 Minutes"))
        db_source = session.new_db_source((my_news, "clip"))
        app_sink = session.new_multi_sink()
        from repro.activities.library import Speaker, SubtitleWindow, VideoWindow
        app_sink.install(VideoWindow(system.simulator, name="w"),
                         track="videoTrack")
        app_sink.install(Speaker(system.simulator, name="en"),
                         track="englishTrack")
        app_sink.install(Speaker(system.simulator, name="fr"),
                         track="frenchTrack")
        app_sink.install(SubtitleWindow(system.simulator, name="sub"),
                         track="subtitleTrack")
        composite_stream = session.connect(db_source, app_sink)
        composite_stream.start()
        session.run()
        window = app_sink.components["w"]
        assert len(window.presented) == 10
        assert db_source.max_skew() == pytest.approx(0.0)  # no jitter injected


class TestAsyncInterface:
    def test_notifications_delivered_during_transfer(self):
        """'request notification on a frame-by-frame basis ... start the
        activity and then wait to be notified.'"""
        system = build_system()
        my_news = populate_simple(system)
        session = system.open_session()
        source = session.new_db_source((my_news, "videoTrack"))
        sink = session.new_video_window()
        stream = session.connect(source, sink)
        session.notify_on(source, EVENT_EACH_FRAME)
        session.notify_on(source, EVENT_LAST_FRAME)
        stream.start()
        session.run()
        events = session.notifications_for(source)
        frames = [n for n in events if n.event == EVENT_EACH_FRAME]
        lasts = [n for n in events if n.event == EVENT_LAST_FRAME]
        assert len(frames) == 12
        assert len(lasts) == 1
        # Notifications carry virtual timestamps spanning the transfer.
        assert frames[-1].at.seconds > frames[0].at.seconds

    def test_client_proceeds_during_transfer(self):
        """The client does other work while the stream runs (asynchronous,
        stream-based interface — not issue-request/receive-reply)."""
        system = build_system()
        my_news = populate_simple(system)
        session = system.open_session()
        source = session.new_db_source((my_news, "videoTrack"))
        sink = session.new_video_window()
        stream = session.connect(source, sink)
        stream.start()
        work_done = []

        def client_work():
            from repro.sim import Delay
            while not stream.finished():
                yield Delay(0.05)
                work_done.append(system.simulator.now.seconds)

        system.simulator.spawn(client_work())
        session.run()
        # Work items interleaved with the ~0.37 s transfer.
        assert len(work_done) >= 6
        assert stream.finished()

    def test_double_start_rejected(self):
        system = build_system()
        my_news = populate_simple(system)
        session = system.open_session()
        source = session.new_db_source((my_news, "videoTrack"))
        sink = session.new_video_window()
        stream = session.connect(source, sink)
        stream.start()
        with pytest.raises(SessionError, match="already started"):
            stream.start()


class TestDeferredTypeCheck:
    def test_bind_incompatible_value_after_connect_rejected(self):
        """Connecting an abstract source then binding a compressed value to
        a raw-only sink trips the deferred same-data-type check."""
        system = build_system()
        encoded = MPEGCodec(75).encode_value(moving_scene(4, 32, 24))
        system.store_value(encoded, "disk0")
        session = system.open_session()
        from repro.activities import Location
        from repro.activities.library import VideoReader
        from repro.errors import PortError
        source = session.new_activity(
            VideoReader(system.simulator, location=Location.DATABASE)
        )
        sink = session.new_video_window()  # raw only
        session.connect(source, sink)
        with pytest.raises(PortError, match="cannot narrow"):
            session.bind(encoded, source)
