"""The ingest path: recording live capture into the database
(Scenario I: 'video conferences and demos are also recorded')."""

import pytest

from repro.activities import Location
from repro.activities.live import LiveCamera
from repro.avdb import AVDatabaseSystem
from repro.codecs import MPEGCodec
from repro.db import AttributeSpec, ClassDef, Q
from repro.errors import SessionError
from repro.storage import MagneticDisk
from repro.values import MPEGVideoValue, RawVideoValue, VideoValue


def build_system():
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0"))
    system.db.define_class(ClassDef("Recording", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))
    return system


class TestRecording:
    def test_record_raw_capture_to_database(self):
        system = build_system()
        session = system.open_session("capture-station")
        camera = session.new_activity(LiveCamera(
            system.simulator, width=32, height=24, rate=30.0, max_elements=12,
            location=Location.APPLICATION,
        ))
        recording = session.record(camera, rate=30.0)
        recording.start()
        session.run()
        oid, value = recording.store("Recording", "video",
                                     device="disk0", title="demo capture")
        assert isinstance(value, RawVideoValue)
        assert value.num_frames == 12
        found = session.select_one("Recording", Q.eq("title", "demo capture"))
        assert found == oid
        assert system.placement.is_placed(value)

    def test_record_with_encoder_stores_compressed(self):
        system = build_system()
        session = system.open_session()
        codec = MPEGCodec(80, gop=4)
        camera = session.new_activity(LiveCamera(
            system.simulator, width=32, height=24, max_elements=8,
        ))
        recording = session.record(camera, codec=codec, geometry=(32, 24, 8))
        recording.start()
        session.run()
        oid, value = recording.store("Recording", "video", title="compressed")
        assert isinstance(value, MPEGVideoValue)
        assert value.num_frames == 8
        # Round trip: the stored recording decodes to frames.
        assert value.frame(5).shape == (24, 32)

    def test_store_before_finish_rejected(self):
        system = build_system()
        session = system.open_session()
        camera = session.new_activity(LiveCamera(
            system.simulator, max_elements=8,
        ))
        recording = session.record(camera)
        recording.start()
        with pytest.raises(SessionError, match="in progress"):
            recording.store("Recording", "video", title="too early")

    def test_stop_recording_midway(self):
        system = build_system()
        session = system.open_session()
        camera = session.new_activity(LiveCamera(
            system.simulator, rate=30.0,  # unbounded
        ))
        recording = session.record(camera)
        recording.start()

        def director():
            from repro.sim import Delay
            yield Delay(0.3)
            recording.stop()

        system.simulator.spawn(director())
        session.run()
        oid, value = recording.store("Recording", "video", title="partial")
        assert 5 <= value.num_frames <= 12

    def test_recorded_value_plays_back(self):
        """Full circle: capture -> store -> query -> stream to a window."""
        system = build_system()
        capture = system.open_session("capture")
        camera = capture.new_activity(LiveCamera(
            system.simulator, width=32, height=24, max_elements=10,
        ))
        recording = capture.record(camera)
        recording.start()
        capture.run()
        oid, value = recording.store("Recording", "video",
                                     device="disk0", title="replayable")

        viewer = system.open_session("viewer")
        ref = viewer.select_one("Recording", Q.eq("title", "replayable"))
        source = viewer.new_db_source((ref, "video"))
        window = viewer.new_video_window()
        viewer.connect(source, window).start()
        viewer.run()
        assert len(window.presented) == 10
        # The burned-in frame counters survive the round trip.
        assert int(window.presented[7][0, 0]) == 7
