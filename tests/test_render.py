"""The 3D rendering substrate and the Fig. 4 virtual-world configurations."""

import numpy as np
import pytest

from repro.codecs import MPEGCodec
from repro.errors import MediaTypeError, RenderError
from repro.render import (
    CameraPath,
    CameraPose,
    MoveSource,
    Rasterizer,
    RenderActivity,
    Scene,
    client_side_rendering,
    database_side_rendering,
    museum_room,
    orbit_path,
    walk_path,
)
from repro.synth import moving_scene


class TestCameraPath:
    def test_walk_path_interpolates(self):
        path = walk_path(steps=5, start=(0, 1, -10), end=(0, 1, -2))
        assert path.element_count == 5
        assert path.pose(0).z == -10
        assert path.pose(4).z == -2
        assert path.pose(2).z == pytest.approx(-6)

    def test_orbit_looks_inward(self):
        path = orbit_path(steps=8, radius=5.0)
        for i in range(8):
            pose = path.pose(i)
            _, _, forward = pose.basis()
            to_origin = -pose.position
            to_origin[1] = 0  # ignore height
            norm = np.linalg.norm(to_origin)
            cosine = float(forward[[0, 2]] @ to_origin[[0, 2]] / norm)
            assert cosine > 0.95  # looking roughly at the origin

    def test_media_value_interface(self):
        path = walk_path(steps=30)
        assert path.media_type.name == "geometry/pose"
        assert path.duration.seconds == pytest.approx(1.0)

    def test_empty_path_rejected(self):
        with pytest.raises(RenderError):
            CameraPath([])
        with pytest.raises(RenderError):
            walk_path(steps=0)

    def test_basis_orthonormal(self):
        pose = CameraPose(1, 2, 3, yaw=0.7, pitch=0.2)
        right, up, forward = pose.basis()
        for v in (right, up, forward):
            assert np.linalg.norm(v) == pytest.approx(1.0)
        assert abs(right @ forward) < 1e-9


class TestRasterizer:
    def test_renders_scene_content(self):
        scene = museum_room()
        rasterizer = Rasterizer(80, 60)
        frame = rasterizer.render(scene, CameraPose(0, 1.6, -6))
        assert frame.shape == (60, 80)
        # The scene fills most of the view: not just background.
        assert (frame != scene.background).mean() > 0.3

    def test_video_texture_appears_on_wall(self):
        scene = museum_room()
        rasterizer = Rasterizer(80, 60)
        bright = np.full((48, 64), 250, dtype=np.uint8)
        dark = np.full((48, 64), 5, dtype=np.uint8)
        pose = CameraPose(0, 1.6, -4)
        frame_bright = rasterizer.render(scene, pose, bright)
        frame_dark = rasterizer.render(scene, pose, dark)
        # Same geometry, different texture: frames must differ on the wall.
        assert (frame_bright.astype(int) - frame_dark.astype(int)).max() > 200

    def test_moving_camera_changes_view(self):
        scene = museum_room()
        rasterizer = Rasterizer(64, 48)
        far = rasterizer.render(scene, CameraPose(0, 1.6, -8))
        near = rasterizer.render(scene, CameraPose(0, 1.6, -2.5))
        assert not np.array_equal(far, near)

    def test_surfaces_behind_camera_culled(self):
        scene = Scene()
        scene.add_quad([[-1, 0, -5], [1, 0, -5], [1, 2, -5], [-1, 2, -5]],
                       shade=200)
        rasterizer = Rasterizer(32, 32)
        # The quad sits behind the camera (z=-5 < camera z=0 looking +z).
        frame = rasterizer.render(scene, CameraPose(0, 1, 0))
        assert (frame == scene.background).all()

    def test_invalid_parameters(self):
        with pytest.raises(RenderError):
            Rasterizer(0, 10)
        with pytest.raises(RenderError):
            Rasterizer(10, 10, fov_degrees=5.0)


class TestRenderActivities:
    def test_move_source_streams_poses(self, sim):
        from repro.activities import ActivityGraph
        from repro.activities.library import VideoReader, VideoWindow
        path = walk_path(steps=6)
        move = MoveSource(sim)
        move.bind(path)
        video = moving_scene(6, 32, 24)
        reader = VideoReader(sim)
        reader.bind(video)
        render = RenderActivity(sim, museum_room(), Rasterizer(48, 36))
        window = VideoWindow(sim)
        graph = ActivityGraph(sim)
        for activity in (move, reader, render, window):
            graph.add(activity)
        graph.connect(move.port("pose_out"), render.port("pose_in"))
        graph.connect(reader.port("video_out"), render.port("video_in"))
        graph.connect(render.port("video_out"), window.port("video_in"))
        graph.run_to_completion()
        assert len(window.presented) == 6
        assert render.frames_rendered == 6
        assert window.presented[0].shape == (36, 48)

    def test_move_source_rejects_video(self, sim):
        with pytest.raises(MediaTypeError):
            MoveSource(sim).bind(moving_scene(2))

    def test_render_survives_short_video(self, sim):
        """Navigation outlives the video: the wall keeps the last frame."""
        from repro.activities import ActivityGraph
        from repro.activities.library import VideoReader, VideoWindow
        move = MoveSource(sim)
        move.bind(walk_path(steps=10))
        reader = VideoReader(sim)
        reader.bind(moving_scene(3, 32, 24))  # shorter than the walk
        render = RenderActivity(sim, museum_room(), Rasterizer(32, 24))
        window = VideoWindow(sim)
        graph = ActivityGraph(sim)
        for activity in (move, reader, render, window):
            graph.add(activity)
        graph.connect(move.port("pose_out"), render.port("pose_in"))
        graph.connect(reader.port("video_out"), render.port("video_in"))
        graph.connect(render.port("video_out"), window.port("video_in"))
        graph.run_to_completion()
        assert len(window.presented) == 10


class TestFig4Configurations:
    @pytest.fixture(scope="class")
    def stored(self):
        return MPEGCodec(75).encode_value(moving_scene(12, 64, 48))

    def test_both_configurations_present_all_frames(self, stored):
        path = walk_path(steps=12)
        fat = client_side_rendering(stored, path, rasterizer=Rasterizer(64, 48))
        thin = database_side_rendering(stored, path, rasterizer=Rasterizer(64, 48))
        assert fat.frames_presented == 12
        assert thin.frames_presented == 12
        assert fat.render_location == "client"
        assert thin.render_location == "database"

    def test_fat_client_with_compressed_video_saves_network(self, stored):
        """Fig. 4 shape: a GPU client pulling compressed video uses far
        less network than a thin client receiving rendered rasters."""
        path = walk_path(steps=12)
        fat = client_side_rendering(stored, path, rasterizer=Rasterizer(64, 48))
        thin = database_side_rendering(stored, path, rasterizer=Rasterizer(64, 48))
        assert fat.network_bits < thin.network_bits / 5

    def test_crossover_with_tiny_rasters_and_raw_video(self):
        """The trade-off reverses when the source video is raw/large and
        the rendered view is tiny — DB-side rendering then wins."""
        big_raw = moving_scene(12, 128, 96)
        path = walk_path(steps=12)
        fat = client_side_rendering(big_raw, path, rasterizer=Rasterizer(32, 24))
        thin = database_side_rendering(big_raw, path, rasterizer=Rasterizer(32, 24))
        assert thin.network_bits < fat.network_bits

    def test_identical_imagery_regardless_of_placement(self, stored):
        """Where rendering runs must not change what the user sees."""
        path = walk_path(steps=8)
        fat = client_side_rendering(stored, path, rasterizer=Rasterizer(48, 36))
        thin = database_side_rendering(stored, path, rasterizer=Rasterizer(48, 36))
        assert all(
            np.array_equal(a, b) for a, b in zip(fat.frames, thin.frames)
        )
