"""Access control: the security function §2 says was 'never really
addressed in multimedia database systems'."""

import pytest

from repro.db import AttributeSpec, ClassDef, Database
from repro.db.access import (
    ANY_CLASS,
    AccessController,
    AccessDeniedError,
    GuardedDatabase,
    Permission,
)
from repro.db.query import Q


@pytest.fixture
def db():
    database = Database()
    database.define_class(ClassDef("Newscast", attributes=[
        AttributeSpec("title", str, indexed=True),
    ]))
    database.define_class(ClassDef("PromoVideo", attributes=[
        AttributeSpec("title", str, indexed=True),
    ]))
    return database


@pytest.fixture
def controller():
    control = AccessController()
    control.grant("admin", ANY_CLASS, Permission.READ | Permission.WRITE | Permission.ADMIN)
    control.grant("archivist", "Newscast", Permission.READ | Permission.WRITE)
    control.grant("viewer", "Newscast", Permission.READ)
    return control


class TestController:
    def test_holds_and_require(self, controller):
        assert controller.holds("viewer", "Newscast", Permission.READ)
        assert not controller.holds("viewer", "Newscast", Permission.WRITE)
        with pytest.raises(AccessDeniedError, match="lacks WRITE"):
            controller.require("viewer", "Newscast", Permission.WRITE)

    def test_wildcard_superuser(self, controller):
        assert controller.holds("admin", "PromoVideo", Permission.WRITE)
        assert controller.holds("admin", "anything", Permission.ADMIN)

    def test_grant_requires_admin(self, controller):
        with pytest.raises(AccessDeniedError, match="cannot grant"):
            controller.grant("viewer2", "Newscast", Permission.READ,
                             granted_by="archivist")
        controller.grant("viewer2", "Newscast", Permission.READ,
                         granted_by="admin")
        assert controller.holds("viewer2", "Newscast", Permission.READ)

    def test_revoke(self, controller):
        controller.revoke("viewer", "Newscast", Permission.READ,
                          revoked_by="admin")
        assert not controller.holds("viewer", "Newscast", Permission.READ)

    def test_revoke_partial_keeps_rest(self, controller):
        controller.revoke("archivist", "Newscast", Permission.WRITE,
                          revoked_by="admin")
        assert controller.holds("archivist", "Newscast", Permission.READ)

    def test_revoke_requires_admin(self, controller):
        with pytest.raises(AccessDeniedError, match="cannot revoke"):
            controller.revoke("viewer", "Newscast", Permission.READ,
                              revoked_by="archivist")

    def test_permissions_of(self, controller):
        perms = controller.permissions_of("archivist")
        assert perms == {"Newscast": Permission.READ | Permission.WRITE}


class TestGuardedDatabase:
    def test_read_write_split(self, db, controller):
        archivist = GuardedDatabase(db, controller, "archivist")
        viewer = GuardedDatabase(db, controller, "viewer")
        oid = archivist.insert("Newscast", title="news")
        assert viewer.get(oid).title == "news"
        assert viewer.select("Newscast", Q.eq("title", "news")) == [oid]
        with pytest.raises(AccessDeniedError):
            viewer.insert("Newscast", title="forged")
        with pytest.raises(AccessDeniedError):
            viewer.update(oid, title="defaced")
        with pytest.raises(AccessDeniedError):
            viewer.delete(oid)

    def test_class_isolation(self, db, controller):
        archivist = GuardedDatabase(db, controller, "archivist")
        with pytest.raises(AccessDeniedError):
            archivist.select("PromoVideo")
        with pytest.raises(AccessDeniedError):
            archivist.insert("PromoVideo", title="promo")

    def test_unknown_user_has_nothing(self, db, controller):
        stranger = GuardedDatabase(db, controller, "stranger")
        with pytest.raises(AccessDeniedError):
            stranger.select("Newscast")

    def test_admin_everywhere(self, db, controller):
        admin = GuardedDatabase(db, controller, "admin")
        oid = admin.insert("PromoVideo", title="promo")
        admin.update(oid, title="promo v2")
        assert admin.get(oid).title == "promo v2"
        admin.delete(oid)
