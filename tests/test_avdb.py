"""The integrated AV database system: dynamic source configuration,
device reservations, shared-device pools."""

import pytest

from repro.activities import CompositeActivity, Location
from repro.activities.library import VideoDigitizer, VideoReader, VideoWindow
from repro.avdb import AVDatabaseSystem
from repro.codecs import JPEGCodec, MPEGCodec
from repro.errors import DeviceBusyError, MediaTypeError, ResourceError
from repro.sim import Delay
from repro.storage import MagneticDisk
from repro.synth import analog_master, moving_scene, newscast_clip, tone


@pytest.fixture
def system():
    avdb = AVDatabaseSystem()
    avdb.add_storage(MagneticDisk(avdb.simulator, "disk0"))
    return avdb


class TestDynamicSourceConfiguration:
    def test_raw_value_gets_plain_reader(self, system):
        video = moving_scene(5)
        source = system.make_source(video)
        assert isinstance(source, VideoReader)
        assert source.location is Location.DATABASE

    def test_encoded_value_delivered_raw_gets_composite(self, system):
        """§4.3: 'dynamic configuration of dbSource is necessary'."""
        encoded = MPEGCodec(75).encode_value(moving_scene(5))
        source = system.make_source(encoded, deliver="raw")
        assert isinstance(source, CompositeActivity)
        assert set(a.name.split(".")[-1] for a in source.components.values()) == \
            {"read", "decode"}
        assert source.port("out").media_type.name == "video/raw"

    def test_encoded_value_delivered_stored_stays_compressed(self, system):
        encoded = JPEGCodec(75).encode_value(moving_scene(5))
        source = system.make_source(encoded, deliver="stored")
        assert isinstance(source, VideoReader)
        assert source.port("video_out").media_type.name == "video/jpeg"

    def test_analog_value_gets_digitizer(self, system):
        source = system.make_source(analog_master(5))
        assert isinstance(source, VideoDigitizer)

    def test_audio_and_text_sources(self, system):
        from repro.activities.library import AudioReader, TextReader
        from repro.synth import subtitle_track
        assert isinstance(system.make_source(tone(0.1)), AudioReader)
        assert isinstance(system.make_source(subtitle_track()), TextReader)

    def test_invalid_deliver_mode(self, system):
        with pytest.raises(MediaTypeError):
            system.make_source(moving_scene(2), deliver="holographic")

    def test_multisource_builds_component_per_track(self, system):
        clip = newscast_clip(video_frames=5, audio_seconds=0.2)
        multi = system.make_multisource(clip)
        assert set(multi.components) == {
            f"{multi.name}.{t}" for t in clip.track_names
        }
        assert multi.bound_value is clip


class TestDeviceReservations:
    def test_placed_value_reader_pays_device_time(self, system):
        video = moving_scene(10, 64, 48)
        system.store_value(video, "disk0")
        source = system.make_source(video)
        assert source.io_stream is not None
        assert source.io_stream.device.name == "disk0"
        window = VideoWindow(system.simulator, name="w")
        system.graph.add(window)
        system.graph.connect(source.port("video_out"), window.port("video_in"))
        system.graph.run_to_completion()
        assert len(window.presented) == 10
        assert system.placement.device("disk0").total_bits_read > 0

    def test_unplaced_value_needs_no_reservation(self, system):
        source = system.make_source(moving_scene(5))
        assert source.io_stream is None

    def test_composite_source_reservation_lands_on_reader(self, system):
        encoded = MPEGCodec(75).encode_value(moving_scene(5))
        system.store_value(encoded, "disk0")
        source = system.make_source(encoded, deliver="raw")
        reader = source._io_reader
        assert reader.io_stream is not None


class TestSharedDevicePools:
    def test_fail_fast_allocation(self, system):
        pool = system.resources.add_pool("mixer", 1)
        lease = system.resources.allocate("mixer")
        with pytest.raises(DeviceBusyError, match="no 'mixer' device"):
            system.resources.allocate("mixer")
        lease.release()
        system.resources.allocate("mixer")  # available again
        assert pool.allocation_failures == 1

    def test_queued_acquire_waits(self, system):
        pool = system.resources.add_pool("dve", 1)
        sim = system.simulator
        order = []

        def client(name, hold):
            lease = yield pool.acquire()
            order.append((name, sim.now.seconds))
            yield Delay(hold)
            lease.release()

        sim.spawn(client("a", 2.0))
        sim.spawn(client("b", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0)]
        assert pool.wait_count == 1

    def test_double_release_rejected(self, system):
        system.resources.add_pool("mixer", 1)
        lease = system.resources.allocate("mixer")
        lease.release()
        with pytest.raises(ResourceError, match="already released"):
            lease.release()

    def test_unknown_pool(self, system):
        with pytest.raises(ResourceError, match="no device pool"):
            system.resources.allocate("quantum-mixer")

    def test_duplicate_pool_rejected(self, system):
        system.resources.add_pool("mixer", 1)
        with pytest.raises(ResourceError, match="already exists"):
            system.resources.add_pool("mixer", 2)
