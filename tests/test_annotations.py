"""The annotation store and temporal query engine.

Covers the typed store over the db tier, the max-end-augmented
interval index against a brute-force baseline, index/scan equivalence
(example-based and property-based across all five operators), the
cost-based planner and its DecisionLog trail, track joins, bulk
loading, corpus determinism, and the wait-die writer-vs-scan
regression.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.annotations import (
    AQ,
    Annotation,
    AnnotationJoin,
    AnnotationStore,
    AnnotationType,
    CorpusSpec,
    FieldSpec,
    IntervalIndex,
    WINDOW_OPS,
    corpus_fingerprint,
    generate_rows,
    load_corpus,
    plan,
    run,
    run_join,
    track_sentinel,
)
from repro.db.objects import OID
from repro.errors import AnnotationError, LockTimeoutError, QueryError
from repro.obs import scoped


WORD = AnnotationType("word", (FieldSpec("label", str, required=True),
                               FieldSpec("confidence", float)))
TURN = AnnotationType("turn", (FieldSpec("label", str, required=True),))


def fresh_store():
    store = AnnotationStore()
    store.define_type(WORD)
    store.define_type(TURN)
    return store


# -- model ----------------------------------------------------------------
class TestModel:
    def test_payload_canonicalized_and_validated(self):
        canonical = WORD.validate_payload(
            {"label": "hi", "confidence": 0.9})
        assert canonical == (("confidence", 0.9), ("label", "hi"))
        with pytest.raises(AnnotationError, match="requires"):
            WORD.validate_payload({"confidence": 0.9})
        with pytest.raises(AnnotationError, match="no payload field"):
            WORD.validate_payload({"label": "hi", "nope": 1})
        with pytest.raises(AnnotationError, match="wants str"):
            WORD.validate_payload({"label": 7})

    def test_type_rejects_duplicate_fields(self):
        with pytest.raises(AnnotationError, match="repeats"):
            AnnotationType("bad", (FieldSpec("x"), FieldSpec("x")))

    def test_window_predicate_truth_table(self):
        # One interval, five operators, the documented semantics.
        s, e = 2.0, 4.0
        assert WINDOW_OPS["overlaps"](s, e, 3.0, 10.0)
        assert not WINDOW_OPS["overlaps"](s, e, 4.0, 10.0)  # half-open
        assert WINDOW_OPS["during"](s, e, 2.0, 4.0)
        assert not WINDOW_OPS["during"](s, e, 2.5, 10.0)
        assert WINDOW_OPS["before"](s, e, 4.0, 9.0)
        assert WINDOW_OPS["after"](s, e, 0.0, 2.0)
        assert WINDOW_OPS["meets"](s, e, 4.0, 9.0)
        assert WINDOW_OPS["meets"](s, e, 0.0, 2.0)
        assert not WINDOW_OPS["meets"](s, e, 0.0, 1.0)

    def test_to_row_is_stable(self):
        ann = Annotation(OID("Annotation", 3), "v", "audio", "word",
                         1.0, 2.5, (("label", "hi"),))
        assert ann.to_row() == "v/audio [1.000000,2.500000) word label='hi'"


# -- interval index vs brute force ---------------------------------------
class TestIntervalIndex:
    def _build(self, intervals):
        index = IntervalIndex("Annotation", "__interval__/t", min_degree=2)
        rows = []
        for serial, (s, e) in enumerate(intervals):
            ref = OID("Annotation", serial)
            index.add(s, e, ref)
            rows.append((s, e, ref))
        return index, rows

    def test_rejects_degenerate_interval(self):
        index, _ = self._build([])
        with pytest.raises(AnnotationError, match="start < end"):
            index.add(2.0, 2.0, OID("Annotation", 1))

    @pytest.mark.parametrize("op", sorted(WINDOW_OPS))
    def test_matches_brute_force(self, op):
        rng = random.Random(f"intervals:{op}")
        intervals = [(s, s + rng.uniform(0.1, 20.0))
                     for s in (rng.uniform(0.0, 100.0) for _ in range(300))]
        index, rows = self._build(intervals)
        index.check_invariants()
        predicate = WINDOW_OPS[op]
        for lo, hi in [(0.0, 100.0), (10.0, 11.0), (50.0, 50.5),
                       (99.0, 120.0), (-5.0, 0.0)]:
            expected = sorted((s, e, ref.serial) for s, e, ref in rows
                              if predicate(s, e, lo, hi))
            got = [(key[0], key[1], oids[0].serial)
                   for key, oids in index.window(op, lo, hi)]
            assert got == expected, (op, lo, hi)

    def test_meets_hits_exact_endpoints(self):
        index, _ = self._build([(1.0, 3.0), (3.0, 5.0), (5.0, 7.0)])
        got = [key[:2] for key, _ in index.window("meets", 3.0, 5.0)]
        assert got == [(1.0, 3.0), (5.0, 7.0)]

    def test_results_ordered_by_start_end_serial(self):
        index, _ = self._build([(1.0, 9.0), (1.0, 2.0), (0.5, 4.0)])
        got = [key for key, _ in index.window("overlaps", 0.0, 10.0)]
        assert got == sorted(got)

    def test_mutation_invalidates_live_window(self):
        index, _ = self._build([(float(i), float(i) + 1.5)
                                for i in range(50)])
        walk = index.window("overlaps", 0.0, 100.0)
        next(walk)
        index.add(200.0, 201.0, OID("Annotation", 999))
        with pytest.raises(AnnotationError, match="mutated"):
            list(walk)


# -- store ----------------------------------------------------------------
class TestStore:
    def test_annotate_read_remove_roundtrip(self):
        store = fresh_store()
        ref = store.annotate("v", "audio", "word", 1.0, 2.0,
                             {"label": "hi"})
        ann = store.get(ref)
        assert (ann.value_id, ann.track, ann.atype) == ("v", "audio", "word")
        assert ann.payload_dict == {"label": "hi"}
        assert len(store) == 1
        stats = store.track_stats("v", "audio")
        assert (stats.count, stats.min_start, stats.max_end) == (1, 1.0, 2.0)
        store.remove(ref)
        assert len(store) == 0
        assert store.track_stats("v", "audio").count == 0

    def test_rejects_unknown_type_and_bad_interval(self):
        store = fresh_store()
        with pytest.raises(AnnotationError, match="unknown annotation type"):
            store.annotate("v", "audio", "nope", 1.0, 2.0)
        with pytest.raises(AnnotationError, match="start < end"):
            store.annotate("v", "audio", "word", 2.0, 2.0,
                           {"label": "x"})
        with pytest.raises(AnnotationError, match="already defined"):
            store.define_type(WORD)

    def test_abort_rolls_back_index(self):
        store = fresh_store()
        store.annotate("v", "audio", "word", 1.0, 2.0, {"label": "keep"})
        tx = store.db.begin()
        store.annotate("v", "audio", "word", 5.0, 6.0, {"label": "drop"},
                       tx=tx)
        tx.abort()
        assert len(store) == 1
        assert store.track_stats("v", "audio").count == 1
        rows = run(store, AQ.on("v", "audio").overlaps(0.0, 10.0),
                   mode="index").rows
        assert [a.payload_dict["label"] for a in rows] == ["keep"]

    def test_scan_track_ordered_and_windowed(self):
        store = fresh_store()
        for s in (5.0, 1.0, 3.0):
            store.annotate("v", "audio", "word", s, s + 1.0,
                           {"label": f"w{s:.0f}"})
        assert [a.start for a in store.scan_track("v", "audio")] == \
            [1.0, 3.0, 5.0]
        assert [a.start for a in store.scan_track("v", "audio",
                                                  lo=2.0, hi=5.0)] == [3.0]

    def test_track_sentinel_is_stable_and_distinct(self):
        assert track_sentinel("v", "audio") == track_sentinel("v", "audio")
        assert track_sentinel("v", "audio") != track_sentinel("v", "video")


# -- wait-die: writers vs in-flight scans (the PR's locking regression) ---
class TestWaitDie:
    def test_younger_writer_dies_against_scan_locks(self):
        store = fresh_store()
        for s in range(10):
            store.annotate("v", "audio", "word", float(s), s + 0.5,
                           {"label": f"w{s}"})
        reader = store.db.begin()
        scan = store.scan_track("v", "audio", tx=reader)
        consumed = [next(scan) for _ in range(3)]

        writer = store.db.begin()  # younger than the reader
        with pytest.raises(LockTimeoutError) as exc:
            store.annotate("v", "audio", "word", 20.0, 21.0,
                           {"label": "young"}, tx=writer)
        assert exc.value.should_retry is False  # wait-die: younger dies
        writer.abort()

        # The aborted writer must not have corrupted the in-flight scan.
        rest = list(scan)
        assert [a.start for a in consumed + rest] == \
            [float(s) for s in range(10)]
        reader.commit()
        store.track_index("v", "audio").check_invariants()

        # A fresh (younger-than-nothing) retry goes through.
        store.annotate("v", "audio", "word", 20.0, 21.0,
                       {"label": "young"})
        assert store.track_stats("v", "audio").count == 11

    def test_older_scan_waits_out_younger_writer(self):
        store = fresh_store()
        store.annotate("v", "audio", "word", 1.0, 2.0, {"label": "a"})
        older = store.db.begin()
        younger = store.db.begin()
        # The younger writer gets in first and holds the sentinel X.
        store.annotate("v", "audio", "word", 3.0, 4.0,
                       {"label": "b"}, tx=younger)
        # The older scan conflicts but is told to WAIT (retry), not die.
        with pytest.raises(LockTimeoutError) as exc:
            list(store.scan_track("v", "audio", tx=older))
        assert exc.value.should_retry is True
        younger.commit()
        # Retrying after the younger commits sees both annotations.
        assert [a.start for a in store.scan_track("v", "audio",
                                                  tx=older)] == [1.0, 3.0]
        older.commit()


# -- queries: equivalence, filters, planner, joins ------------------------
def seeded_store(seed=0, n=400, values=3, duration=60.0):
    store = fresh_store()
    rng = random.Random(f"annq:{seed}")
    rows = []
    for _ in range(n):
        value = f"v{rng.randrange(values)}"
        track = rng.choice(("audio", "video"))
        atype = rng.choice(("word", "turn"))
        s = rng.uniform(0.0, duration)
        e = min(duration + 5.0, s + rng.uniform(0.1, 8.0))
        rows.append((value, track, atype, s, e,
                     (("label", f"{atype}-{rng.randrange(5)}"),)))
    store.bulk_load(rows)
    return store


class TestQueries:
    def test_index_and_scan_agree_on_examples(self):
        store = seeded_store()
        queries = [
            AQ.on("v0", "audio").during(10.0, 30.0),
            AQ.on("v0", "audio").overlaps(15.0, 15.5),
            AQ.on("v1", "video").before(20.0),
            AQ.on("v2", "audio").after(40.0),
            AQ.of_type("turn").during(0.0, 60.0),
            AQ.on("v0").overlaps(0.0, 60.0),           # all tracks of v0
            AQ.on("v0", "audio").of_type("word").where(label="word-1")
              .during(0.0, 60.0),
        ]
        for query in queries:
            index = run(store, query, mode="index")
            scan = run(store, query, mode="scan")
            assert index.rows == scan.rows, query.describe()
            assert index.rows == sorted(index.rows,
                                        key=lambda a: a.sort_key)

    def test_empty_results_are_equal_too(self):
        store = seeded_store()
        query = AQ.on("nope", "audio").during(0.0, 1.0)
        assert run(store, query, mode="index").rows == \
            run(store, query, mode="scan").rows == []

    def test_planner_prefers_index_for_narrow_pinned(self):
        with scoped(tracing=False) as obs:
            store = seeded_store(n=2000)
            narrow = plan(store, AQ.on("v0", "audio").during(10.0, 10.5))
            broad = plan(store, AQ.overlaps(0.0, 60.0))
            assert narrow.mode == "index" and not narrow.forced
            assert broad.mode == "scan"
            assert narrow.est_index < narrow.est_scan
            kinds = [e for e in obs.decisions.events if e.kind == "plan"]
            assert len(kinds) == 2
            assert kinds[0].actor == "annotations.planner"
            assert kinds[0].args["mode"] == "index"
            snapshot = obs.metrics.snapshot()
            assert snapshot["annotations.plans_index"] >= 1
            assert snapshot["annotations.plans_scan"] >= 1

    def test_forced_mode_is_obeyed_and_flagged(self):
        store = seeded_store()
        decision = plan(store, AQ.overlaps(0.0, 60.0), mode="index")
        assert decision.mode == "index" and decision.forced
        with pytest.raises(AnnotationError, match="unknown planner mode"):
            plan(store, AQ.overlaps(0.0, 60.0), mode="fast")

    def test_result_reports_mode_and_examined(self):
        store = seeded_store()
        result = run(store, AQ.on("v0", "audio").during(0.0, 60.0),
                     mode="scan")
        assert result.mode == "scan"
        assert result.examined == len(store)

    def test_join_paths_agree(self):
        store = seeded_store()
        for relation in sorted(WINDOW_OPS):
            join = AnnotationJoin(
                AQ.on("v0", "audio").of_type("word").during(0.0, 60.0),
                relation, AQ.on("v0", "audio").of_type("turn"))
            index = run_join(store, join, mode="index")
            scan = run_join(store, join, mode="scan")
            assert index.rows == scan.rows, relation
        with pytest.raises(AnnotationError, match="temporal"):
            AnnotationJoin(AQ.on("v0", "audio"), "during",
                           AQ.on("v0", "audio").during(0.0, 1.0))

    def test_transactional_query_locks_out_younger_writer(self):
        store = seeded_store(n=50, values=1)
        tx = store.db.begin()
        result = run(store, AQ.on("v0", "audio").during(0.0, 60.0),
                     mode="index", tx=tx)
        writer = store.db.begin()
        with pytest.raises(LockTimeoutError):
            store.annotate("v0", "audio", "word", 1.0, 2.0,
                           {"label": "x"}, tx=writer)
        writer.abort()
        tx.commit()
        assert result.rows == sorted(result.rows, key=lambda a: a.sort_key)


OPERATORS = sorted(WINDOW_OPS)


class TestEquivalenceProperty:
    """Satellite: randomized predicate mixes, all five operators —
    index and scan execution must return identical, deterministically
    ordered results."""

    @given(
        seed=st.integers(0, 2**16),
        predicates=st.lists(
            st.tuples(st.sampled_from(OPERATORS),
                      st.floats(0.0, 60.0, allow_nan=False),
                      st.floats(0.001, 20.0, allow_nan=False),
                      st.sampled_from([None, "v0", "v1"]),
                      st.sampled_from([None, "audio", "video"]),
                      st.sampled_from([None, "word", "turn"])),
            min_size=1, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_index_scan_identical_across_mixes(self, seed, predicates):
        store = seeded_store(seed=seed % 7, n=150)
        for op, lo, width, value, track, atype in predicates:
            query = AQ
            if value is not None:
                query = query.on(value, track) if track else query.on(value)
            if atype is not None:
                query = query.of_type(atype)
            if op in ("before", "after"):
                query = getattr(query, op)(lo)
            else:
                query = getattr(query, op)(lo, lo + width)
            index = run(store, query, mode="index")
            scan = run(store, query, mode="scan")
            rows = [a.to_row() for a in index.rows]
            assert rows == [a.to_row() for a in scan.rows], query.describe()
            assert index.rows == sorted(index.rows,
                                        key=lambda a: a.sort_key)
            # Determinism: a rerun returns byte-identical rows.
            assert rows == [a.to_row()
                            for a in run(store, query, mode="index").rows]


# -- bulk loading and the corpus -----------------------------------------
class TestCorpus:
    def test_bulk_load_equals_transactional_loads(self):
        rows = [("v", "audio", "word", float(s), s + 1.0,
                 (("label", f"w{s}"),)) for s in range(40)]
        bulk = fresh_store()
        bulk.bulk_load(rows)
        slow = fresh_store()
        for value, track, atype, s, e, payload in rows:
            slow.annotate(value, track, atype, s, e, dict(payload))
        query = AQ.on("v", "audio").overlaps(0.0, 100.0)
        assert [a.to_row() for a in run(bulk, query, mode="index").rows] == \
            [a.to_row() for a in run(slow, query, mode="index").rows]
        bulk.track_index("v", "audio").check_invariants()

    def test_bulk_load_then_online_writes(self):
        store = fresh_store()
        store.bulk_load([("v", "audio", "word", float(s), s + 0.5,
                          (("label", "x"),)) for s in range(30)])
        store.annotate("v", "audio", "word", 7.25, 7.75, {"label": "new"})
        rows = run(store, AQ.on("v", "audio").during(7.0, 8.0),
                   mode="index").rows
        assert rows == run(store, AQ.on("v", "audio").during(7.0, 8.0),
                           mode="scan").rows
        assert {a.payload_dict["label"] for a in rows} == {"x", "new"}

    def test_generate_rows_is_seed_deterministic(self):
        spec = CorpusSpec(seed=5, values=6, annotations=300)
        first = list(generate_rows(spec))
        again = list(generate_rows(spec))
        assert first == again
        assert corpus_fingerprint(spec) == corpus_fingerprint(spec)
        other = CorpusSpec(seed=6, values=6, annotations=300)
        assert corpus_fingerprint(spec) != corpus_fingerprint(other)
        assert len(first) == 300

    def test_load_corpus_counts_and_agreement(self):
        store = AnnotationStore()
        spec = CorpusSpec(seed=2, values=8, annotations=500,
                          duration_s=60.0)
        facts = load_corpus(store, spec)
        assert facts["annotations"] == len(store) == 500
        query = AQ.on("value-00000", "audio").overlaps(0.0, 60.0)
        assert run(store, query, mode="index").rows == \
            run(store, query, mode="scan").rows


class TestScenarios:
    def test_speech_scenario_agrees_and_is_deterministic(self):
        from repro.annotations.scenarios import SCENARIOS, summary_line
        with scoped(tracing=False):
            first = SCENARIOS["speech"](seed=0)
        with scoped(tracing=False):
            again = SCENARIOS["speech"](seed=0)
        assert first == again
        assert first["all_agree"] is True
        assert "agree=True" in summary_line("speech", first)

    @pytest.mark.parametrize("name", ["dance", "planner"])
    def test_other_scenarios_agree(self, name):
        from repro.annotations.scenarios import SCENARIOS
        with scoped(tracing=False):
            facts = SCENARIOS[name](seed=0)
        assert facts["all_agree"] is True
