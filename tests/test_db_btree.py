"""The B-tree index: correctness, invariants, equivalence with the
sorted-list baseline under random workloads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.btree import BTreeIndex
from repro.db.index import OrderedIndex
from repro.db.objects import OID
from repro.errors import QueryError


def oid(i):
    return OID("T", i)


class TestBasics:
    def test_insert_eq(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        tree.insert(5, oid(1))
        tree.insert(5, oid(2))
        tree.insert(7, oid(3))
        assert tree.eq(5) == {oid(1), oid(2)}
        assert tree.eq(7) == {oid(3)}
        assert tree.eq(6) == set()
        assert len(tree) == 3

    def test_none_keys_ignored(self):
        tree = BTreeIndex("T", "n")
        tree.insert(None, oid(1))
        tree.remove(None, oid(1))
        assert len(tree) == 0

    def test_duplicate_posting_not_double_counted(self):
        tree = BTreeIndex("T", "n")
        tree.insert(1, oid(1))
        tree.insert(1, oid(1))
        assert len(tree) == 1

    def test_min_max(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        assert tree.min_key() is None
        for k in (9, 3, 7, 1, 5):
            tree.insert(k, oid(k))
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_splits_build_depth(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        for k in range(100):
            tree.insert(k, oid(k))
        tree.check_invariants()
        assert not tree._root.leaf  # really split
        assert tree.range(lo=10, hi=19) == {oid(k) for k in range(10, 20)}

    def test_range_bounds(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        for k in range(20):
            tree.insert(k, oid(k))
        assert tree.range(lo=5, hi=8) == {oid(k) for k in (5, 6, 7, 8)}
        assert tree.range(lo=5, hi=8, include_lo=False) == {oid(k) for k in (6, 7, 8)}
        assert tree.range(lo=5, hi=8, include_hi=False) == {oid(k) for k in (5, 6, 7)}
        assert tree.range(hi=2) == {oid(k) for k in (0, 1, 2)}
        assert tree.range(lo=18) == {oid(18), oid(19)}
        assert tree.range() == {oid(k) for k in range(20)}
        with pytest.raises(QueryError):
            tree.range(lo=9, hi=3)

    def test_invalid_degree(self):
        with pytest.raises(QueryError):
            BTreeIndex("T", "n", min_degree=1)


class TestDelete:
    def test_remove_posting_keeps_key_until_empty(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        tree.insert(4, oid(1))
        tree.insert(4, oid(2))
        tree.remove(4, oid(1))
        assert tree.eq(4) == {oid(2)}
        tree.remove(4, oid(2))
        assert tree.eq(4) == set()
        tree.check_invariants()

    def test_remove_absent_is_noop(self):
        tree = BTreeIndex("T", "n")
        tree.insert(1, oid(1))
        tree.remove(2, oid(9))
        tree.remove(1, oid(9))
        assert len(tree) == 1

    def test_delete_through_rebalancing(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        keys = list(range(64))
        for k in keys:
            tree.insert(k, oid(k))
        # Delete in an adversarial order: evens then odds.
        for k in keys[::2] + keys[1::2]:
            tree.remove(k, oid(k))
            tree.check_invariants()
        assert len(tree) == 0
        assert tree.min_key() is None

    def test_root_collapse(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        for k in range(10):
            tree.insert(k, oid(k))
        for k in range(10):
            tree.remove(k, oid(k))
        assert tree._root.leaf


class TestEquivalenceProperties:
    @given(st.lists(
        st.tuples(st.sampled_from(["insert", "remove"]),
                  st.integers(0, 30), st.integers(0, 5)),
        min_size=1, max_size=200,
    ))
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_list_baseline(self, operations):
        tree = BTreeIndex("T", "n", min_degree=2)
        baseline = OrderedIndex("T", "n")
        for op, key, serial in operations:
            if op == "insert":
                tree.insert(key, oid(serial))
                # The baseline tolerates duplicates differently; guard it.
                if oid(serial) not in baseline.eq(key):
                    baseline.insert(key, oid(serial))
            else:
                tree.remove(key, oid(serial))
                baseline.remove(key, oid(serial))
        tree.check_invariants()
        for key in range(31):
            assert tree.eq(key) == baseline.eq(key), f"eq({key}) diverged"
        assert tree.range(lo=5, hi=25) == baseline.range(lo=5, hi=25)
        assert tree.min_key() == baseline.min_key()
        assert tree.max_key() == baseline.max_key()

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=300),
           st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_under_bulk_insert(self, keys, degree):
        tree = BTreeIndex("T", "n", min_degree=degree)
        for i, key in enumerate(keys):
            tree.insert(key, oid(i))
        tree.check_invariants()
        assert tree.min_key() == min(keys)
        assert tree.max_key() == max(keys)
        in_order = [k for k, _ in tree.items()]
        assert in_order == sorted(set(keys))


class TestScan:
    def _tree(self, n=50, degree=2):
        tree = BTreeIndex("T", "n", min_degree=degree)
        for k in range(n):
            tree.insert(k, oid(k))
        return tree

    def test_yields_ordered_pairs(self):
        tree = self._tree()
        assert [k for k, _ in tree.scan()] == list(range(50))
        assert all(oids == (oid(k),) for k, oids in tree.scan())

    def test_bounds_match_range(self):
        tree = self._tree()
        for lo, hi, ilo, ihi in [(5, 20, True, True), (5, 20, False, False),
                                 (None, 10, True, False),
                                 (30, None, False, True)]:
            lazy = {o for _, oids in tree.scan(lo, hi, ilo, ihi)
                    for o in oids}
            assert lazy == tree.range(lo, hi, ilo, ihi)

    def test_bucket_oids_sorted(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        for serial in (9, 1, 5):
            tree.insert(42, oid(serial))
        [(key, oids)] = list(tree.scan())
        assert key == 42 and oids == (oid(1), oid(5), oid(9))

    def test_on_visit_fires_before_each_yield(self):
        tree = self._tree(10)
        seen = []
        out = list(tree.scan(on_visit=lambda k, oids: seen.append(k)))
        assert seen == [k for k, _ in out] == list(range(10))

    def test_mutation_mid_scan_raises(self):
        tree = self._tree()
        scan = tree.scan()
        next(scan)
        tree.insert(99, oid(99))
        with pytest.raises(QueryError, match="mutated during"):
            next(scan)

    def test_remove_mid_scan_raises(self):
        tree = self._tree()
        scan = tree.scan()
        next(scan)
        tree.remove(25, oid(25))
        with pytest.raises(QueryError, match="mutated during"):
            list(scan)

    def test_bad_bounds_raise_eagerly(self):
        with pytest.raises(QueryError, match="exceeds"):
            self._tree().scan(lo=9, hi=3)


class TestBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 5, 31, 32, 63, 64, 200, 5000])
    @pytest.mark.parametrize("degree", [2, 4, 16])
    def test_matches_insert_built_tree(self, n, degree):
        loaded = BTreeIndex("T", "n", min_degree=degree)
        loaded.bulk_load((k, [oid(k)]) for k in range(n))
        grown = BTreeIndex("T", "n", min_degree=degree)
        for k in range(n):
            grown.insert(k, oid(k))
        loaded.check_invariants()
        assert len(loaded) == len(grown) == n
        assert list(loaded.items()) == list(grown.items())
        assert list(loaded.scan()) == list(grown.scan())

    def test_multi_oid_buckets(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        tree.bulk_load([(1, [oid(1), oid(2)]), (2, [oid(3)])])
        assert tree.eq(1) == {oid(1), oid(2)}
        assert len(tree) == 3

    def test_rejects_nonempty_tree(self):
        tree = BTreeIndex("T", "n")
        tree.insert(1, oid(1))
        with pytest.raises(QueryError, match="empty tree"):
            tree.bulk_load([(2, [oid(2)])])

    def test_rejects_unsorted_and_duplicate_keys(self):
        for keys in ([3, 1], [2, 2]):
            tree = BTreeIndex("T", "n")
            with pytest.raises(QueryError, match="strictly increasing"):
                tree.bulk_load((k, [oid(k)]) for k in keys)

    def test_rejects_empty_bucket(self):
        tree = BTreeIndex("T", "n")
        with pytest.raises(QueryError, match="empty"):
            tree.bulk_load([(1, [])])

    def test_loaded_tree_accepts_further_inserts(self):
        tree = BTreeIndex("T", "n", min_degree=2)
        tree.bulk_load((k, [oid(k)]) for k in range(0, 100, 2))
        for k in range(1, 100, 2):
            tree.insert(k, oid(k))
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(100))

    @given(st.sets(st.integers(-10_000, 10_000), min_size=1, max_size=400),
           st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_invariants_across_shapes(self, keys, degree):
        tree = BTreeIndex("T", "n", min_degree=degree)
        tree.bulk_load((k, [oid(i)]) for i, k in enumerate(sorted(keys)))
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(keys)
