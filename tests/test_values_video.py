"""VideoValue hierarchy: the paper's class, its encoded specializations,
and the MediaValue temporal interface over shared storage."""

import numpy as np
import pytest

from repro.avtime import ObjectTime, WorldTime
from repro.codecs import JPEGCodec, MPEGCodec, RawCodec
from repro.errors import DataModelError, MediaTypeError, TemporalError
from repro.values import (
    CCIRVideoValue,
    JPEGVideoValue,
    LVVideoValue,
    RawVideoValue,
    VideoValue,
)


def frames(n=6, h=16, w=16):
    return (np.arange(n * h * w, dtype=np.uint32).reshape(n, h, w) % 256).astype(np.uint8)


class TestRawVideoValue:
    def test_paper_attributes(self):
        value = RawVideoValue(frames(), rate=30.0)
        assert (value.width, value.height, value.depth) == (16, 16, 8)
        assert value.num_frames == 6
        assert value.media_type.name == "video/raw"

    def test_color_frames(self):
        rgb = np.zeros((4, 8, 8, 3), dtype=np.uint8)
        value = RawVideoValue(rgb)
        assert value.depth == 24
        assert value.frame(0).shape == (8, 8, 3)

    def test_bad_shapes_rejected(self):
        with pytest.raises(DataModelError):
            RawVideoValue(np.zeros((4, 8), dtype=np.uint8))
        with pytest.raises(DataModelError):
            RawVideoValue(np.zeros((0, 8, 8), dtype=np.uint8))
        with pytest.raises(DataModelError):
            RawVideoValue(np.zeros((4, 8, 8, 2), dtype=np.uint8))

    def test_duration_from_rate(self):
        value = RawVideoValue(frames(30), rate=30.0)
        assert value.duration == WorldTime(1.0)
        assert value.rate == 30.0

    def test_element_access_by_world_time(self):
        value = RawVideoValue(frames(6), rate=10.0)
        assert np.array_equal(value.element(WorldTime(0.35)),
                              value.frame(3))
        with pytest.raises(TemporalError):
            value.element(WorldTime(0.6))  # past the end
        with pytest.raises(TemporalError):
            value.element(WorldTime(-0.1))

    def test_object_world_conversion_bounds(self):
        value = RawVideoValue(frames(6), rate=10.0)
        assert value.object_to_world(ObjectTime(3)) == WorldTime(0.3)
        with pytest.raises(TemporalError):
            value.object_to_world(ObjectTime(6))

    def test_data_rate(self):
        value = RawVideoValue(frames(30), rate=30.0)
        # 16*16*8 bits * 30 frames / 1 second
        assert value.data_rate_bps() == pytest.approx(16 * 16 * 8 * 30)

    def test_scale_shares_storage(self):
        value = RawVideoValue(frames(6), rate=30.0)
        slow = value.scale(2.0)
        assert slow.duration == value.duration * 2
        assert slow.frames_array is value.frames_array  # shared, not copied
        assert isinstance(slow, RawVideoValue)

    def test_translate_moves_interval(self):
        value = RawVideoValue(frames(6), rate=30.0)
        moved = value.translate(WorldTime(5.0))
        assert moved.start == WorldTime(5.0)
        assert moved.interval.end == WorldTime(5.0) + value.duration
        assert np.array_equal(moved.frame(2), value.frame(2))

    def test_len_protocol(self):
        assert len(RawVideoValue(frames(6))) == 6


class TestSpecializations:
    def test_ccir_type(self):
        value = CCIRVideoValue(frames(), rate=30.0)
        assert value.media_type.name == "video/ccir601"
        assert isinstance(value, VideoValue)

    def test_lv_is_analog(self):
        value = LVVideoValue(frames(), rate=30.0)
        assert value.media_type.analog
        assert value.media_type.name == "video/lv-analog"

    def test_encoded_value_decodes_frames(self):
        codec = JPEGCodec(90)
        raw = RawVideoValue(frames(), rate=30.0)
        encoded = codec.encode_value(raw)
        assert isinstance(encoded, JPEGVideoValue)
        assert encoded.media_type.name == "video/jpeg"
        assert encoded.num_frames == raw.num_frames
        decoded = encoded.frame(3)
        assert decoded.shape == (16, 16)
        assert np.abs(decoded.astype(int) - raw.frame(3).astype(int)).mean() < 12

    def test_encoded_value_codec_mismatch_rejected(self):
        raw = RawVideoValue(frames(), rate=30.0)
        chunks = RawCodec().encode_frames([raw.frame(i) for i in range(6)])
        with pytest.raises(MediaTypeError, match="requires the 'jpeg' codec"):
            JPEGVideoValue(chunks, RawCodec(), 16, 16, 8)

    def test_compression_ratio_positive(self):
        raw = RawVideoValue(frames(), rate=30.0)
        encoded = MPEGCodec(75).encode_value(raw)
        assert encoded.compression_ratio() > 1.0
        assert encoded.data_size_bits() < raw.data_size_bits()

    def test_encoded_scale_shares_chunks(self):
        encoded = JPEGCodec(75).encode_value(RawVideoValue(frames(), rate=30.0))
        slow = encoded.scale(2.0)
        assert slow.chunks is encoded.chunks
        assert slow.codec is encoded.codec

    def test_generic_videovalue_screening(self):
        """Applications use the generic class regardless of representation."""
        raw = RawVideoValue(frames(), rate=30.0)
        encoded = JPEGCodec(75).encode_value(raw)
        for value in (raw, encoded):
            assert isinstance(value, VideoValue)
            assert value.frame(0).shape == (16, 16)
            assert value.geometry == (16, 16, 8)


class TestElementValue:
    def test_element_value_is_image(self):
        from repro.avtime import WorldTime
        from repro.values import ImageValue
        value = RawVideoValue(frames(6), rate=30.0)
        still = value.element_value(WorldTime(0.1))  # frame 3
        assert isinstance(still, ImageValue)
        assert np.array_equal(still.pixels, value.frame(3))
        assert still.duration.seconds == pytest.approx(1 / 30.0)

    def test_element_value_from_encoded(self):
        from repro.avtime import WorldTime
        from repro.values import ImageValue
        encoded = JPEGCodec(90).encode_value(RawVideoValue(frames(6), rate=30.0))
        still = encoded.element_value(WorldTime(0.0))
        assert isinstance(still, ImageValue)
        assert still.pixels.shape == (16, 16)
