"""Golden-output tests: vectorized codec kernels are bit-identical.

``tests/golden/codec_golden.json`` holds SHA-256 hashes of encoded
chunk streams and decoded frame bytes produced by the pre-vectorization
(per-run / per-plane loop) implementations of the RLE, DCT and
interframe codecs.  The vectorized kernels must reproduce those bytes
exactly — lossy codecs included, since quantization happens before
entropy coding and both are deterministic.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.codecs.dct import JPEGCodec
from repro.codecs.interframe import MPEGCodec
from repro.codecs.rle import RLECodec, rle_decode_bytes, rle_encode_bytes
from repro.synth import flat_video, moving_scene, noise_video

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "codec_golden.json").read_text()
)


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _video(name):
    return {
        "moving": lambda: moving_scene(24, 72, 56),
        "moving_color": lambda: moving_scene(12, 48, 40, color=True),
        "noise": lambda: noise_video(10, 64, 48),
        "flat": lambda: flat_video(8, 64, 48),
    }[name]()


def _codec(name):
    return {
        "rle": lambda: RLECodec(),
        "jpeg": lambda: JPEGCodec(quality=70),
        "mpeg": lambda: MPEGCodec(quality=70, gop=5, delta_quant=3),
    }[name]()


class TestVideoCodecGolden:
    @pytest.mark.parametrize("key", sorted(k for k in GOLDEN if "/" in k
                                           and not k.startswith("rle_bytes/")))
    def test_encode_and_decode_bit_identical(self, key):
        cname, vname = key.split("/")
        video = _video(vname)
        codec = _codec(cname)
        frames = [video.frame(i) for i in range(video.num_frames)]

        chunks = codec.encode_frames(frames)
        assert _sha(b"".join(chunks)) == GOLDEN[key]["encoded"], (
            f"{key}: encoded bytes diverged from the scalar implementation"
        )
        assert sum(len(c) for c in chunks) == GOLDEN[key]["bytes"]

        decoded = b"".join(
            np.ascontiguousarray(
                codec.decode_frame_at(chunks, i, video.width, video.height,
                                      video.depth)
            ).tobytes()
            for i in range(len(frames))
        )
        assert _sha(decoded) == GOLDEN[key]["decoded"], (
            f"{key}: decoded frames diverged from the scalar implementation"
        )


class TestRLEByteStreams:
    CASES = {
        "runs": bytes([5] * 300 + [7] + [9] * 255 + [1, 2, 3]),
        "empty": b"",
        "single": b"\xff",
        "alternating": bytes(range(256)) * 3,
        "long": bytes([0]) * 100000,
    }

    @pytest.mark.parametrize("label", sorted(CASES))
    def test_pathological_inputs_bit_identical(self, label):
        data = self.CASES[label]
        encoded = rle_encode_bytes(data)
        assert rle_decode_bytes(encoded) == data
        golden = GOLDEN[f"rle_bytes/{label}"]
        assert len(encoded) == golden["len"]
        assert _sha(encoded) == golden["encoded"]

    def test_run_splitting_layout(self):
        # One run of 700 zeros: (255, 0) (255, 0) (190, 0) — full pairs
        # first, remainder last, remainder in [1, 255].
        encoded = rle_encode_bytes(bytes(700))
        assert encoded == bytes([255, 0, 255, 0, 190, 0])
        # A run of exactly 255 stays a single pair; 256 splits 255 + 1.
        assert rle_encode_bytes(bytes([3]) * 255) == bytes([255, 3])
        assert rle_encode_bytes(bytes([3]) * 256) == bytes([255, 3, 1, 3])
