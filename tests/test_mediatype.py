"""Media data types: registry, wildcard acceptance, analog isolation."""

import pytest

from repro.errors import MediaTypeError
from repro.values.mediatype import (
    MediaKind,
    MediaType,
    MediaTypeRegistry,
    STANDARD_TYPES,
    standard_type,
)


class TestRegistry:
    def test_standard_types_present(self):
        for name in ("video/raw", "video/jpeg", "video/mpeg", "video/dvi",
                     "video/ccir601", "video/lv-analog", "audio/pcm",
                     "audio/cd", "audio/mulaw", "audio/adpcm",
                     "text/stream", "image/raster", "midi/events",
                     "geometry/pose"):
            assert name in STANDARD_TYPES

    def test_unknown_type_raises(self):
        with pytest.raises(MediaTypeError, match="unknown media type"):
            standard_type("video/quicktime")

    def test_duplicate_registration_rejected(self):
        registry = MediaTypeRegistry()
        mt = MediaType("x/y", MediaKind.VIDEO, "y")
        registry.register(mt)
        with pytest.raises(MediaTypeError, match="already registered"):
            registry.register(MediaType("x/y", MediaKind.VIDEO, "y"))

    def test_iteration_and_len(self):
        assert len(STANDARD_TYPES) >= 14
        assert all(isinstance(t, MediaType) for t in STANDARD_TYPES)


class TestCompatibility:
    def test_exact_match_accepts(self):
        jpeg = standard_type("video/jpeg")
        assert jpeg.accepts(jpeg)

    def test_wildcard_accepts_same_kind(self):
        any_video = standard_type("video/*")
        assert any_video.accepts(standard_type("video/jpeg"))
        assert any_video.accepts(standard_type("video/raw"))

    def test_wildcard_rejects_other_kind(self):
        any_video = standard_type("video/*")
        assert not any_video.accepts(standard_type("audio/pcm"))

    def test_concrete_rejects_different_encoding(self):
        assert not standard_type("video/jpeg").accepts(standard_type("video/mpeg"))
        assert not standard_type("video/raw").accepts(standard_type("video/jpeg"))

    def test_analog_never_matches_wildcard(self):
        # Analog values must pass through a digitizer, not a generic port.
        any_video = standard_type("video/*")
        assert not any_video.accepts(standard_type("video/lv-analog"))

    def test_analog_exact_match_still_works(self):
        lv = standard_type("video/lv-analog")
        assert lv.accepts(lv)

    def test_compressed_flags(self):
        assert standard_type("video/jpeg").compressed
        assert standard_type("video/mpeg").compressed
        assert not standard_type("video/raw").compressed
        assert not standard_type("audio/cd").compressed

    def test_require_kind(self):
        standard_type("video/raw").require_kind(MediaKind.VIDEO)
        with pytest.raises(MediaTypeError):
            standard_type("video/raw").require_kind(MediaKind.AUDIO)

    def test_native_rates(self):
        assert standard_type("audio/cd").native_rate == 44100.0
        assert standard_type("video/mpeg").native_rate is None  # spans a range
