"""Whole-system stress: many sessions, clips and devices at once, with
resource-conservation invariants checked at the end.

A randomized (but seeded) fleet of client sessions opens against one AV
database system, each streaming a random stored clip — some raw, some
compressed with database-side decode, some stopped mid-stream.  At the
end every admitted stream must have presented what it should, and every
channel and device must be back at full capacity once sessions close.
"""

import random

import pytest

from repro.activities import Location
from repro.activities.library import VideoDecoder
from repro.avdb import AVDatabaseSystem
from repro.codecs import JPEGCodec, MPEGCodec
from repro.db import AttributeSpec, ClassDef, Q
from repro.errors import AdmissionError
from repro.sim import Delay
from repro.storage import MagneticDisk
from repro.synth import moving_scene
from repro.values import VideoValue

CLIPS = 6
SESSIONS = 8
SEED = 20260705


def build_system(rng):
    system = AVDatabaseSystem()
    system.add_storage(MagneticDisk(system.simulator, "disk0",
                                    bandwidth_bps=200_000_000))
    system.add_storage(MagneticDisk(system.simulator, "disk1",
                                    bandwidth_bps=200_000_000))
    system.db.define_class(ClassDef("Clip", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("video", VideoValue),
    ]))
    for i in range(CLIPS):
        frames = rng.choice((8, 15, 24))
        video = moving_scene(frames, 48, 36, seed=i)
        if i % 3 == 1:
            video = JPEGCodec(80).encode_value(video)
        elif i % 3 == 2:
            video = MPEGCodec(80, gop=5).encode_value(video)
        system.store_value(video, f"disk{i % 2}")
        system.db.insert("Clip", title=f"clip-{i}", video=video)
    return system


class TestFleet:
    def test_many_sessions_conserve_resources(self):
        rng = random.Random(SEED)
        system = build_system(rng)
        sessions = []
        windows = []
        expected = []
        for index in range(SESSIONS):
            session = system.open_session(f"s{index}",
                                          channel_bps=150_000_000)
            title = f"clip-{rng.randrange(CLIPS)}"
            ref = session.select_one("Clip", Q.eq("title", title))
            video = session.fetch(ref).video
            deliver = rng.choice(("stored", "raw"))
            try:
                source = session.new_db_source((ref, "video"), deliver=deliver)
            except AdmissionError:
                session.close()
                continue
            window = session.new_video_window(name=f"s{index}.win")
            if deliver == "stored" and video.media_type.compressed:
                decoder = session.new_activity(VideoDecoder(
                    system.simulator, video.codec, video.width, video.height,
                    video.depth, name=f"s{index}.dec",
                    location=Location.APPLICATION,
                ))
                session.connect(source, decoder.port("video_in")).start()
                session.connect(decoder.port("video_out"), window).start()
            else:
                session.connect(source, window).start()
            sessions.append(session)
            windows.append(window)
            expected.append(video.num_frames)
        assert len(sessions) >= SESSIONS - 2  # most were admitted

        # Stop one session mid-stream; let the rest run out.
        victim = rng.randrange(len(sessions))

        def assassin():
            yield Delay(0.12)
            sessions[victim].close()

        system.simulator.spawn(assassin())
        system.run()

        for i, (window, count) in enumerate(zip(windows, expected)):
            if i == victim:
                assert window.elements_consumed <= count
            else:
                assert window.elements_consumed == count, f"session {i} lost frames"

        # Resource conservation after closing everything.
        for session in sessions:
            session.close()
        for session in sessions:
            # close() releases shared-device leases AND the channel
            # bandwidth the session's streams reserved.
            assert session.channel.reserved_bps == 0
            assert session.channel.available_bps == session.channel.capacity_bps
        # Finished sources released their device reservations too.
        for name in ("disk0", "disk1"):
            device = system.placement.device(name)
            assert device.reserved_bps == pytest.approx(0.0)

    def test_deterministic_replay(self):
        """The same seed reproduces the same fleet byte-for-byte."""

        def run():
            rng = random.Random(SEED)
            system = build_system(rng)
            session = system.open_session("replay", channel_bps=100_000_000)
            ref = session.select_one("Clip", Q.eq("title", "clip-2"))
            video = session.fetch(ref).video
            source = session.new_db_source((ref, "video"), deliver="raw")
            window = session.new_video_window(name="w")
            session.connect(source, window).start()
            end = session.run()
            digest = sum(int(f.sum()) for f in window.presented)
            return end.seconds, len(window.presented), digest

        assert run() == run()
