"""Temporal coordinate systems: WorldTime, ObjectTime, Timecode, Interval,
TimeMapping — the MediaValue clock substrate of paper §4.1."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.avtime import (
    AllenRelation,
    Interval,
    ObjectTime,
    Timecode,
    TimeMapping,
    WorldTime,
)
from repro.errors import TemporalError


class TestWorldTime:
    def test_arithmetic(self):
        assert (WorldTime(1.5) + WorldTime(2.5)).seconds == 4.0
        assert (WorldTime(5.0) - WorldTime(2.0)).seconds == 3.0
        assert (WorldTime(2.0) * 3).seconds == 6.0
        assert (3 * WorldTime(2.0)).seconds == 6.0
        assert (-WorldTime(2.0)).seconds == -2.0
        assert abs(WorldTime(-2.0)).seconds == 2.0

    def test_division_by_number_and_time(self):
        assert (WorldTime(6.0) / 3).seconds == 2.0
        assert WorldTime(6.0) / WorldTime(2.0) == 3.0

    def test_division_by_zero_rejected(self):
        with pytest.raises(TemporalError):
            WorldTime(1.0) / 0
        with pytest.raises(TemporalError):
            WorldTime(1.0) / WorldTime(0.0)

    def test_ordering(self):
        assert WorldTime(1.0) < WorldTime(2.0)
        assert WorldTime(2.0) >= WorldTime(2.0)
        assert WorldTime(2.0) == WorldTime(2.0)

    def test_non_finite_rejected(self):
        with pytest.raises(TemporalError):
            WorldTime(float("nan"))
        with pytest.raises(TemporalError):
            WorldTime(math.inf)

    def test_ms_conversion(self):
        assert WorldTime.from_ms(1500).seconds == 1.5
        assert WorldTime(1.5).ms == 1500.0


class TestObjectTime:
    def test_integer_only(self):
        with pytest.raises(TemporalError):
            ObjectTime(1.5)  # type: ignore[arg-type]

    def test_arithmetic_and_order(self):
        assert (ObjectTime(3) + ObjectTime(4)).index == 7
        assert (ObjectTime(4) - ObjectTime(1)).index == 3
        assert ObjectTime(1) < ObjectTime(2)
        assert int(ObjectTime(9)) == 9


class TestTimecode:
    def test_parse_and_str_roundtrip(self):
        tc = Timecode.parse("01:02:03:15")
        assert tc.fields == (1, 2, 3, 15)
        assert str(tc) == "01:02:03:15"

    def test_parse_rejects_out_of_range_fields(self):
        with pytest.raises(TemporalError):
            Timecode.parse("00:61:00:00")
        with pytest.raises(TemporalError):
            Timecode.parse("00:00:00:30")  # frame 30 invalid at 30 fps
        with pytest.raises(TemporalError):
            Timecode.parse("bogus")

    def test_world_conversion(self):
        tc = Timecode(90, rate=30)  # 3 seconds
        assert tc.to_world() == WorldTime(3.0)
        assert Timecode.from_world(WorldTime(3.0)).frames == 90

    def test_negative_world_time_rejected(self):
        with pytest.raises(TemporalError):
            Timecode.from_world(WorldTime(-1.0))

    def test_arithmetic_same_rate_only(self):
        a, b = Timecode(40), Timecode(20)
        assert (a + b).frames == 60
        assert (a - b).frames == 20
        with pytest.raises(TemporalError):
            a + Timecode(10, rate=25)
        with pytest.raises(TemporalError):
            b - a  # would be negative

    @given(st.integers(0, 10**6))
    def test_fields_roundtrip(self, frames):
        tc = Timecode(frames)
        assert Timecode.parse(str(tc)).frames == frames


class TestInterval:
    def test_between_and_end(self):
        iv = Interval.between(WorldTime(1.0), WorldTime(3.0))
        assert iv.duration == WorldTime(2.0)
        assert iv.end == WorldTime(3.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(TemporalError):
            Interval(WorldTime(0.0), WorldTime(-1.0))
        with pytest.raises(TemporalError):
            Interval.between(WorldTime(3.0), WorldTime(1.0))

    def test_half_open_containment(self):
        iv = Interval(WorldTime(1.0), WorldTime(2.0))
        assert iv.contains_time(WorldTime(1.0))
        assert iv.contains_time(WorldTime(2.9))
        assert not iv.contains_time(WorldTime(3.0))  # end excluded
        assert not iv.contains_time(WorldTime(0.5))

    def test_intersection_and_union(self):
        a = Interval(WorldTime(0.0), WorldTime(2.0))
        b = Interval(WorldTime(1.0), WorldTime(2.0))
        inter = a.intersection(b)
        assert inter == Interval.between(WorldTime(1.0), WorldTime(2.0))
        assert a.union_span(b) == Interval.between(WorldTime(0.0), WorldTime(3.0))
        c = Interval(WorldTime(5.0), WorldTime(1.0))
        assert a.intersection(c) is None

    def test_meets_has_empty_intersection(self):
        a = Interval(WorldTime(0.0), WorldTime(1.0))
        b = Interval(WorldTime(1.0), WorldTime(1.0))
        assert a.intersection(b) is None

    @pytest.mark.parametrize("a,b,expected", [
        ((0, 1), (2, 1), AllenRelation.BEFORE),
        ((2, 1), (0, 1), AllenRelation.AFTER),
        ((0, 1), (1, 1), AllenRelation.MEETS),
        ((1, 1), (0, 1), AllenRelation.MET_BY),
        ((0, 2), (1, 2), AllenRelation.OVERLAPS),
        ((1, 2), (0, 2), AllenRelation.OVERLAPPED_BY),
        ((0, 1), (0, 2), AllenRelation.STARTS),
        ((0, 2), (0, 1), AllenRelation.STARTED_BY),
        ((1, 1), (0, 3), AllenRelation.DURING),
        ((0, 3), (1, 1), AllenRelation.CONTAINS),
        ((1, 1), (0, 2), AllenRelation.FINISHES),
        ((0, 2), (1, 1), AllenRelation.FINISHED_BY),
        ((0, 2), (0, 2), AllenRelation.EQUALS),
    ])
    def test_all_thirteen_relations(self, a, b, expected):
        ia = Interval(WorldTime(float(a[0])), WorldTime(float(a[1])))
        ib = Interval(WorldTime(float(b[0])), WorldTime(float(b[1])))
        assert ia.relation_to(ib) is expected

    @given(
        st.floats(0, 100, allow_nan=False), st.floats(0.1, 50, allow_nan=False),
        st.floats(0, 100, allow_nan=False), st.floats(0.1, 50, allow_nan=False),
    )
    def test_relation_inverse_symmetry(self, s1, d1, s2, d2):
        a = Interval(WorldTime(s1), WorldTime(d1))
        b = Interval(WorldTime(s2), WorldTime(d2))
        assert a.relation_to(b).inverse is b.relation_to(a)

    def test_shift_and_scale(self):
        iv = Interval(WorldTime(1.0), WorldTime(2.0))
        assert iv.shifted(WorldTime(0.5)).start == WorldTime(1.5)
        assert iv.scaled(2.0).duration == WorldTime(4.0)
        with pytest.raises(TemporalError):
            iv.scaled(-1.0)


class TestTimeMapping:
    def test_object_world_roundtrip(self):
        mapping = TimeMapping(rate=30.0)
        assert mapping.object_to_world(ObjectTime(30)) == WorldTime(1.0)
        assert mapping.world_to_object(WorldTime(1.0)).index == 30

    def test_start_offset(self):
        mapping = TimeMapping(rate=10.0, start=WorldTime(5.0))
        assert mapping.object_to_world(ObjectTime(0)) == WorldTime(5.0)
        assert mapping.world_to_object(WorldTime(5.5)).index == 5

    def test_scale_slows_presentation(self):
        mapping = TimeMapping(rate=30.0).scaled(2.0)  # half speed
        assert mapping.effective_rate == 15.0
        assert mapping.object_to_world(ObjectTime(30)) == WorldTime(2.0)

    def test_translate(self):
        mapping = TimeMapping(rate=30.0).translated(WorldTime(1.0))
        assert mapping.start == WorldTime(1.0)
        assert mapping.object_to_world(ObjectTime(0)) == WorldTime(1.0)

    def test_duration_and_period(self):
        mapping = TimeMapping(rate=25.0)
        assert mapping.duration_of(50) == WorldTime(2.0)
        assert mapping.element_period() == WorldTime(0.04)
        with pytest.raises(TemporalError):
            mapping.duration_of(-1)

    def test_invalid_parameters(self):
        with pytest.raises(TemporalError):
            TimeMapping(rate=0.0)
        with pytest.raises(TemporalError):
            TimeMapping(rate=30.0, scale=0.0)
        with pytest.raises(TemporalError):
            TimeMapping(rate=30.0).scaled(0.0)

    @given(st.integers(0, 100000), st.floats(1.0, 120.0),
           st.floats(0.1, 10.0))
    def test_roundtrip_property(self, index, rate, scale):
        mapping = TimeMapping(rate=rate, scale=scale)
        when = mapping.object_to_world(ObjectTime(index))
        # Mapping back lands on the same element (floor semantics).
        recovered = mapping.world_to_object(when).index
        assert recovered in (index - 1, index, index + 1)
