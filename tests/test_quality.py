"""Quality factors and representation negotiation (paper §3.3, §4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import QualityError
from repro.quality import (
    AUDIO_QUALITIES,
    Negotiator,
    VideoQuality,
    parse_quality,
    scale_video_quality,
)


class TestVideoQuality:
    def test_paper_syntax_parses(self):
        """The paper's literal examples: '640 x 480 x 8 @ 30', '320x240x8@30'."""
        q1 = parse_quality("640 x 480 x 8 @ 30")
        assert (q1.width, q1.height, q1.depth, q1.rate) == (640, 480, 8, 30.0)
        q2 = parse_quality("320x240x8@30")
        assert (q2.width, q2.height) == (320, 240)

    def test_malformed_rejected(self):
        for bad in ("640x480@30", "640x480x8", "x@x", "640x480x9@30"):
            with pytest.raises(QualityError):
                parse_quality(bad)

    def test_str_roundtrip(self):
        q = VideoQuality(640, 480, 8, 30.0)
        assert VideoQuality.parse(str(q)) == q

    def test_raw_bps(self):
        q = VideoQuality(640, 480, 8, 30.0)
        assert q.raw_bps == 640 * 480 * 8 * 30

    def test_dominates_partial_order(self):
        big = VideoQuality(640, 480, 8, 30.0)
        small = VideoQuality(320, 240, 8, 15.0)
        assert big.dominates(small)
        assert not small.dominates(big)
        # Incomparable: more pixels but lower rate.
        odd = VideoQuality(1280, 960, 8, 5.0)
        assert not big.dominates(odd)
        assert not odd.dominates(big)

    def test_total_order_by_raw_rate(self):
        qualities = [VideoQuality(640, 480, 8, 30.0), VideoQuality(320, 240, 8, 30.0),
                     VideoQuality(160, 120, 8, 15.0)]
        assert sorted(qualities)[0].width == 160


class TestAudioQuality:
    def test_named_levels(self):
        """The paper's voice / FM / CD quality names."""
        assert parse_quality("voice").sample_rate == 8000.0
        assert parse_quality("FM-quality").sample_rate == 22050.0
        cd = parse_quality("CD")
        assert cd.sample_rate == 44100.0 and cd.channels == 2

    def test_ordering(self):
        assert AUDIO_QUALITIES["voice"] < AUDIO_QUALITIES["fm"] < AUDIO_QUALITIES["cd"]

    def test_dominates(self):
        assert AUDIO_QUALITIES["cd"].dominates(AUDIO_QUALITIES["voice"])
        assert not AUDIO_QUALITIES["voice"].dominates(AUDIO_QUALITIES["cd"])

    def test_unknown_name_rejected(self):
        with pytest.raises(QualityError):
            parse_quality("studio")


class TestNegotiator:
    def test_video_plan_prefers_compression(self):
        plan = Negotiator().plan(VideoQuality(320, 240, 8, 30.0))
        assert plan.representation.codec_name == "mpeg"
        assert plan.storage_bps < VideoQuality(320, 240, 8, 30.0).raw_bps

    def test_video_plan_raw_when_preferred_and_budget_allows(self):
        quality = VideoQuality(64, 48, 8, 10.0)
        plan = Negotiator(prefer_compressed=False).plan(quality)
        assert plan.representation.codec_name == "raw"
        assert plan.decode_cost == 1.0

    def test_budget_forces_compression(self):
        quality = VideoQuality(320, 240, 8, 30.0)
        raw_bps = quality.raw_bps
        plan = Negotiator(prefer_compressed=False).plan(
            quality, bandwidth_budget_bps=raw_bps / 3
        )
        assert plan.representation.codec_name != "raw"
        assert plan.bandwidth_bps <= raw_bps / 3

    def test_impossible_budget_fails(self):
        with pytest.raises(QualityError, match="no video representation"):
            Negotiator().plan(VideoQuality(640, 480, 24, 30.0),
                              bandwidth_budget_bps=100.0)

    def test_audio_plans(self):
        voice = Negotiator().plan(AUDIO_QUALITIES["voice"])
        assert voice.representation.codec_name == "mulaw"
        cd = Negotiator().plan(AUDIO_QUALITIES["cd"])
        assert cd.representation.media_type_name == "audio/cd"

    def test_audio_budget_enforced(self):
        with pytest.raises(QualityError):
            Negotiator().plan(AUDIO_QUALITIES["cd"], bandwidth_budget_bps=1000.0)

    def test_plan_params_carry_geometry(self):
        plan = Negotiator().plan(VideoQuality(320, 240, 8, 30.0))
        params = plan.representation.params_dict()
        assert params["width"] == 320 and params["rate"] == 30.0


class TestScalableVideo:
    def test_downscale_by_frame_dropping_and_subsampling(self):
        stored = VideoQuality(640, 480, 8, 30.0)
        requested = VideoQuality(320, 240, 8, 15.0)
        plan = scale_video_quality(stored, requested)
        assert plan.frame_keep_every == 2
        assert plan.spatial_divisor == 2
        assert plan.delivered.width == 320
        assert plan.delivered.rate == 15.0

    def test_requesting_higher_serves_stored(self):
        """Upscaling 'does not add information': stored is delivered as-is."""
        stored = VideoQuality(320, 240, 8, 15.0)
        plan = scale_video_quality(stored, VideoQuality(640, 480, 8, 30.0))
        assert plan.frame_keep_every == 1
        assert plan.spatial_divisor == 1
        assert plan.delivered == stored

    def test_delivered_never_exceeds_requested_rate_much(self):
        stored = VideoQuality(640, 480, 8, 30.0)
        plan = scale_video_quality(stored, VideoQuality(640, 480, 8, 10.0))
        assert plan.frame_keep_every == 3
        assert plan.delivered.rate == pytest.approx(10.0)

    @given(st.sampled_from([15.0, 30.0, 60.0]), st.sampled_from([1, 2, 4]),
           st.sampled_from([160, 320, 640]))
    def test_scaling_is_data_dropping_only(self, rate, divisor, width):
        """Delivered quality never exceeds stored in any dimension."""
        stored = VideoQuality(width, width * 3 // 4, 8, rate)
        requested = VideoQuality(width // divisor, (width * 3 // 4) // divisor,
                                 8, rate / divisor)
        plan = scale_video_quality(stored, requested)
        assert stored.dominates(plan.delivered)
