"""Query engine: predicates, index plans, content-based retrieval."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import AttributeSpec, ClassDef, Database, Q
from repro.errors import QueryError, SchemaError


@pytest.fixture
def db():
    database = Database()
    database.define_class(ClassDef("Newscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("year", int, indexed=True),
        AttributeSpec("keywords", list, keyword_indexed=True),
        AttributeSpec("summary", str),
        AttributeSpec("rating", float),
    ]))
    database.insert("Newscast", title="60 Minutes", year=1992,
                    keywords=["politics", "interview"],
                    summary="A political interview special", rating=4.5)
    database.insert("Newscast", title="Evening News", year=1992,
                    keywords=["news", "daily"],
                    summary="Daily headlines", rating=3.0)
    database.insert("Newscast", title="Morning Show", year=1993,
                    keywords=["news", "weather"],
                    summary="Weather and headlines", rating=2.5)
    return database


def titles(db, oids):
    return sorted(db.get(o).title for o in oids)


class TestPredicates:
    def test_eq_and_paper_query(self, db):
        """select SimpleNewscast where (title = '60 Minutes' and ...)."""
        result = db.select("Newscast",
                           Q.eq("title", "60 Minutes") & Q.eq("year", 1992))
        assert titles(db, result) == ["60 Minutes"]

    def test_comparisons(self, db):
        assert len(db.select("Newscast", Q.gt("year", 1992))) == 1
        assert len(db.select("Newscast", Q.ge("year", 1992))) == 3
        assert len(db.select("Newscast", Q.lt("rating", 3.0))) == 1
        assert len(db.select("Newscast", Q.ne("title", "Morning Show"))) == 2

    def test_between(self, db):
        assert len(db.select("Newscast", Q.between("rating", 2.5, 3.5))) == 2
        with pytest.raises(QueryError):
            Q.between("rating", 5, 1)

    def test_boolean_combinators(self, db):
        result = db.select(
            "Newscast",
            (Q.eq("year", 1993) | Q.gt("rating", 4.0)) & ~Q.like("title", "morning"),
        )
        assert titles(db, result) == ["60 Minutes"]

    def test_contains_keywords(self, db):
        """Content-based retrieval on the keywords attribute."""
        assert len(db.select("Newscast", Q.contains("keywords", "news"))) == 2
        both = db.select("Newscast", Q.contains("keywords", "news", "weather"))
        assert titles(db, both) == ["Morning Show"]
        assert db.select("Newscast", Q.contains("keywords", "sports")) == []

    def test_contains_on_text_attribute(self, db):
        result = db.select("Newscast", Q.contains("summary", "headlines"))
        assert len(result) == 2

    def test_like_substring(self, db):
        assert titles(db, db.select("Newscast", Q.like("title", "news"))) == \
            ["Evening News"]

    def test_is_null(self, db):
        db.insert("Newscast", title="Untitled")
        assert len(db.select("Newscast", Q.is_null("year"))) == 1

    def test_true_selects_all(self, db):
        assert len(db.select("Newscast", Q.true())) == 3
        assert len(db.select("Newscast")) == 3

    def test_comparison_with_none_attribute_is_false(self, db):
        db.insert("Newscast", title="No Year")
        assert all(db.get(o).year is not None
                   for o in db.select("Newscast", Q.gt("year", 0)))


class TestIndexUsage:
    def test_indexed_eq_uses_index(self, db):
        before = db.stats["index_scans"]
        db.select("Newscast", Q.eq("title", "60 Minutes"))
        assert db.stats["index_scans"] == before + 1

    def test_unindexed_attribute_scans(self, db):
        before = db.stats["full_scans"]
        db.select("Newscast", Q.eq("summary", "Daily headlines"))
        assert db.stats["full_scans"] == before + 1

    def test_and_intersects_plans(self, db):
        result = db.select("Newscast",
                           Q.eq("year", 1992) & Q.contains("keywords", "news"))
        assert titles(db, result) == ["Evening News"]

    def test_or_needs_both_plans(self, db):
        before = db.stats["full_scans"]
        # 'summary' has no index: OR falls back to a scan.
        db.select("Newscast", Q.eq("title", "x") | Q.eq("summary", "y"))
        assert db.stats["full_scans"] == before + 1

    def test_range_uses_ordered_index(self, db):
        before = db.stats["index_scans"]
        result = db.select("Newscast", Q.between("year", 1992, 1992))
        assert len(result) == 2
        assert db.stats["index_scans"] == before + 1

    def test_index_and_scan_agree(self, db):
        """The index plan must return exactly what a scan returns."""
        for predicate in (Q.eq("year", 1992), Q.ge("year", 1993),
                          Q.contains("keywords", "news"),
                          Q.between("rating", 2.0, 4.0)):
            via_index = db.select("Newscast", predicate)
            db_scan = [
                oid for oid in db.select("Newscast")
                if predicate.matches(db.get(oid))
            ]
            assert via_index == db_scan

    def test_index_maintained_on_update_and_delete(self, db):
        oid = db.select("Newscast", Q.eq("title", "60 Minutes"))[0]
        db.update(oid, title="Sixty Minutes")
        assert db.select("Newscast", Q.eq("title", "60 Minutes")) == []
        assert db.select("Newscast", Q.eq("title", "Sixty Minutes")) == [oid]
        db.delete(oid)
        assert db.select("Newscast", Q.eq("title", "Sixty Minutes")) == []


class TestSelectOne:
    def test_exactly_one(self, db):
        oid = db.select_one("Newscast", Q.eq("title", "60 Minutes"))
        assert db.get(oid).year == 1992

    def test_zero_or_many_rejected(self, db):
        with pytest.raises(SchemaError, match="expected exactly 1"):
            db.select_one("Newscast", Q.eq("title", "ghost"))
        with pytest.raises(SchemaError, match="expected exactly 1"):
            db.select_one("Newscast", Q.eq("year", 1992))

    def test_unknown_class(self, db):
        with pytest.raises(SchemaError, match="unknown class"):
            db.select("Ghost")


class TestQueryProperties:
    @given(st.lists(st.integers(1980, 2000), min_size=1, max_size=30),
           st.integers(1980, 2000))
    @settings(max_examples=25)
    def test_range_query_equivalent_to_filter(self, years, pivot):
        db = Database()
        db.define_class(ClassDef("Item", attributes=[
            AttributeSpec("year", int, indexed=True),
        ]))
        for year in years:
            db.insert("Item", year=year)
        result = db.select("Item", Q.le("year", pivot))
        expected = sum(1 for y in years if y <= pivot)
        assert len(result) == expected
