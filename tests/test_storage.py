"""Storage substrate: extents, device models, placement, the copy fallback."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    AdmissionError,
    FaultError,
    OutOfSpaceError,
    PlacementError,
    StorageError,
)
from repro.avtime import WorldTime
from repro.storage import (
    ExtentAllocator,
    JukeboxDevice,
    MagneticDisk,
    PlacementManager,
    WritableCD,
)
from repro.synth import moving_scene


class TestExtentAllocator:
    def test_first_fit_and_exhaustion(self):
        allocator = ExtentAllocator("d", 100)
        a = allocator.allocate(60)
        b = allocator.allocate(40)
        assert a.offset == 0 and b.offset == 60
        with pytest.raises(OutOfSpaceError):
            allocator.allocate(1)

    def test_free_coalesces_neighbours(self):
        allocator = ExtentAllocator("d", 100)
        a = allocator.allocate(30)
        b = allocator.allocate(30)
        c = allocator.allocate(30)
        allocator.free(a)
        allocator.free(c)
        assert allocator.largest_free_extent == 40  # tail gap 90..100 + c
        allocator.free(b)
        assert allocator.largest_free_extent == 100  # fully coalesced

    def test_fragmentation_blocks_large_allocations(self):
        allocator = ExtentAllocator("d", 100)
        extents = [allocator.allocate(10) for _ in range(10)]
        for extent in extents[1::2]:  # free the odd slots afterwards
            allocator.free(extent)
        # 50 bytes free but fragmented into alternating 10-byte holes.
        assert allocator.free_bytes == 50
        assert allocator.largest_free_extent == 10
        with pytest.raises(OutOfSpaceError):
            allocator.allocate(20)

    def test_double_free_rejected(self):
        allocator = ExtentAllocator("d", 100)
        extent = allocator.allocate(10)
        allocator.free(extent)
        with pytest.raises(StorageError, match="not allocated"):
            allocator.free(extent)

    def test_invalid_sizes(self):
        with pytest.raises(StorageError):
            ExtentAllocator("d", 0)
        allocator = ExtentAllocator("d", 100)
        with pytest.raises(StorageError):
            allocator.allocate(0)

    @given(st.lists(st.integers(1, 30), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_alloc_free_conservation(self, sizes):
        """Allocating then freeing everything restores full capacity."""
        allocator = ExtentAllocator("d", 1000)
        extents = []
        for size in sizes:
            try:
                extents.append(allocator.allocate(size))
            except OutOfSpaceError:
                break
        assert allocator.used_bytes == sum(e.length for e in extents)
        for extent in extents:
            allocator.free(extent)
        assert allocator.free_bytes == 1000
        assert allocator.largest_free_extent == 1000

    @given(st.lists(st.integers(1, 50), min_size=2, max_size=20))
    @settings(max_examples=50)
    def test_no_overlapping_extents(self, sizes):
        allocator = ExtentAllocator("d", 2000)
        extents = []
        for size in sizes:
            try:
                extents.append(allocator.allocate(size))
            except OutOfSpaceError:
                break
        spans = sorted((e.offset, e.end) for e in extents)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b


class TestDevices:
    def test_streaming_admission(self, sim):
        disk = MagneticDisk(sim, bandwidth_bps=10_000_000)
        r1 = disk.reserve(6_000_000)
        assert disk.available_bps == pytest.approx(4_000_000)
        with pytest.raises(AdmissionError):
            disk.reserve(5_000_000)
        r1.release()
        disk.reserve(5_000_000)  # now fits
        assert disk.admission_failures == 1

    def test_read_pays_seek_then_transfer(self, sim):
        disk = MagneticDisk(sim, bandwidth_bps=1_000_000, seek_s=0.5)
        reservation = disk.reserve(1_000_000)

        def reader():
            yield from reservation.read(1_000_000)  # 1 s at reserved rate

        proc = sim.spawn(reader())
        sim.run_until_complete(proc)
        assert sim.now.seconds == pytest.approx(1.5)  # 0.5 seek + 1.0 transfer
        assert disk.total_bits_read == 1_000_000

    def test_released_reservation_unusable(self, sim):
        disk = MagneticDisk(sim)
        reservation = disk.reserve(1000)
        reservation.release()

        def reader():
            yield from reservation.read(100)

        sim.spawn(reader())
        with pytest.raises(StorageError, match="released"):
            sim.run()

    def test_cd_slower_than_disk(self, sim):
        disk, cd = MagneticDisk(sim), WritableCD(sim)
        assert cd.bandwidth_bps < disk.bandwidth_bps / 5
        assert cd.seek_s > disk.seek_s

    def test_jukebox_single_stream(self, sim):
        jukebox = JukeboxDevice(sim)
        jukebox.reserve(1000)
        with pytest.raises(AdmissionError, match="one stream"):
            jukebox.reserve(1000)

    def test_jukebox_disc_swap_latency(self, sim):
        jukebox = JukeboxDevice(sim, swap_s=5.0, seek_s=0.5)
        jukebox.load_disc(3)
        reservation = jukebox.reserve(1_000_000)

        def reader():
            yield from reservation.read(0)

        proc = sim.spawn(reader())
        sim.run_until_complete(proc)
        assert sim.now.seconds == pytest.approx(5.5)  # swap + seek
        assert jukebox.load_disc(3) == 0.0  # already loaded
        assert jukebox.load_disc(4) == 5.0
        with pytest.raises(StorageError):
            jukebox.load_disc(1000)


class TestPlacement:
    def make_pool(self, sim):
        manager = PlacementManager(sim)
        manager.add_device(MagneticDisk(sim, "d0", bandwidth_bps=20_000_000))
        manager.add_device(MagneticDisk(sim, "d1", bandwidth_bps=20_000_000))
        return manager

    def test_place_and_lookup(self, sim):
        manager = self.make_pool(sim)
        video = moving_scene(10)
        manager.place(video, "d0")
        assert manager.device_of(video).name == "d0"
        assert manager.is_placed(video)

    def test_double_place_rejected(self, sim):
        manager = self.make_pool(sim)
        video = moving_scene(10)
        manager.place(video, "d0")
        with pytest.raises(PlacementError, match="already placed"):
            manager.place(video, "d1")

    def test_auto_place_picks_most_free(self, sim):
        manager = self.make_pool(sim)
        filler = moving_scene(10)
        manager.place(filler, "d0")
        video = moving_scene(10, seed=5)
        placement = manager.place_auto(video)
        assert placement.device_name == "d1"

    def test_co_location_and_stream_admission(self, sim):
        manager = PlacementManager(sim)
        # Device that can stream exactly one raw clip in real time.
        video_a = moving_scene(10, 64, 48)
        video_b = moving_scene(10, 64, 48, seed=9)
        rate = video_a.data_rate_bps()
        manager.add_device(MagneticDisk(sim, "slow", bandwidth_bps=rate * 1.5))
        manager.add_device(MagneticDisk(sim, "other", bandwidth_bps=rate * 4))
        manager.place(video_a, "slow")
        manager.place(video_b, "slow")
        assert manager.co_located(video_a, video_b)
        assert not manager.can_stream_together([video_a, video_b])
        # Split placement fixes admission — the §3.3 resolution.
        proc = sim.spawn(manager.copy(video_b, "other"))
        sim.run_until_complete(proc)
        assert manager.device_of(video_b).name == "other"
        assert not manager.co_located(video_a, video_b)
        assert manager.can_stream_together([video_a, video_b])
        assert sim.now.seconds > 0  # the copy took real (virtual) time

    def test_copy_frees_source_extent(self, sim):
        manager = self.make_pool(sim)
        video = moving_scene(10)
        manager.place(video, "d0")
        used_before = manager.device("d0").allocator.used_bytes
        proc = sim.spawn(manager.copy(video, "d1"))
        sim.run_until_complete(proc)
        assert manager.device("d0").allocator.used_bytes < used_before
        assert manager.copy_count == 1

    def test_copy_interrupted_mid_transfer_releases_destination(self, sim):
        """A fault during the copy must not leak the destination extent."""
        manager = self.make_pool(sim)
        video = moving_scene(10)
        manager.place(video, "d0")
        src_used = manager.device("d0").allocator.used_bytes
        proc = sim.spawn(manager.copy(video, "d1"))
        # Inject a fault while the transfer is in flight (after the
        # 15 ms seek, before the ~27 ms copy completes).
        sim.schedule_at(WorldTime(0.02),
                        lambda: proc.interrupt(FaultError("mid-copy fault")))
        sim.run()
        assert manager.device("d1").allocator.used_bytes == 0  # no leak
        assert manager.device("d0").allocator.used_bytes == src_used
        assert manager.device_of(video).name == "d0"  # placement untouched
        assert manager.copy_count == 0
        # Both sides' bandwidth reservations were released too.
        assert manager.device("d0").reserved_bps == 0
        assert manager.device("d1").reserved_bps == 0

    def test_copy_to_same_device_rejected(self, sim):
        manager = self.make_pool(sim)
        video = moving_scene(10)
        manager.place(video, "d0")
        with pytest.raises(PlacementError, match="already resides"):
            next(manager.copy(video, "d0"))

    def test_remove_frees_space(self, sim):
        manager = self.make_pool(sim)
        video = moving_scene(10)
        manager.place(video, "d0")
        manager.remove(video)
        assert not manager.is_placed(video)
        assert manager.device("d0").allocator.used_bytes == 0

    def test_pick_device_for_copy_avoids_source(self, sim):
        manager = self.make_pool(sim)
        video = moving_scene(10)
        manager.place(video, "d0")
        target = manager.pick_device_for_copy(video, avoid="d0")
        assert target.name == "d1"

    def test_unplaced_value_errors(self, sim):
        manager = self.make_pool(sim)
        with pytest.raises(PlacementError, match="no placement"):
            manager.device_of(moving_scene(2))
