"""Non-linear editing: clip/cut/splice/mix/dissolve, EDLs, and the §3.3
placement interaction of the Editor facade."""

import numpy as np
import pytest

from repro.avtime import WorldTime
from repro.codecs import JPEGCodec, MPEGCodec
from repro.editing import (
    EditDecisionList,
    Editor,
    clip_range,
    cut,
    dissolve,
    overlay_mix,
    splice,
)
from repro.editing.ops import cut_at_time
from repro.errors import DataModelError, PlacementError
from repro.sim import Simulator
from repro.storage import MagneticDisk, PlacementManager
from repro.synth import moving_scene, noise_video
from repro.values import JPEGVideoValue, MPEGVideoValue, RawVideoValue


class TestClipAndCut:
    def test_raw_clip_is_zero_copy_view(self, small_video):
        clipped = clip_range(small_video, 2, 5)
        assert clipped.num_frames == 5
        assert np.shares_memory(clipped.frames_array, small_video.frames_array)
        assert np.array_equal(clipped.frame(0), small_video.frame(2))

    def test_intraframe_clip_slices_chunks(self, small_video):
        encoded = JPEGCodec(80).encode_value(small_video)
        clipped = clip_range(encoded, 3, 4)
        assert isinstance(clipped, JPEGVideoValue)
        assert clipped.num_frames == 4
        assert clipped.chunks[0] is encoded.chunks[3]  # shared chunk objects

    def test_interframe_clip_reencodes_self_contained(self, small_video):
        codec = MPEGCodec(80, gop=5)
        encoded = codec.encode_value(small_video)
        clipped = clip_range(encoded, 3, 4)  # spans a delta-frame region
        assert isinstance(clipped, MPEGVideoValue)
        # First frame must decode standalone (keyframe), close to source.
        error = np.abs(clipped.frame(0).astype(int)
                       - small_video.frame(3).astype(int)).mean()
        assert error < 12.0

    def test_cut_partitions_exactly(self, small_video):
        head, tail = cut(small_video, 4)
        assert head.num_frames == 4
        assert tail.num_frames == 6
        assert np.array_equal(tail.frame(0), small_video.frame(4))

    def test_cut_at_time(self, small_video):
        head, tail = cut_at_time(small_video, WorldTime(0.1))  # frame 3 at 30fps
        assert head.num_frames == 3

    def test_invalid_ranges(self, small_video):
        with pytest.raises(DataModelError):
            clip_range(small_video, -1, 3)
        with pytest.raises(DataModelError):
            clip_range(small_video, 8, 5)
        with pytest.raises(DataModelError):
            cut(small_video, 0)
        with pytest.raises(DataModelError):
            cut(small_video, 10)


class TestSpliceMixDissolve:
    def test_splice_concatenates(self, small_video, small_noise):
        result = splice([small_video, small_noise])
        assert result.num_frames == 20
        assert np.array_equal(result.frame(10), small_noise.frame(0))

    def test_splice_cut_roundtrip(self, small_video):
        head, tail = cut(small_video, 6)
        rejoined = splice([head, tail])
        assert np.array_equal(rejoined.frames_array, small_video.frames_array)

    def test_splice_rejects_mismatched_geometry(self, small_video):
        other = moving_scene(4, 64, 48)
        with pytest.raises(DataModelError, match="geometry"):
            splice([small_video, other])

    def test_overlay_mix_blends(self):
        a = RawVideoValue(np.full((4, 8, 8), 100, dtype=np.uint8))
        b = RawVideoValue(np.full((4, 8, 8), 200, dtype=np.uint8))
        mixed = overlay_mix(a, b, alpha=0.5)
        assert int(mixed.frame(0)[0, 0]) == 150
        with pytest.raises(DataModelError):
            overlay_mix(a, b, alpha=1.5)

    def test_dissolve_transitions_monotonically(self):
        a = RawVideoValue(np.full((6, 8, 8), 0, dtype=np.uint8))
        b = RawVideoValue(np.full((6, 8, 8), 240, dtype=np.uint8))
        result = dissolve(a, b, transition_frames=4)
        assert result.num_frames == 6 + 6 - 4
        means = [float(result.frame(i).mean()) for i in range(result.num_frames)]
        transition = means[2:6]
        assert transition == sorted(transition)  # ramps up
        assert means[0] == 0.0 and means[-1] == 240.0

    def test_dissolve_longer_than_clips_rejected(self, small_video):
        with pytest.raises(DataModelError, match="exceeds"):
            dissolve(small_video, small_video, transition_frames=11)


class TestEDL:
    def test_program_assembly_and_render(self, small_video, small_noise):
        edl = EditDecisionList()
        edl.append(small_video, 0, 4)
        edl.append(small_noise, 2, 8)
        edl.append(small_video, 6)
        assert edl.total_frames() == 4 + 6 + 4
        program = edl.render()
        assert program.num_frames == 14
        assert np.array_equal(program.frame(4), small_noise.frame(2))

    def test_rearrangement_is_cheap_and_correct(self, small_video, small_noise):
        edl = EditDecisionList()
        edl.append(small_video, 0, 3)
        edl.append(small_noise, 0, 3)
        edl.move(1, 0)  # swap order
        program = edl.render()
        assert np.array_equal(program.frame(0), small_noise.frame(0))

    def test_remove(self, small_video):
        edl = EditDecisionList()
        edl.append(small_video, 0, 5)
        edl.append(small_video, 5, 10)
        edl.remove(0)
        assert len(edl) == 1
        assert edl.total_frames() == 5

    def test_duration(self, small_video):
        edl = EditDecisionList()
        edl.append(small_video)  # 10 frames at 30 fps
        assert edl.duration().seconds == pytest.approx(1 / 3)

    def test_empty_render_rejected(self):
        with pytest.raises(DataModelError, match="empty"):
            EditDecisionList().render()

    def test_segment_validation(self, small_video):
        from repro.editing import Segment
        with pytest.raises(DataModelError):
            Segment(small_video, 5, 5)
        with pytest.raises(DataModelError):
            Segment(small_video, 0, 99)


class TestEditorPlacement:
    def make_env(self, bandwidth_factor=1.5):
        sim = Simulator()
        manager = PlacementManager(sim)
        a = moving_scene(15, 64, 48)
        b = noise_video(15, 64, 48)
        rate = a.data_rate_bps()
        manager.add_device(MagneticDisk(sim, "slow",
                                        bandwidth_bps=rate * bandwidth_factor))
        manager.add_device(MagneticDisk(sim, "spare", bandwidth_bps=rate * 4))
        manager.place(a, "slow")
        manager.place(b, "slow")
        return sim, manager, a, b

    def test_same_device_mix_triggers_copy_fallback(self):
        sim, manager, a, b = self.make_env()
        editor = Editor(manager)
        assert not editor.can_mix_interactively(a, b)
        proc = sim.spawn(editor.mix(a, b))
        outcome = sim.run_until_complete(proc)
        assert outcome.copied
        assert outcome.copy_seconds > 0
        assert outcome.start_delay_seconds >= outcome.copy_seconds
        assert outcome.result.num_frames == 15

    def test_split_placement_mixes_immediately(self):
        sim, manager, a, b = self.make_env()
        # Pre-place b on the spare device: no copy needed.
        proc = sim.spawn(manager.copy(b, "spare"))
        sim.run_until_complete(proc)
        editor = Editor(manager)
        assert editor.can_mix_interactively(a, b)
        start = sim.now.seconds
        proc = sim.spawn(editor.mix(a, b))
        outcome = sim.run_until_complete(proc)
        assert not outcome.copied
        # Start delay is just device positioning, far below a copy.
        assert outcome.start_delay_seconds < 0.1

    def test_strict_placement_fails_instead_of_copying(self):
        sim, manager, a, b = self.make_env()
        editor = Editor(manager, strict_placement=True)
        proc = sim.spawn(editor.mix(a, b))
        with pytest.raises(PlacementError, match="strict placement"):
            sim.run_until_complete(proc)

    def test_plentiful_bandwidth_needs_no_copy(self):
        sim, manager, a, b = self.make_env(bandwidth_factor=5.0)
        editor = Editor(manager)
        assert editor.can_mix_interactively(a, b)  # same device but fast
        proc = sim.spawn(editor.mix(a, b))
        outcome = sim.run_until_complete(proc)
        assert not outcome.copied
