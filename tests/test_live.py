"""Live sources: cameras and microphones (paper §4 footnote 1)."""

import numpy as np
import pytest

from repro.activities import ActivityGraph, ActivityState
from repro.activities.library import Speaker, VideoEncoder, VideoWindow, VideoWriter
from repro.activities.live import LiveCamera, LiveMicrophone
from repro.avtime import WorldTime
from repro.codecs import MPEGCodec
from repro.errors import ActivityError, ActivityStateError
from repro.sim import Delay


class TestLiveCamera:
    def test_bounded_recording(self, sim):
        camera = LiveCamera(sim, width=32, height=24, rate=30.0, max_elements=10)
        window = VideoWindow(sim)
        graph = ActivityGraph(sim)
        graph.add(camera)
        graph.add(window)
        graph.connect(camera.port("video_out"), window.port("video_in"))
        graph.run_to_completion()
        assert len(window.presented) == 10
        # Frame counter burned in: frames really differ.
        assert not np.array_equal(window.presented[0], window.presented[5])

    def test_produces_in_real_time(self, sim):
        camera = LiveCamera(sim, rate=30.0, max_elements=30)
        writer = VideoWriter(sim, rate=30.0)
        graph = ActivityGraph(sim)
        graph.add(camera)
        graph.add(writer)
        graph.connect(camera.port("video_out"), writer.port("video_in"))
        graph.run_to_completion()
        # 30 frames at 30 fps: ~1 s of virtual time, no read-ahead possible.
        assert sim.now.seconds == pytest.approx(29 / 30.0, abs=0.01)

    def test_unbounded_until_stopped(self, sim):
        camera = LiveCamera(sim, rate=30.0)  # no max_elements
        window = VideoWindow(sim, keep_payloads=False)
        graph = ActivityGraph(sim)
        graph.add(camera)
        graph.add(window)
        graph.connect(camera.port("video_out"), window.port("video_in"))
        graph.start_all()

        def director():
            yield Delay(0.5)
            camera.stop()

        sim.spawn(director())
        graph.run()
        assert camera.state is ActivityState.STOPPED
        assert 10 <= camera.elements_produced <= 17

    def test_cannot_bind_or_cue(self, sim, small_video):
        camera = LiveCamera(sim)
        with pytest.raises(ActivityStateError, match="no stored value"):
            camera.bind(small_video)
        with pytest.raises(ActivityStateError, match="no past"):
            camera.cue(WorldTime(1.0))

    def test_live_encode_to_storage(self, sim):
        """Capture -> encode -> write: recording a live broadcast."""
        codec = MPEGCodec(75, gop=5)
        camera = LiveCamera(sim, width=32, height=24, rate=30.0, max_elements=12)
        encoder = VideoEncoder(sim, codec)
        writer = VideoWriter(sim, rate=30.0, codec=codec, geometry=(32, 24, 8))
        graph = ActivityGraph(sim)
        for activity in (camera, encoder, writer):
            graph.add(activity)
        graph.connect(camera.port("video_out"), encoder.port("video_in"))
        graph.connect(encoder.port("video_out"), writer.port("video_in"))
        graph.run_to_completion()
        recording = writer.result()
        assert recording.num_frames == 12
        # The recording decodes to roughly the captured frames.
        first = recording.frame(0)
        assert first.shape == (24, 32)

    def test_custom_capture_callback(self, sim):
        frames_made = []

        def capture(index):
            frames_made.append(index)
            return np.full((24, 32), index, dtype=np.uint8)

        camera = LiveCamera(sim, width=32, height=24, capture=capture,
                            max_elements=5)
        window = VideoWindow(sim)
        graph = ActivityGraph(sim)
        graph.add(camera)
        graph.add(window)
        graph.connect(camera.port("video_out"), window.port("video_in"))
        graph.run_to_completion()
        assert frames_made == [0, 1, 2, 3, 4]
        assert int(window.presented[3][0, 0]) == 3

    def test_invalid_parameters(self, sim):
        with pytest.raises(ActivityError):
            LiveCamera(sim, rate=0.0)
        with pytest.raises(ActivityError):
            LiveCamera(sim, max_elements=0)


class TestLiveMicrophone:
    def test_bounded_capture(self, sim):
        microphone = LiveMicrophone(sim, sample_rate=8000.0, block_samples=512,
                                    max_elements=8)
        speaker = Speaker(sim)
        graph = ActivityGraph(sim)
        graph.add(microphone)
        graph.add(speaker)
        graph.connect(microphone.port("audio_out"), speaker.port("audio_in"))
        graph.run_to_completion()
        pcm = speaker.pcm()
        assert pcm.shape == (1, 8 * 512)
        assert np.abs(pcm).max() > 1000  # the default tone is audible

    def test_capture_is_continuous_across_blocks(self, sim):
        """Adjacent blocks continue the same waveform (no phase reset)."""
        microphone = LiveMicrophone(sim, sample_rate=8000.0, block_samples=256,
                                    max_elements=4)
        speaker = Speaker(sim)
        graph = ActivityGraph(sim)
        graph.add(microphone)
        graph.add(speaker)
        graph.connect(microphone.port("audio_out"), speaker.port("audio_in"))
        graph.run_to_completion()
        pcm = speaker.pcm()[0].astype(np.float64)
        # A 440 Hz tone has no discontinuities: the max sample-to-sample
        # jump stays below the sinusoid's own maximum slope (~0.35 amp).
        max_jump = np.abs(np.diff(pcm)).max()
        assert max_jump < 0.40 * np.abs(pcm).max()
