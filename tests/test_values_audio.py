"""AudioValue hierarchy, including CD audio and the encoded classes."""

import numpy as np
import pytest

from repro.avtime import WorldTime
from repro.codecs import ADPCMCodec, MuLawCodec
from repro.errors import DataModelError
from repro.values import ADPCMAudioValue, MuLawAudioValue, RawAudioValue


def sine(n=4000, rate=8000.0, channels=1):
    t = np.arange(n) / rate
    pcm = np.round(9000 * np.sin(2 * np.pi * 440 * t)).astype(np.int16)
    return np.tile(pcm, (channels, 1))


class TestRawAudioValue:
    def test_paper_attributes(self):
        value = RawAudioValue(sine(channels=2), sample_rate=8000.0)
        assert value.num_channels == 2
        assert value.num_samples == 4000
        assert value.depth == 16
        assert value.sample_rate == 8000.0

    def test_mono_1d_promotion(self):
        value = RawAudioValue(np.zeros(100, dtype=np.int16))
        assert value.num_channels == 1
        assert value.num_samples == 100

    def test_empty_rejected(self):
        with pytest.raises(DataModelError):
            RawAudioValue(np.zeros((1, 0), dtype=np.int16))
        with pytest.raises(DataModelError):
            RawAudioValue(np.zeros((1, 2, 3), dtype=np.int16))

    def test_duration(self):
        value = RawAudioValue(sine(8000), sample_rate=8000.0)
        assert value.duration == WorldTime(1.0)

    def test_cd_audio_constructor(self):
        value = RawAudioValue.cd_audio(sine(1000, channels=2))
        assert value.media_type.name == "audio/cd"
        assert value.sample_rate == 44100.0
        with pytest.raises(DataModelError, match="2 channels"):
            RawAudioValue.cd_audio(sine(1000, channels=1))

    def test_cd_data_rate_matches_spec(self):
        """CD audio: stereo 16-bit at 44.1 kHz = 1.4112 Mb/s (§3.1)."""
        value = RawAudioValue.cd_audio(sine(44100, channels=2))
        assert value.data_rate_bps() == pytest.approx(44100 * 2 * 16, rel=1e-6)

    def test_element_payload_is_sample_frame(self):
        value = RawAudioValue(sine(100, channels=2), sample_rate=8000.0)
        frame = value.element_payload(10)
        assert frame.shape == (2,)

    def test_sample_slice_bounds(self):
        value = RawAudioValue(sine(100), sample_rate=8000.0)
        assert value.sample_slice(10, 20).shape == (1, 20)
        with pytest.raises(DataModelError):
            value.sample_slice(90, 20)
        with pytest.raises(DataModelError):
            value.sample_slice(-1, 5)

    def test_scale_translate_share_samples(self):
        value = RawAudioValue(sine(), sample_rate=8000.0)
        shifted = value.translate(WorldTime(2.0))
        assert shifted.start == WorldTime(2.0)
        assert shifted.samples() is value.samples()


class TestEncodedAudio:
    def test_mulaw_roundtrip_quality(self):
        raw = RawAudioValue(sine(), sample_rate=8000.0)
        encoded = MuLawCodec().encode_value(raw)
        assert isinstance(encoded, MuLawAudioValue)
        assert encoded.media_type.name == "audio/mulaw"
        assert encoded.num_samples == raw.num_samples
        error = np.abs(encoded.samples().astype(int) - raw.samples().astype(int))
        assert error.mean() < 200  # companding noise, not garbage
        assert encoded.compression_ratio() == pytest.approx(2.0, rel=0.01)

    def test_adpcm_roundtrip_quality(self):
        raw = RawAudioValue(sine(), sample_rate=8000.0)
        encoded = ADPCMCodec().encode_value(raw)
        assert isinstance(encoded, ADPCMAudioValue)
        error = np.abs(encoded.samples().astype(int) - raw.samples().astype(int))
        assert error.mean() < 500
        assert encoded.compression_ratio() > 3.0

    def test_encoded_duration_matches_raw(self):
        raw = RawAudioValue(sine(8000), sample_rate=8000.0)
        encoded = MuLawCodec().encode_value(raw)
        assert encoded.duration == raw.duration

    def test_stereo_encoded_roundtrip(self):
        raw = RawAudioValue(sine(2000, channels=2), sample_rate=8000.0)
        encoded = ADPCMCodec().encode_value(raw)
        assert encoded.samples().shape == (2, 2000)

    def test_decode_is_cached(self):
        raw = RawAudioValue(sine(), sample_rate=8000.0)
        encoded = MuLawCodec().encode_value(raw)
        assert encoded.samples() is encoded.samples()

    def test_encoded_data_smaller(self):
        raw = RawAudioValue(sine(), sample_rate=8000.0)
        for codec in (MuLawCodec(), ADPCMCodec()):
            encoded = codec.encode_value(raw)
            assert encoded.data_size_bits() < raw.data_size_bits()
