"""Stream machinery: buffers with backpressure, presentation logs,
skew computation, jitter models and resynchronization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.avtime import WorldTime
from repro.errors import SimulationError, TemporalError
from repro.sim import Delay
from repro.streams import (
    NoJitter,
    PresentationLog,
    RandomWalkJitter,
    Resynchronizer,
    StreamBuffer,
    SyncGroup,
    skew_between,
)


class TestStreamBuffer:
    def test_fifo_order(self, sim):
        buffer = StreamBuffer(sim, capacity=4)
        received = []

        def producer():
            for i in range(6):
                yield from buffer.put(i)

        def consumer():
            for _ in range(6):
                item = yield from buffer.get()
                received.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert received == list(range(6))

    def test_producer_blocks_when_full(self, sim):
        buffer = StreamBuffer(sim, capacity=2)
        produced_at = []

        def producer():
            for i in range(4):
                yield from buffer.put(i)
                produced_at.append(sim.now.seconds)

        def slow_consumer():
            for _ in range(4):
                yield Delay(1.0)
                yield from buffer.get()

        sim.spawn(producer())
        sim.spawn(slow_consumer())
        sim.run()
        # First two go immediately; the rest wait for consumption slots.
        assert produced_at[0] == 0.0 and produced_at[1] == 0.0
        assert produced_at[2] >= 1.0 and produced_at[3] >= 2.0
        assert buffer.producer_stalls >= 2

    def test_consumer_blocks_when_empty(self, sim):
        buffer = StreamBuffer(sim, capacity=2)
        got_at = []

        def consumer():
            item = yield from buffer.get()
            got_at.append((item, sim.now.seconds))

        def late_producer():
            yield Delay(3.0)
            yield from buffer.put("x")

        sim.spawn(consumer())
        sim.spawn(late_producer())
        sim.run()
        assert got_at == [("x", 3.0)]
        assert buffer.consumer_stalls == 1

    def test_high_watermark(self, sim):
        buffer = StreamBuffer(sim, capacity=8)

        def producer():
            for i in range(5):
                yield from buffer.put(i)

        sim.spawn(producer())
        sim.run()
        assert buffer.high_watermark == 5

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            StreamBuffer(sim, capacity=0)

    def test_one_stall_per_blocking_episode(self, sim):
        # A blocked producer that is woken, barged past by another
        # producer, and re-waits is still in the *same* stall — the
        # counter used to tick once per wakeup-recheck iteration.
        buffer = StreamBuffer(sim, capacity=1)

        def producer():
            yield from buffer.put("b0")
            yield from buffer.put("b1")     # blocks; barged past twice

        def consumer():
            got = []
            for _ in range(4):
                yield Delay(1.0)
                item = yield from buffer.get()
                got.append(item)
            return got

        def thief():
            # Runs after the consumer each tick: steals the freed slot
            # before the blocked producer's wakeup fires.
            for i in range(2):
                yield Delay(1.0)
                yield from buffer.put(f"t{i}")

        sim.spawn(producer())
        consumer_proc = sim.spawn(consumer())
        sim.spawn(thief())
        got = sim.run_until_complete(consumer_proc)
        assert got == ["b0", "t0", "t1", "b1"]
        assert buffer.producer_stalls == 1
        assert sim.obs.metrics.counter("stream.producer_stalls").value == 1


class TestPresentationLog:
    def make_log(self, latencies):
        log = PresentationLog("test")
        for i, latency in enumerate(latencies):
            ideal = WorldTime(i * 0.1)
            log.record(i, ideal, ideal + WorldTime(latency))
        return log

    def test_latency_statistics(self):
        log = self.make_log([0.01, 0.03, 0.02])
        assert log.mean_latency() == pytest.approx(0.02)
        assert log.max_latency() == pytest.approx(0.03)
        assert log.jitter() == pytest.approx(0.02)

    def test_empty_log_raises(self):
        log = PresentationLog("empty")
        with pytest.raises(TemporalError):
            log.mean_latency()

    def test_interarrival_stddev_zero_for_uniform(self):
        log = self.make_log([0.0] * 10)
        assert log.interarrival_stddev() == pytest.approx(0.0)

    def test_skew_between_identical_logs_is_zero(self):
        a = self.make_log([0.05] * 10)
        b = self.make_log([0.05] * 10)
        assert max(abs(s) for s in skew_between(a, b)) == pytest.approx(0.0)

    def test_skew_detects_drift(self):
        a = self.make_log([0.001 * i for i in range(20)])  # drifting
        b = self.make_log([0.0] * 20)  # on time
        series = skew_between(a, b)
        assert series[-1] > series[0]
        assert max(series) > 0.01

    def test_skew_requires_overlap(self):
        a = self.make_log([0.0] * 5)
        b = PresentationLog("later")
        b.record(0, WorldTime(100.0), WorldTime(100.0))
        with pytest.raises(TemporalError, match="overlap"):
            skew_between(a, b)

    def test_shared_latency_cancels_in_skew(self):
        """Skew measures relative drift, not absolute delay."""
        a = self.make_log([0.5] * 10)
        b = self.make_log([0.5] * 10)
        assert max(abs(s) for s in skew_between(a, b)) == pytest.approx(0.0)


class TestJitterModels:
    def test_no_jitter_is_zero(self):
        model = NoJitter()
        assert all(model.offset(i) == 0.0 for i in range(10))

    def test_random_walk_is_deterministic_per_seed(self):
        def walk(seed):
            model = RandomWalkJitter(seed=seed)
            return [model.offset(i) for i in range(50)]

        assert walk(7) == walk(7)
        assert walk(7) != walk(8)

    def test_random_walk_accumulates_with_bias(self):
        model = RandomWalkJitter(step=0.01, bias=2.0, seed=1)
        early = [model.offset(i) for i in range(10)]
        late = [model.offset(i) for i in range(200, 210)]
        assert sum(late) > sum(early)  # upward drift

    def test_drift_bounded_by_ceiling(self):
        model = RandomWalkJitter(step=0.1, bias=5.0, ceiling=0.3, seed=2)
        offsets = [model.offset(i) for i in range(500)]
        assert max(offsets) <= 0.3
        assert min(offsets) >= 0.0

    def test_reset_drift(self):
        model = RandomWalkJitter(step=0.05, bias=3.0, seed=3)
        for i in range(50):
            model.offset(i)
        assert model.drift > 0
        model.reset_drift()
        assert model.drift == 0.0


class TestResynchronizer:
    def test_resync_every_interval(self):
        resync = Resynchronizer(interval=10)
        model = RandomWalkJitter(step=0.05, bias=3.0, seed=4)
        max_with_resync = 0.0
        for i in range(100):
            resync.maybe_resync(i, model)
            max_with_resync = max(max_with_resync, model.offset(i))
        assert resync.resync_count == 9
        # Without resync the same walk drifts much further.
        unsynced = RandomWalkJitter(step=0.05, bias=3.0, seed=4)
        max_unsynced = max(unsynced.offset(i) for i in range(100))
        assert max_with_resync < max_unsynced

    def test_invalid_interval(self):
        with pytest.raises(TemporalError):
            Resynchronizer(interval=0)


class TestSyncGroup:
    def test_skew_is_spread_of_drifts(self):
        group = SyncGroup()
        group.register("video")
        group.register("audio")
        group.report("video", 0.08)
        group.report("audio", 0.02)
        assert group.current_skew() == pytest.approx(0.06)
        # History includes the instant after the first report, when audio
        # still sat at drift 0 (spread 0.08).
        assert group.max_skew() == pytest.approx(0.08)

    def test_duplicate_member_rejected(self):
        group = SyncGroup()
        group.register("a")
        with pytest.raises(TemporalError):
            group.register("a")

    def test_unknown_member_report_rejected(self):
        group = SyncGroup()
        with pytest.raises(TemporalError):
            group.report("ghost", 0.1)

    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=2, max_size=20))
    @settings(max_examples=30)
    def test_max_skew_monotone_nondecreasing(self, drifts):
        group = SyncGroup()
        group.register("a")
        group.register("b")
        previous = 0.0
        for drift in drifts:
            group.report("a", drift)
            current = group.max_skew()
            assert current >= previous - 1e-12
            previous = current


class TestStreamMetrics:
    """Streams publish buffer and presentation metrics by default."""

    def test_buffer_occupancy_and_stalls(self, sim):
        buffer = StreamBuffer(sim, capacity=2)

        def producer():
            for i in range(5):
                yield from buffer.put(i)

        def consumer():
            for _ in range(5):
                yield Delay(0.1)     # slower than the producer: it stalls
                yield from buffer.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        metrics = sim.obs.metrics
        assert metrics.counter("stream.elements_buffered").value == 5
        assert metrics.counter("stream.producer_stalls").value > 0
        occupancy = metrics.histogram("stream.buffer_occupancy")
        assert occupancy.count == 5
        assert occupancy.max <= 2

    def test_sink_latency_and_jitter_metrics(self, sim):
        from repro.activities import ActivityGraph
        from repro.activities.library import VideoReader, VideoWindow
        from repro.synth import moving_scene

        graph = ActivityGraph(sim)
        reader = graph.add(VideoReader(sim, name="read",
                                       jitter=RandomWalkJitter(0.002, seed=3)))
        reader.bind(moving_scene(12, 32, 24))
        window = graph.add(VideoWindow(sim, name="display"))
        graph.connect(reader.port("video_out"), window.port("video_in"))
        graph.run_to_completion()
        metrics = sim.obs.metrics
        assert metrics.counter("stream.elements_presented").value == 12
        latency = metrics.histogram("stream.latency_ms")
        assert latency.count == 12
        assert latency.max > 0
        jitter = metrics.histogram("stream.jitter_ms")
        assert jitter.count == 11        # successive-presentation deltas
        assert jitter.max > 0            # the jitter model really perturbed
