"""Schema: class definitions, attribute typing, tcomp attributes,
inheritance — the paper's Newscast / SimpleNewscast classes."""

import pytest

from repro.db import AttributeSpec, ClassDef, Database
from repro.db.objects import OID
from repro.errors import SchemaError
from repro.quality import VideoQuality, parse_quality
from repro.synth import NEWSCAST_CLIP_SPEC, moving_scene
from repro.values import VideoValue


def simple_newscast_class():
    """The paper's SimpleNewscast with its quality-factored video attribute."""
    return ClassDef("SimpleNewscast", attributes=[
        AttributeSpec("title", str, indexed=True),
        AttributeSpec("broadcastSource", str),
        AttributeSpec("keywords", list, keyword_indexed=True),
        AttributeSpec("whenBroadcast", str, indexed=True),
        AttributeSpec("videoTrack", VideoValue,
                      quality=parse_quality("640x480x8@30")),
    ])


class TestAttributeSpec:
    def test_python_type_validation(self):
        spec = AttributeSpec("title", str)
        spec.validate_value("ok")
        spec.validate_value(None)  # optional by default
        with pytest.raises(SchemaError, match="expects str"):
            spec.validate_value(42)

    def test_required_attribute(self):
        spec = AttributeSpec("title", str, required=True)
        with pytest.raises(SchemaError, match="required"):
            spec.validate_value(None)

    def test_media_attribute_with_quality_cap(self):
        spec = AttributeSpec("videoTrack", VideoValue,
                             quality=VideoQuality(64, 48, 8, 30.0))
        spec.validate_value(moving_scene(2, 64, 48))  # at the cap
        spec.validate_value(moving_scene(2, 32, 24))  # below the cap
        with pytest.raises(SchemaError, match="exceeds"):
            spec.validate_value(moving_scene(2, 128, 96))

    def test_quality_on_non_media_rejected(self):
        with pytest.raises(SchemaError, match="media-valued"):
            AttributeSpec("title", str, quality=VideoQuality(64, 48, 8, 30.0))

    def test_reference_attribute(self):
        spec = AttributeSpec("producer", "Person")
        spec.validate_value(OID("Person", 1))
        with pytest.raises(SchemaError, match="references"):
            spec.validate_value("Person:1")

    def test_invalid_attribute_name(self):
        with pytest.raises(SchemaError):
            AttributeSpec("bad name", str)


class TestClassDef:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            ClassDef("C", attributes=[
                AttributeSpec("x", str), AttributeSpec("x", int),
            ])

    def test_tcomp_and_attribute_name_collision_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            ClassDef("C", attributes=[AttributeSpec("clip", str)],
                     tcomps=[NEWSCAST_CLIP_SPEC])

    def test_lookup_helpers(self):
        class_def = simple_newscast_class()
        assert class_def.attribute("title").indexed
        assert class_def.attribute("ghost") is None


class TestInheritance:
    def make_db(self):
        db = Database()
        db.define_class(ClassDef("Media", attributes=[
            AttributeSpec("title", str, indexed=True),
        ]))
        db.define_class(ClassDef("Newscast", superclass="Media", attributes=[
            AttributeSpec("whenBroadcast", str),
        ], tcomps=[NEWSCAST_CLIP_SPEC]))
        return db

    def test_subclass_inherits_attributes(self):
        db = self.make_db()
        names = {a.name for a in db.schema.all_attributes("Newscast")}
        assert names == {"title", "whenBroadcast"}

    def test_subclass_queryable_via_superclass(self):
        db = self.make_db()
        oid = db.insert("Newscast", title="x", whenBroadcast="1992")
        from repro.db import Q
        assert db.select("Media") == [oid]
        assert db.select("Media", include_subclasses=False) == []
        assert db.select("Media", Q.eq("title", "x")) == [oid]

    def test_unknown_superclass_rejected(self):
        db = Database()
        with pytest.raises(SchemaError, match="unknown superclass"):
            db.schema.define(ClassDef("X", superclass="Ghost"))

    def test_ancestry(self):
        db = self.make_db()
        assert db.schema.ancestry("Newscast") == ["Newscast", "Media"]
        assert db.schema.is_subclass("Newscast", "Media")
        assert not db.schema.is_subclass("Media", "Newscast")


class TestObjectValidation:
    def test_insert_validates_types(self):
        db = Database()
        db.define_class(simple_newscast_class())
        db.insert("SimpleNewscast", title="60 Minutes",
                  videoTrack=moving_scene(2, 64, 48))
        with pytest.raises(SchemaError, match="expects"):
            db.insert("SimpleNewscast", title=42)

    def test_unknown_attribute_rejected(self):
        db = Database()
        db.define_class(simple_newscast_class())
        with pytest.raises(SchemaError, match="no attribute"):
            db.insert("SimpleNewscast", director="someone")

    def test_tcomp_attribute_takes_composite(self, clip):
        db = Database()
        db.define_class(ClassDef("Newscast", tcomps=[NEWSCAST_CLIP_SPEC],
                                 attributes=[AttributeSpec("title", str)]))
        oid = db.insert("Newscast", title="x", clip=clip)
        stored = db.get(oid)
        assert stored.clip.value("videoTrack").num_frames == 10

    def test_tcomp_attribute_rejects_plain_value(self):
        db = Database()
        db.define_class(ClassDef("Newscast", tcomps=[NEWSCAST_CLIP_SPEC]))
        with pytest.raises(SchemaError, match="tcomp"):
            db.insert("Newscast", clip=moving_scene(2))

    def test_tcomp_spec_name_must_match(self, clip):
        from repro.temporal import TCompSpec
        db = Database()
        other_spec = TCompSpec("other", NEWSCAST_CLIP_SPEC.tracks)
        db.define_class(ClassDef("Newscast", tcomps=[other_spec]))
        with pytest.raises(SchemaError, match="built from"):
            db.insert("Newscast", other=clip)

    def test_duplicate_class_rejected(self):
        db = Database()
        db.define_class(ClassDef("C"))
        with pytest.raises(SchemaError, match="already defined"):
            db.define_class(ClassDef("C"))
